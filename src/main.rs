//! `eva` — command-line front end for the simulator and catalogs.
//!
//! ```text
//! eva simulate [--jobs N] [--rate JOBS_PER_HR] [--scheduler NAME]
//!              [--durations alibaba|gavel] [--seed N] [--json FILE]
//! eva compare  [--jobs N] [--rate JOBS_PER_HR] [--durations ...] [--seed N]
//! eva workloads        # print the Table 7 workload catalog
//! eva catalog          # print the 21-type AWS instance catalog
//! ```

use std::process::ExitCode;

use eva::prelude::*;

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    command: Command,
}

#[derive(Debug, Clone, PartialEq)]
enum Command {
    Simulate(SimArgs),
    Compare(SimArgs),
    Workloads,
    Catalog,
    Help,
}

#[derive(Debug, Clone, PartialEq)]
struct SimArgs {
    jobs: usize,
    rate: f64,
    scheduler: String,
    durations: String,
    seed: u64,
    json: Option<String>,
}

impl Default for SimArgs {
    fn default() -> Self {
        SimArgs {
            jobs: 500,
            rate: 3.0,
            scheduler: "eva".into(),
            durations: "alibaba".into(),
            seed: 42,
            json: None,
        }
    }
}

/// Parses arguments (exposed for testing).
pub fn parse(args: &[String]) -> Result<Cli, String> {
    let mut it = args.iter();
    let command = match it.next().map(String::as_str) {
        Some("simulate") => Command::Simulate(parse_sim_args(it)?),
        Some("compare") => Command::Compare(parse_sim_args(it)?),
        Some("workloads") => Command::Workloads,
        Some("catalog") => Command::Catalog,
        Some("help") | Some("--help") | Some("-h") | None => Command::Help,
        Some(other) => return Err(format!("unknown command `{other}` (try `eva help`)")),
    };
    Ok(Cli { command })
}

fn parse_sim_args<'a>(mut it: impl Iterator<Item = &'a String>) -> Result<SimArgs, String> {
    let mut args = SimArgs::default();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--jobs" => args.jobs = value()?.parse().map_err(|e| format!("--jobs: {e}"))?,
            "--rate" => args.rate = value()?.parse().map_err(|e| format!("--rate: {e}"))?,
            "--scheduler" => args.scheduler = value()?,
            "--durations" => args.durations = value()?,
            "--seed" => args.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--json" => args.json = Some(value()?),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn scheduler_by_name(name: &str) -> Result<SchedulerKind, String> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "eva" => SchedulerKind::Eva(EvaConfig::eva()),
        "eva-rp" => SchedulerKind::Eva(EvaConfig::eva_rp()),
        "eva-single" => SchedulerKind::Eva(EvaConfig::eva_single()),
        "eva-full-only" => SchedulerKind::Eva(EvaConfig::without_partial()),
        "eva-partial-only" => SchedulerKind::Eva(EvaConfig::without_full()),
        "no-packing" | "nopacking" => SchedulerKind::NoPacking,
        "stratus" => SchedulerKind::Stratus,
        "synergy" => SchedulerKind::Synergy,
        "owl" => SchedulerKind::Owl,
        other => return Err(format!("unknown scheduler `{other}`")),
    })
}

fn build_trace(args: &SimArgs) -> Result<Trace, String> {
    let durations = match args.durations.to_ascii_lowercase().as_str() {
        "alibaba" => DurationModelChoice::Alibaba,
        "gavel" => DurationModelChoice::Gavel,
        other => return Err(format!("unknown duration model `{other}`")),
    };
    let cfg = AlibabaTraceConfig {
        num_jobs: args.jobs,
        arrival_rate_per_hour: args.rate,
        durations,
    };
    Ok(cfg.generate(args.seed))
}

fn run(cli: Cli) -> Result<(), String> {
    match cli.command {
        Command::Help => {
            println!(
                "eva — cost-efficient cloud-based cluster scheduling (EuroSys '25 reproduction)\n\n\
                 USAGE:\n  eva simulate [--jobs N] [--rate J/HR] [--scheduler NAME] [--durations alibaba|gavel] [--seed N] [--json FILE]\n  \
                 eva compare  [--jobs N] [--rate J/HR] [--durations ...] [--seed N]\n  \
                 eva workloads\n  eva catalog\n\n\
                 SCHEDULERS: eva, eva-rp, eva-single, eva-full-only, eva-partial-only,\n             no-packing, stratus, synergy, owl"
            );
        }
        Command::Workloads => {
            for w in WorkloadCatalog::table7().iter() {
                println!(
                    "{:<12} {:<28} {} ×{}",
                    w.name, w.domain, w.demand.default, w.num_tasks
                );
            }
        }
        Command::Catalog => {
            for t in eva::cloud::Catalog::aws_eval_2025().types() {
                println!("{t}");
            }
        }
        Command::Simulate(args) => {
            let trace = build_trace(&args)?;
            let kind = scheduler_by_name(&args.scheduler)?;
            println!(
                "simulating {} jobs at {}/hr under {} (seed {})...",
                args.jobs,
                args.rate,
                kind.label(),
                args.seed
            );
            let report = run_simulation(&SimConfig::new(trace, kind));
            println!("{}", report.table_row(None));
            if let Some(path) = args.json {
                let json =
                    serde_json::to_string_pretty(&report).map_err(|e| format!("serialize: {e}"))?;
                std::fs::write(&path, json).map_err(|e| format!("write {path}: {e}"))?;
                println!("saved {path}");
            }
        }
        Command::Compare(args) => {
            let trace = build_trace(&args)?;
            let kinds = [
                SchedulerKind::NoPacking,
                SchedulerKind::Stratus,
                SchedulerKind::Synergy,
                SchedulerKind::Owl,
                SchedulerKind::Eva(EvaConfig::eva()),
            ];
            let mut baseline: Option<SimReport> = None;
            for kind in kinds {
                let report = run_simulation(&SimConfig::new(trace.clone(), kind));
                println!("{}", report.table_row(baseline.as_ref()));
                if baseline.is_none() {
                    baseline = Some(report);
                }
            }
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse(&args).and_then(run) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_simulate_flags() {
        let cli = parse(&argv(
            "simulate --jobs 100 --rate 2.5 --scheduler stratus --seed 7",
        ))
        .unwrap();
        let Command::Simulate(args) = cli.command else {
            panic!()
        };
        assert_eq!(args.jobs, 100);
        assert_eq!(args.rate, 2.5);
        assert_eq!(args.scheduler, "stratus");
        assert_eq!(args.seed, 7);
    }

    #[test]
    fn rejects_unknown_command_and_flags() {
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("simulate --bogus 1")).is_err());
        assert!(parse(&argv("simulate --jobs")).is_err());
        assert!(parse(&argv("simulate --jobs abc")).is_err());
    }

    #[test]
    fn default_command_is_help() {
        assert_eq!(parse(&[]).unwrap().command, Command::Help);
    }

    #[test]
    fn scheduler_names_resolve() {
        for name in [
            "eva",
            "eva-rp",
            "eva-single",
            "eva-full-only",
            "eva-partial-only",
            "no-packing",
            "stratus",
            "synergy",
            "owl",
        ] {
            assert!(scheduler_by_name(name).is_ok(), "{name}");
        }
        assert!(scheduler_by_name("slurm").is_err());
    }

    #[test]
    fn duration_models_resolve() {
        let mut args = SimArgs::default();
        args.jobs = 5;
        assert!(build_trace(&args).is_ok());
        args.durations = "gavel".into();
        assert!(build_trace(&args).is_ok());
        args.durations = "weibull".into();
        assert!(build_trace(&args).is_err());
    }
}
