//! `eva` — command-line front end for the simulator and catalogs.
//!
//! ```text
//! eva simulate [--jobs N] [--rate JOBS_PER_HR] [--scheduler NAME]
//!              [--durations alibaba|gavel] [--seed N] [--period MINS]
//!              [--faults REGIME[:INTENSITY]] [--json FILE]
//! eva compare  [--jobs N] [--rate JOBS_PER_HR] [--durations ...] [--seed N]
//!              [--period MINS] [--faults REGIME[:INTENSITY]] [--threads N]
//! eva sweep    [--jobs N] [--rate JOBS_PER_HR] [--durations ...]
//!              [--schedulers A,B,..] [--seeds S1,S2,..]
//!              [--backend sim|live|sim,live] [--threads N] [--procs N]
//!              [--faults REGIME[:INTENSITY]]
//!              [--shard N|auto[:JOBS]] [--cache] [--no-cache]
//!              [--cache-dir DIR] [--period MINS] [--json FILE]
//! eva serve    --source synthetic:RATE|trace:PATH|stdin
//!              [--scheduler NAME] [--seed N] [--period MINS]
//!              [--duration HOURS] [--metrics-every SECS] [--max-jobs N]
//! eva cache    stats|verify [--cache-dir DIR]
//! eva cache    prune [--max-age DAYS] [--keep-retired] [--cache-dir DIR]
//! eva cache    import|merge SRC [--cache-dir DIR]
//! eva cache    export DEST [--cache-dir DIR]
//! eva workloads        # print the Table 7 workload catalog
//! eva catalog          # print the 21-type AWS instance catalog
//! ```
//!
//! `--procs N` federates the sweep over N processes claiming cells from
//! the shared cache dir; merged output stays byte-identical to
//! `--procs 1`.

use std::process::ExitCode;

use eva::prelude::*;

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    command: Command,
}

#[derive(Debug, Clone, PartialEq)]
enum Command {
    Simulate(SimArgs),
    Compare(SimArgs),
    Sweep(SweepArgs),
    Serve(ServeArgs),
    Cache(CacheArgs),
    Workloads,
    Catalog,
    Help,
}

#[derive(Debug, Clone, PartialEq)]
struct SimArgs {
    jobs: usize,
    rate: f64,
    scheduler: String,
    durations: String,
    seed: u64,
    period_mins: f64,
    threads: usize,
    /// Adversarial fault regime injected into the run (`none` default).
    faults: FaultSpec,
    json: Option<String>,
}

impl Default for SimArgs {
    fn default() -> Self {
        SimArgs {
            jobs: 500,
            rate: 3.0,
            scheduler: "eva".into(),
            durations: "alibaba".into(),
            seed: 42,
            period_mins: 5.0,
            threads: 0,
            faults: FaultSpec::none(),
            json: None,
        }
    }
}

/// Arguments of the `sweep` subcommand: the shared simulation knobs plus
/// the scheduler, seed, and backend axes of the grid, trace sharding,
/// and the persistent report cache.
#[derive(Debug, Clone, PartialEq)]
struct SweepArgs {
    sim: SimArgs,
    schedulers: Vec<String>,
    seeds: Vec<u64>,
    backends: Vec<String>,
    /// How to shard each trace into arrival-time windows (`None` =
    /// unsharded): `--shard N` for equal windows, `--shard auto[:JOBS]`
    /// for density-aware planning with a per-window job budget.
    shard: Option<ShardPolicy>,
    /// Whether the persistent report cache is consulted (CLI default:
    /// off; `--cache`, `--cache-dir`, or `--procs > 1` turns it on).
    cache: bool,
    /// Cache directory (`results/cache` when unset).
    cache_dir: Option<String>,
    /// Total processes the sweep federates over (1 = in-process only).
    /// `> 1` spawns `procs - 1` workers that claim cells from the shared
    /// cache dir; the merged output is byte-identical either way.
    procs: usize,
}

impl Default for SweepArgs {
    fn default() -> Self {
        SweepArgs {
            sim: SimArgs::default(),
            schedulers: vec![
                "no-packing".into(),
                "stratus".into(),
                "synergy".into(),
                "owl".into(),
                "eva".into(),
            ],
            seeds: vec![42],
            backends: vec!["sim".into()],
            shard: None,
            cache: false,
            cache_dir: None,
            procs: 1,
        }
    }
}

/// Where `eva serve` pulls its job stream from.
#[derive(Debug, Clone, PartialEq)]
enum ServeSource {
    /// Seeded open-loop Poisson generator at a mean arrival rate.
    Synthetic { rate_per_hour: f64 },
    /// Replay a serialized trace file in arrival order.
    Trace { path: String },
    /// Line-delimited `JobSpec` JSON from standard input (a pipe or
    /// socket-forwarded feed).
    Stdin,
}

impl ServeSource {
    fn parse(spec: &str) -> Result<Self, String> {
        if spec == "stdin" {
            return Ok(ServeSource::Stdin);
        }
        if let Some(rate) = spec.strip_prefix("synthetic:") {
            let rate_per_hour: f64 = rate
                .parse()
                .map_err(|e| format!("--source synthetic: {e}"))?;
            if !(rate_per_hour.is_finite() && rate_per_hour > 0.0) {
                return Err("--source synthetic: rate must be a positive jobs/hour".into());
            }
            return Ok(ServeSource::Synthetic { rate_per_hour });
        }
        if let Some(path) = spec.strip_prefix("trace:") {
            if path.is_empty() {
                return Err("--source trace: needs a file path".into());
            }
            return Ok(ServeSource::Trace {
                path: path.to_string(),
            });
        }
        Err(format!(
            "unknown source `{spec}` (synthetic:RATE, trace:PATH, or stdin)"
        ))
    }
}

/// Arguments of the `serve` subcommand: a job source plus the service
/// loop's horizon and metrics cadence (both in *simulated* time).
#[derive(Debug, Clone, PartialEq)]
struct ServeArgs {
    source: ServeSource,
    scheduler: String,
    seed: u64,
    period_mins: f64,
    /// Stop ingesting jobs arriving past this horizon; in-flight jobs
    /// still drain. `None` runs until the source is exhausted.
    duration_hours: Option<f64>,
    /// Rolling metrics emission interval (simulated seconds).
    metrics_every_secs: f64,
    /// Safety cap on synthetic-source pulls.
    max_jobs: usize,
}

impl Default for ServeArgs {
    fn default() -> Self {
        ServeArgs {
            source: ServeSource::Synthetic { rate_per_hour: 3.0 },
            scheduler: "eva".into(),
            seed: 42,
            period_mins: 5.0,
            duration_hours: None,
            metrics_every_secs: 3600.0,
            max_jobs: 1_000_000,
        }
    }
}

/// Arguments of the `cache` subcommand: a lifecycle action over a cache
/// directory.
#[derive(Debug, Clone, PartialEq)]
struct CacheArgs {
    action: CacheAction,
    /// Cache directory the action applies to (`results/cache` default).
    dir: String,
}

#[derive(Debug, Clone, PartialEq)]
enum CacheAction {
    /// Entry/schema/producer breakdown.
    Stats,
    /// Re-hash entries against stored keys; report orphaned temps and
    /// leftover claims. Exits non-zero unless the cache is clean.
    Verify,
    /// Remove retired-schema entries (unless `keep_retired`), entries
    /// older than `max_age_days`, corrupt entries, and stale litter.
    Prune {
        max_age_days: Option<f64>,
        keep_retired: bool,
    },
    /// Union a foreign cache dir into this one (`merge` is an alias).
    Import { src: String },
    /// Union this cache into a foreign dir.
    Export { dest: String },
}

/// Parses arguments (exposed for testing).
pub fn parse(args: &[String]) -> Result<Cli, String> {
    let mut it = args.iter();
    let command = match it.next().map(String::as_str) {
        Some("simulate") => Command::Simulate(parse_sim_args(it, false)?.sim),
        Some("compare") => Command::Compare(parse_sim_args(it, false)?.sim),
        Some("sweep") => Command::Sweep(parse_sim_args(it, true)?),
        Some("serve") => Command::Serve(parse_serve_args(it)?),
        Some("cache") => Command::Cache(parse_cache_args(it)?),
        Some("workloads") => Command::Workloads,
        Some("catalog") => Command::Catalog,
        Some("help") | Some("--help") | Some("-h") | None => Command::Help,
        Some(other) => return Err(format!("unknown command `{other}` (try `eva help`)")),
    };
    Ok(Cli { command })
}

fn parse_sim_args<'a>(
    mut it: impl Iterator<Item = &'a String>,
    sweep: bool,
) -> Result<SweepArgs, String> {
    let mut args = SweepArgs::default();
    let mut no_cache = false;
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--jobs" => args.sim.jobs = value()?.parse().map_err(|e| format!("--jobs: {e}"))?,
            "--rate" => args.sim.rate = value()?.parse().map_err(|e| format!("--rate: {e}"))?,
            "--scheduler" if !sweep => args.sim.scheduler = value()?,
            "--durations" => args.sim.durations = value()?,
            "--seed" => args.sim.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--period" => {
                args.sim.period_mins = value()?.parse().map_err(|e| format!("--period: {e}"))?;
                if !(args.sim.period_mins.is_finite() && args.sim.period_mins > 0.0) {
                    return Err("--period: must be a positive number of minutes".into());
                }
            }
            "--threads" => {
                args.sim.threads = value()?.parse().map_err(|e| format!("--threads: {e}"))?
            }
            "--faults" => {
                args.sim.faults =
                    FaultSpec::parse(&value()?).map_err(|e| format!("--faults: {e}"))?
            }
            "--schedulers" if sweep => {
                args.schedulers = value()?.split(',').map(str::to_string).collect();
                for name in &args.schedulers {
                    SchedulerKind::from_name(name)?;
                }
            }
            "--seeds" if sweep => {
                args.seeds = value()?
                    .split(',')
                    .map(|s| s.parse().map_err(|e| format!("--seeds: {e}")))
                    .collect::<Result<Vec<u64>, String>>()?;
            }
            "--backend" if sweep => {
                args.backends = value()?.split(',').map(str::to_string).collect();
                for name in &args.backends {
                    BackendKind::from_name(name).map_err(|e| format!("--backend: {e}"))?;
                }
            }
            "--shard" if sweep => {
                args.shard =
                    Some(ShardPolicy::parse(&value()?).map_err(|e| format!("--shard: {e}"))?)
            }
            "--cache" if sweep => args.cache = true,
            "--no-cache" if sweep => {
                args.cache = false;
                args.cache_dir = None;
                no_cache = true;
            }
            "--cache-dir" if sweep => {
                args.cache_dir = Some(value()?);
                args.cache = true;
            }
            "--procs" if sweep => {
                args.procs = value()?.parse().map_err(|e| format!("--procs: {e}"))?;
                if args.procs == 0 {
                    return Err("--procs: must be at least 1".into());
                }
            }
            "--json" => args.sim.json = Some(value()?),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.procs > 1 {
        if no_cache {
            return Err(
                "--procs: federated sweeps coordinate through the cache dir; drop --no-cache"
                    .into(),
            );
        }
        // Federation needs the cache as its coordination substrate.
        args.cache = true;
    }
    Ok(args)
}

fn parse_serve_args<'a>(mut it: impl Iterator<Item = &'a String>) -> Result<ServeArgs, String> {
    let mut args = ServeArgs::default();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--source" => args.source = ServeSource::parse(&value()?)?,
            "--scheduler" => args.scheduler = value()?,
            "--seed" => args.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--period" => {
                args.period_mins = value()?.parse().map_err(|e| format!("--period: {e}"))?;
                if !(args.period_mins.is_finite() && args.period_mins > 0.0) {
                    return Err("--period: must be a positive number of minutes".into());
                }
            }
            "--duration" => {
                let hours: f64 = value()?.parse().map_err(|e| format!("--duration: {e}"))?;
                if !(hours.is_finite() && hours > 0.0) {
                    return Err("--duration: must be a positive number of hours".into());
                }
                args.duration_hours = Some(hours);
            }
            "--metrics-every" => {
                args.metrics_every_secs = value()?
                    .parse()
                    .map_err(|e| format!("--metrics-every: {e}"))?;
                if !(args.metrics_every_secs.is_finite() && args.metrics_every_secs > 0.0) {
                    return Err("--metrics-every: must be a positive number of seconds".into());
                }
            }
            "--max-jobs" => {
                args.max_jobs = value()?.parse().map_err(|e| format!("--max-jobs: {e}"))?;
                if args.max_jobs == 0 {
                    return Err("--max-jobs: must be at least 1".into());
                }
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    SchedulerKind::from_name(&args.scheduler)?;
    Ok(args)
}

fn parse_cache_args<'a>(mut it: impl Iterator<Item = &'a String>) -> Result<CacheArgs, String> {
    let action = it
        .next()
        .ok_or("cache needs an action: stats, verify, prune, import, merge, export")?;
    let mut dir: Option<String> = None;
    let mut operand: Option<String> = None;
    let mut max_age_days: Option<f64> = None;
    let mut keep_retired = false;
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--cache-dir" => dir = Some(value()?),
            "--max-age" if action == "prune" => {
                let days: f64 = value()?.parse().map_err(|e| format!("--max-age: {e}"))?;
                if !(days.is_finite() && days > 0.0) {
                    return Err("--max-age: must be a positive number of days".into());
                }
                max_age_days = Some(days);
            }
            "--keep-retired" if action == "prune" => keep_retired = true,
            other if !other.starts_with('-') && operand.is_none() => {
                operand = Some(other.to_string());
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let need_operand = |what: &str| {
        operand
            .clone()
            .ok_or_else(|| format!("cache {action} needs a {what} directory"))
    };
    let action = match action.as_str() {
        "stats" | "verify" | "prune" if operand.is_some() => {
            return Err(format!(
                "cache {action} takes no positional argument (got `{}`)",
                operand.unwrap_or_default()
            ))
        }
        "stats" => CacheAction::Stats,
        "verify" => CacheAction::Verify,
        "prune" => CacheAction::Prune {
            max_age_days,
            keep_retired,
        },
        "import" | "merge" => CacheAction::Import {
            src: need_operand("source")?,
        },
        "export" => CacheAction::Export {
            dest: need_operand("destination")?,
        },
        other => {
            return Err(format!(
                "unknown cache action `{other}` (stats, verify, prune, import, merge, export)"
            ))
        }
    };
    Ok(CacheArgs {
        action,
        dir: dir.unwrap_or_else(|| "results/cache".to_string()),
    })
}

fn build_trace(args: &SimArgs) -> Result<Trace, String> {
    let durations = match args.durations.to_ascii_lowercase().as_str() {
        "alibaba" => DurationModelChoice::Alibaba,
        "gavel" => DurationModelChoice::Gavel,
        other => return Err(format!("unknown duration model `{other}`")),
    };
    let cfg = AlibabaTraceConfig {
        num_jobs: args.jobs,
        arrival_rate_per_hour: args.rate,
        durations,
    };
    Ok(cfg.generate(args.seed))
}

fn round_period(args: &SimArgs) -> SimDuration {
    SimDuration::from_hours_f64(args.period_mins / 60.0)
}

fn run(cli: Cli) -> Result<(), String> {
    match cli.command {
        Command::Help => {
            println!(
                "eva — cost-efficient cloud-based cluster scheduling (EuroSys '25 reproduction)\n\n\
                 USAGE:\n  eva simulate [--jobs N] [--rate J/HR] [--scheduler NAME] [--durations alibaba|gavel] [--seed N] [--period MINS] [--faults REGIME[:INT]] [--threads N] [--json FILE]\n  \
                 eva compare  [--jobs N] [--rate J/HR] [--durations ...] [--seed N] [--period MINS] [--faults REGIME[:INT]] [--threads N]\n  \
                 eva sweep    [--jobs N] [--rate J/HR] [--durations ...] [--schedulers A,B,..] [--seeds S1,S2,..] [--backend sim|live|sim,live] [--faults REGIME[:INT]] [--threads N] [--procs N] [--shard N|auto[:JOBS]] [--cache] [--no-cache] [--cache-dir DIR] [--period MINS] [--json FILE]\n  \
                 eva serve    --source synthetic:RATE|trace:PATH|stdin [--scheduler NAME] [--seed N] [--period MINS] [--duration HOURS] [--metrics-every SECS] [--max-jobs N]\n  \
                 eva cache    stats|verify|prune [--max-age DAYS] [--keep-retired] [--cache-dir DIR]\n  \
                 eva cache    import|merge SRC | export DEST [--cache-dir DIR]\n  \
                 eva workloads\n  eva catalog\n\n\
                 SCHEDULERS: {}\n  BACKENDS: {} (`--backend sim,live` adds a grid axis: live cells\n\
                 replay the schedule through the real master/worker runtime)\n  \
                 FAULT REGIMES: {} — `--faults preempt-storm:2`\n\
                 compiles a deterministic fault schedule from (seed, regime,\n\
                 intensity) and injects it on whichever backend runs, so\n\
                 sim-vs-live deltas under faults measure control-plane\n\
                 robustness, not noise.\n\n\
                 `--threads 0` (the default) uses every available core; sweep results\n\
                 are byte-identical for any thread count, identical cells run once,\n\
                 and the longest cells are claimed first. A single `simulate` run is\n\
                 one cell, so `--threads` is accepted there but has no effect.\n\n\
                 `--shard N` splits the trace into N arrival-time windows that run as\n\
                 independent cells (bounding per-cell memory) and splices their\n\
                 reports back into whole-trace rows, flagging approximate metrics.\n\
                 `--shard auto[:JOBS]` plans the windows from arrival density instead:\n\
                 each targets JOBS jobs and cuts where every earlier job is estimated\n\
                 to have drained. Every sharded sweep prints a partition audit —\n\
                 jobs straddling a window boundary demote the integer metrics from\n\
                 exact to inexact in the spliced rows and the --json artifact.\n\
                 `--cache` / `--cache-dir DIR` memoize cell reports on disk (default\n\
                 DIR results/cache, shared with the exp_* binaries, keyed by trace\n\
                 content + all knobs + code schema version); a warm rerun simulates\n\
                 zero cells. `--no-cache` is the CLI default.\n\n\
                 `--procs N` federates the sweep over N processes: the coordinator\n\
                 spawns N-1 workers that claim unclaimed cells longest-first via\n\
                 atomic claim files in the cache dir, publish into the cache, and\n\
                 exit; the coordinator merges in cell order, so results and --json\n\
                 bytes are identical to --procs 1. Claims are stealable after\n\
                 EVA_CLAIM_STALE_SECS (600) — a killed worker never wedges a run.\n\
                 Implies --cache. `eva cache` manages the dir: stats/verify audit\n\
                 entries (re-hash against stored keys, report orphaned temps and\n\
                 claims), prune removes retired-schema/over-age/corrupt entries,\n\
                 import/merge/export union cache dirs (e.g. rsync'd from another\n\
                 host). Entries carry a `producer` stamp naming the binary that\n\
                 first computed each cell.",
                SchedulerKind::names().join(", "),
                BackendKind::names().join(", "),
                FaultRegime::names().join(", ")
            );
        }
        Command::Workloads => {
            for w in WorkloadCatalog::table7().iter() {
                println!(
                    "{:<12} {:<28} {} ×{}",
                    w.name, w.domain, w.demand.default, w.num_tasks
                );
            }
        }
        Command::Catalog => {
            for t in eva::cloud::Catalog::aws_eval_2025().types() {
                println!("{t}");
            }
        }
        Command::Simulate(args) => {
            let trace = build_trace(&args)?;
            let kind = SchedulerKind::from_name(&args.scheduler)?;
            println!(
                "simulating {} jobs at {}/hr under {} (seed {})...",
                args.jobs,
                args.rate,
                kind.label(),
                args.seed
            );
            if !args.faults.is_none() {
                println!("injecting faults: {}", args.faults.label());
            }
            let mut cfg = SimConfig::new(trace, kind);
            cfg.seed = args.seed;
            cfg.round_period = round_period(&args);
            cfg.faults = args.faults;
            let report = run_simulation(&cfg);
            println!("{}", report.table_row(None));
            if let Some(path) = args.json {
                let json =
                    serde_json::to_string_pretty(&report).map_err(|e| format!("serialize: {e}"))?;
                std::fs::write(&path, json).map_err(|e| format!("write {path}: {e}"))?;
                println!("saved {path}");
            }
        }
        Command::Compare(args) => {
            let trace = build_trace(&args)?;
            let grid = SweepGrid::new("cli", trace)
                .paper_schedulers()
                .seeds(vec![args.seed])
                .faults(vec![args.faults])
                .round_period(round_period(&args));
            let result = SweepRunner::new(args.threads).run(&grid);
            let mut baseline: Option<&SimReport> = None;
            for cell in &result.cells {
                println!("{}", cell.report.table_row(baseline));
                baseline = baseline.or(Some(&cell.report));
            }
        }
        Command::Sweep(args) => {
            let trace = build_trace(&args.sim)?;
            let names: Vec<&str> = args.schedulers.iter().map(String::as_str).collect();
            let backends = args
                .backends
                .iter()
                .map(|name| BackendKind::from_name(name))
                .collect::<Result<Vec<_>, String>>()?;
            let mut grid = SweepGrid::new("cli", trace)
                .schedulers_by_name(&names)?
                .seeds(args.seeds.clone())
                .backends(backends)
                .faults(vec![args.sim.faults])
                .round_period(round_period(&args.sim));
            if let Some(policy) = args.shard {
                grid = grid.shards(policy);
                // Report what the planner actually did: `--shard 8` on a
                // sparse trace can produce fewer windows, and `auto` can
                // leave a within-budget trace whole.
                println!("shard plan: {}", ShardMeta::plan_summary(&grid.shard_metas()));
            }
            let mut runner = SweepRunner::new(args.sim.threads);
            if args.cache {
                let dir = args
                    .cache_dir
                    .clone()
                    .unwrap_or_else(|| "results/cache".to_string());
                runner = runner.with_cache(ReportCache::new(dir));
            }
            if args.procs > 1 || worker_role() {
                runner = runner.with_federation(Federation::new(args.procs));
            }
            println!(
                "sweeping {} cells ({} schedulers × {} seeds × {} backends, {} jobs{}) on {} threads{}...",
                grid.cell_count(),
                args.schedulers.len(),
                args.seeds.len(),
                args.backends.len(),
                args.sim.jobs,
                if args.shard.is_some() {
                    format!(", {} shard window(s)", grid.trace_axis_len())
                } else {
                    String::new()
                },
                runner.threads(),
                if args.procs > 1 {
                    format!(" × {} federated procs", args.procs)
                } else {
                    String::new()
                }
            );
            let (result, stats) = runner.run_with_stats(&grid);
            println!("cells: {}", stats.summary());
            println!(
                "{:<16} {:>6} {:>6} {:>6}  report",
                "scheduler", "seed", "exec", "shard"
            );
            for cell in &result.cells {
                println!(
                    "{:<16} {:>6} {:>6} {:>6}  {}",
                    cell.key.scheduler,
                    cell.key.seed,
                    cell.key.backend,
                    cell.key.shard_label(),
                    cell.report.table_row(None)
                );
            }
            let spliced = args.shard.is_some().then(|| {
                let spliced = result.spliced();
                if let Some(audit) = spliced.audit() {
                    println!("partition audit: {}", audit.summary());
                }
                println!(
                    "spliced to {} whole-trace rows (approximate metrics flagged: {}):",
                    spliced.cells.len(),
                    spliced
                        .cells
                        .first()
                        .map(|c| c.inexact_metrics.join(", "))
                        .unwrap_or_default()
                );
                for cell in &spliced.cells {
                    println!(
                        "{:<16} {:>6} {:>6} {:>6}  {}",
                        cell.key.scheduler,
                        cell.key.seed,
                        cell.key.backend,
                        format!("={}", cell.shards),
                        cell.report.table_row(None)
                    );
                }
                spliced
            });
            if let Some(path) = args.sim.json {
                // Federation workers inherit the coordinator's argv; the
                // coordinator alone owns the artifact file.
                if !worker_role() {
                    let json = match spliced {
                        Some(spliced) => SweepArtifact {
                            sweep: result,
                            spliced,
                        }
                        .to_json_pretty(),
                        None => result.to_json_pretty(),
                    };
                    std::fs::write(&path, json).map_err(|e| format!("write {path}: {e}"))?;
                    println!("saved {path}");
                }
            }
            join_workers();
        }
        Command::Serve(args) => run_serve(args)?,
        Command::Cache(args) => run_cache(args)?,
    }
    Ok(())
}

/// The `eva serve` service loop: builds the requested job source, runs a
/// streaming world with job retirement on, and emits rolling
/// [`MetricsSnapshot`] JSON lines on stdout (human commentary goes to
/// stderr so the stdout stream stays machine-parseable).
fn run_serve(args: ServeArgs) -> Result<(), String> {
    let kind = SchedulerKind::from_name(&args.scheduler)?;
    let kind_label = kind.label();
    let mut cfg = SimConfig::new(TraceHandle::new(Trace::new(Vec::new())), kind);
    cfg.seed = args.seed;
    cfg.round_period = SimDuration::from_hours_f64(args.period_mins / 60.0);
    // Service mode is long-lived by design: completed jobs retire their
    // arena slots so memory tracks the in-flight window.
    cfg.retire_completed = true;
    let (source, label): (Box<dyn JobSource>, String) = match &args.source {
        ServeSource::Synthetic { rate_per_hour } => (
            Box::new(SyntheticSource::open_loop(
                *rate_per_hour,
                args.max_jobs,
                args.seed,
            )),
            format!("synthetic open-loop at {rate_per_hour} jobs/h"),
        ),
        ServeSource::Trace { path } => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
            let trace = Trace::from_json(&text).map_err(|e| format!("parse {path}: {e}"))?;
            let label = format!("trace {path} ({} jobs)", trace.len());
            (
                Box::new(TraceSource::new(TraceHandle::new(trace))),
                label,
            )
        }
        ServeSource::Stdin => (
            Box::new(JsonLinesSource::new(std::io::BufReader::new(
                std::io::stdin(),
            ))),
            "line-delimited JSON on stdin".to_string(),
        ),
    };
    let opts = ServeConfig {
        metrics_every: SimDuration::from_hours_f64(args.metrics_every_secs / 3600.0),
        duration: args.duration_hours.map(SimDuration::from_hours_f64),
    };
    eprintln!(
        "serving {} under {} (seed {}, metrics every {}s{})",
        label,
        kind_label,
        args.seed,
        args.metrics_every_secs,
        match args.duration_hours {
            Some(h) => format!(", ingest horizon {h}h"),
            None => ", until the source drains".to_string(),
        }
    );
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let outcome = serve(&cfg, source, &opts, &mut out).map_err(|e| format!("serve: {e}"))?;
    eprintln!(
        "drained: {} jobs ingested, {} rolling metrics line(s), peak {} arena job rows",
        outcome.jobs_ingested, outcome.metrics_lines, outcome.peak_job_rows
    );
    eprintln!("{}", outcome.report.table_row(None));
    Ok(())
}

/// The `eva cache` lifecycle actions. Opens the dir without the
/// usual on-open temp sweep ([`ReportCache::with_schema`]) so `stats` and
/// `verify` report orphaned litter instead of silently removing it.
fn run_cache(args: CacheArgs) -> Result<(), String> {
    let cache = ReportCache::with_schema(&args.dir, SCHEMA_VERSION);
    let stale = claim_stale_deadline();
    match args.action {
        CacheAction::Stats => {
            let stats = cache.stats();
            println!(
                "cache {}: {} entries ({} current {}), {:.1} KiB",
                args.dir,
                stats.entries,
                stats.current_schema,
                SCHEMA_VERSION,
                stats.bytes as f64 / 1024.0
            );
            for (schema, n) in &stats.schemas {
                println!("  schema   {schema:<24} {n}");
            }
            for (producer, n) in &stats.producers {
                println!("  producer {producer:<24} {n}");
            }
            if stats.temps > 0 || stats.claims > 0 {
                println!("  litter: {} temp(s), {} claim(s)", stats.temps, stats.claims);
            }
        }
        CacheAction::Verify => {
            let report = cache.verify(stale);
            println!(
                "verified {} entries: {} valid ({} retired-schema), {} issue(s)",
                report.entries,
                report.valid,
                report.retired,
                report.issues.len()
            );
            for issue in &report.issues {
                println!("  issue {}: {}", issue.file, issue.problem);
            }
            for temp in &report.temps {
                println!("  orphaned temp {temp}");
            }
            for claim in &report.claims {
                println!("  claim {claim}");
            }
            if !report.clean() {
                return Err("cache verify: not clean".into());
            }
            println!("cache verify: clean");
        }
        CacheAction::Prune {
            max_age_days,
            keep_retired,
        } => {
            let max_age = max_age_days
                .map(|days| std::time::Duration::from_secs_f64(days * 86_400.0));
            let report = cache.prune(max_age, !keep_retired, stale);
            println!(
                "pruned: {} retired, {} over-age, {} corrupt, {} temp(s), {} claim(s); {} kept",
                report.removed_retired,
                report.removed_old,
                report.removed_corrupt,
                report.removed_temps,
                report.removed_claims,
                report.kept
            );
        }
        CacheAction::Import { src } => {
            let report = cache.merge_from(std::path::Path::new(&src));
            print_merge(&format!("imported {src} into {}", args.dir), &report);
        }
        CacheAction::Export { dest } => {
            let report = cache.export_to(std::path::Path::new(&dest));
            print_merge(&format!("exported {} into {dest}", args.dir), &report);
        }
    }
    Ok(())
}

fn print_merge(what: &str, report: &MergeReport) {
    println!(
        "{what}: {} imported, {} identical, {} equivalent, {} conflicting, {} invalid",
        report.imported,
        report.skipped_identical,
        report.skipped_equivalent,
        report.conflicting,
        report.invalid
    );
    if report.conflicting > 0 {
        eprintln!(
            "warning: {} entr{} disagree about the same content key — kept the local copies",
            report.conflicting,
            if report.conflicting == 1 { "y" } else { "ies" }
        );
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse(&args).and_then(run) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_simulate_flags() {
        let cli = parse(&argv(
            "simulate --jobs 100 --rate 2.5 --scheduler stratus --seed 7 --period 10 --threads 2",
        ))
        .unwrap();
        let Command::Simulate(args) = cli.command else {
            panic!()
        };
        assert_eq!(args.jobs, 100);
        assert_eq!(args.rate, 2.5);
        assert_eq!(args.scheduler, "stratus");
        assert_eq!(args.seed, 7);
        assert_eq!(args.period_mins, 10.0);
        assert_eq!(args.threads, 2);
    }

    #[test]
    fn parses_sweep_flags() {
        let cli = parse(&argv(
            "sweep --jobs 50 --schedulers eva,owl --seeds 1,2,3 --threads 4",
        ))
        .unwrap();
        let Command::Sweep(args) = cli.command else {
            panic!()
        };
        assert_eq!(args.schedulers, vec!["eva", "owl"]);
        assert_eq!(args.seeds, vec![1, 2, 3]);
        assert_eq!(args.sim.threads, 4);
        assert_eq!(args.sim.jobs, 50);
    }

    #[test]
    fn parses_serve_flags() {
        let cli = parse(&argv(
            "serve --source synthetic:6.5 --scheduler stratus --seed 3 --period 10 \
             --duration 48 --metrics-every 120 --max-jobs 500",
        ))
        .unwrap();
        let Command::Serve(args) = cli.command else {
            panic!()
        };
        assert_eq!(
            args.source,
            ServeSource::Synthetic { rate_per_hour: 6.5 }
        );
        assert_eq!(args.scheduler, "stratus");
        assert_eq!(args.seed, 3);
        assert_eq!(args.period_mins, 10.0);
        assert_eq!(args.duration_hours, Some(48.0));
        assert_eq!(args.metrics_every_secs, 120.0);
        assert_eq!(args.max_jobs, 500);
    }

    #[test]
    fn parses_serve_source_kinds() {
        let cli = parse(&argv("serve --source trace:/tmp/t.json")).unwrap();
        let Command::Serve(args) = cli.command else {
            panic!()
        };
        assert_eq!(
            args.source,
            ServeSource::Trace {
                path: "/tmp/t.json".to_string()
            }
        );
        let cli = parse(&argv("serve --source stdin")).unwrap();
        let Command::Serve(args) = cli.command else {
            panic!()
        };
        assert_eq!(args.source, ServeSource::Stdin);
        // Defaults: synthetic open loop, eva scheduler, no horizon.
        let cli = parse(&argv("serve")).unwrap();
        let Command::Serve(args) = cli.command else {
            panic!()
        };
        assert_eq!(
            args.source,
            ServeSource::Synthetic { rate_per_hour: 3.0 }
        );
        assert_eq!(args.duration_hours, None);
    }

    #[test]
    fn rejects_bad_serve_specs() {
        for bad in [
            "serve --source synthetic:0",
            "serve --source synthetic:-2",
            "serve --source synthetic:abc",
            "serve --source trace:",
            "serve --source carrier-pigeon",
            "serve --metrics-every 0",
            "serve --duration -1",
            "serve --max-jobs 0",
        ] {
            assert!(parse(&argv(bad)).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn rejects_unknown_command_and_flags() {
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("simulate --bogus 1")).is_err());
        assert!(parse(&argv("simulate --jobs")).is_err());
        assert!(parse(&argv("simulate --jobs abc")).is_err());
        // Axis flags are sweep-only.
        assert!(parse(&argv("simulate --schedulers eva,owl")).is_err());
        assert!(parse(&argv("sweep --scheduler eva")).is_err());
    }

    #[test]
    fn rejects_bad_period_and_threads() {
        for bad in [
            "simulate --period abc",
            "simulate --period 0",
            "simulate --period -5",
            "compare --threads abc",
            "sweep --threads",
        ] {
            let err = parse(&argv(bad)).unwrap_err();
            let flag = if bad.contains("--period") {
                "--period"
            } else {
                "--threads"
            };
            assert!(err.contains(flag), "{bad} → {err}");
        }
    }

    #[test]
    fn rejects_bad_sweep_axes() {
        assert!(parse(&argv("sweep --schedulers eva,slurm")).is_err());
        assert!(parse(&argv("sweep --seeds 1,x")).is_err());
        assert!(parse(&argv("sweep --backend hardware")).is_err());
        assert!(parse(&argv("simulate --backend live")).is_err(), "sweep-only");
    }

    #[test]
    fn parses_shard_and_cache_flags() {
        let cli = parse(&argv("sweep --shard 4 --cache-dir /tmp/c")).unwrap();
        let Command::Sweep(args) = cli.command else {
            panic!()
        };
        assert_eq!(args.shard, Some(ShardPolicy::Windows(4)));
        assert!(args.cache);
        assert_eq!(args.cache_dir.as_deref(), Some("/tmp/c"));

        let Command::Sweep(defaults) = parse(&argv("sweep")).unwrap().command else {
            panic!()
        };
        assert_eq!(defaults.shard, None);
        assert!(!defaults.cache, "CLI caching is opt-in");

        let Command::Sweep(auto) = parse(&argv("sweep --shard auto")).unwrap().command else {
            panic!()
        };
        assert_eq!(auto.shard, Some(ShardPolicy::auto()));
        let Command::Sweep(budget) = parse(&argv("sweep --shard auto:50")).unwrap().command
        else {
            panic!()
        };
        assert_eq!(budget.shard, Some(ShardPolicy::auto_with_budget(50)));

        // 0/1 windows used to run unsharded silently — now rejected with
        // a flag-style error.
        for bad in ["sweep --shard 0", "sweep --shard 1", "sweep --shard auto:0"] {
            let err = parse(&argv(bad)).unwrap_err();
            assert!(err.contains("--shard"), "{bad} → {err}");
        }

        let Command::Sweep(cached) = parse(&argv("sweep --cache")).unwrap().command else {
            panic!()
        };
        assert!(cached.cache);
        assert!(cached.cache_dir.is_none());

        let Command::Sweep(off) =
            parse(&argv("sweep --cache-dir /tmp/c --no-cache")).unwrap().command
        else {
            panic!()
        };
        assert!(!off.cache);

        // Sweep-only flags are rejected elsewhere; bad values error.
        assert!(parse(&argv("simulate --shard 4")).is_err());
        assert!(parse(&argv("simulate --cache")).is_err());
        assert!(parse(&argv("sweep --shard abc")).is_err());
        assert!(parse(&argv("sweep --cache-dir")).is_err());
    }

    #[test]
    fn parses_procs_flag() {
        let Command::Sweep(args) = parse(&argv("sweep --procs 3")).unwrap().command else {
            panic!()
        };
        assert_eq!(args.procs, 3);
        assert!(args.cache, "--procs > 1 implies the cache");
        let Command::Sweep(one) = parse(&argv("sweep --procs 1")).unwrap().command else {
            panic!()
        };
        assert_eq!(one.procs, 1);
        assert!(!one.cache, "--procs 1 leaves caching opt-in");
        let Command::Sweep(plain) = parse(&argv("sweep")).unwrap().command else {
            panic!()
        };
        assert_eq!(plain.procs, 1);
        assert!(parse(&argv("sweep --procs 0")).is_err());
        assert!(parse(&argv("sweep --procs abc")).is_err());
        assert!(parse(&argv("simulate --procs 2")).is_err(), "sweep-only");
        // Federation coordinates through the cache dir.
        assert!(parse(&argv("sweep --procs 2 --no-cache")).is_err());
        assert!(parse(&argv("sweep --no-cache --procs 2")).is_err());
    }

    #[test]
    fn parses_cache_subcommand() {
        let Command::Cache(stats) = parse(&argv("cache stats")).unwrap().command else {
            panic!()
        };
        assert_eq!(stats.action, CacheAction::Stats);
        assert_eq!(stats.dir, "results/cache");

        let Command::Cache(verify) =
            parse(&argv("cache verify --cache-dir /tmp/c")).unwrap().command
        else {
            panic!()
        };
        assert_eq!(verify.action, CacheAction::Verify);
        assert_eq!(verify.dir, "/tmp/c");

        let Command::Cache(prune) =
            parse(&argv("cache prune --max-age 30 --keep-retired")).unwrap().command
        else {
            panic!()
        };
        assert_eq!(
            prune.action,
            CacheAction::Prune {
                max_age_days: Some(30.0),
                keep_retired: true
            }
        );

        let Command::Cache(import) = parse(&argv("cache import /tmp/other")).unwrap().command
        else {
            panic!()
        };
        assert_eq!(
            import.action,
            CacheAction::Import {
                src: "/tmp/other".into()
            }
        );
        let Command::Cache(merge) = parse(&argv("cache merge /tmp/other")).unwrap().command
        else {
            panic!()
        };
        assert_eq!(merge.action, import.action, "merge is an alias of import");
        let Command::Cache(export) = parse(&argv("cache export /tmp/dest")).unwrap().command
        else {
            panic!()
        };
        assert_eq!(
            export.action,
            CacheAction::Export {
                dest: "/tmp/dest".into()
            }
        );

        assert!(parse(&argv("cache")).is_err());
        assert!(parse(&argv("cache shred")).is_err());
        assert!(parse(&argv("cache import")).is_err(), "import needs a dir");
        assert!(parse(&argv("cache stats extra")).is_err());
        assert!(parse(&argv("cache prune --max-age 0")).is_err());
        assert!(parse(&argv("cache stats --max-age 3")).is_err(), "prune-only");
    }

    #[test]
    fn parses_fault_flags() {
        // --faults is shared by all three simulation commands.
        let Command::Simulate(args) = parse(&argv("simulate --faults preempt-storm:2"))
            .unwrap()
            .command
        else {
            panic!()
        };
        assert_eq!(args.faults.regime, FaultRegime::PreemptStorm);
        assert_eq!(args.faults.intensity, 2.0);
        let Command::Compare(args) = parse(&argv("compare --faults ckpt-drop")).unwrap().command
        else {
            panic!()
        };
        assert_eq!(args.faults.regime, FaultRegime::CkptDrop);
        let Command::Sweep(args) = parse(&argv("sweep --faults worker-crash:0.5"))
            .unwrap()
            .command
        else {
            panic!()
        };
        assert_eq!(args.sim.faults.regime, FaultRegime::WorkerCrash);
        assert_eq!(args.sim.faults.intensity, 0.5);
        // Default is fault-free; bad regimes/intensities are flag errors.
        let Command::Simulate(plain) = parse(&argv("simulate")).unwrap().command else {
            panic!()
        };
        assert!(plain.faults.is_none());
        for bad in [
            "simulate --faults meteor",
            "simulate --faults preempt-storm:-1",
            "sweep --faults none:2",
            "sweep --faults",
        ] {
            let err = parse(&argv(bad)).unwrap_err();
            assert!(err.contains("--faults") || err.contains("faults"), "{bad} → {err}");
        }
    }

    #[test]
    fn parses_backend_axis() {
        let cli = parse(&argv("sweep --backend sim,live")).unwrap();
        let Command::Sweep(args) = cli.command else {
            panic!()
        };
        assert_eq!(args.backends, vec!["sim", "live"]);
        let Command::Sweep(default_args) = parse(&argv("sweep")).unwrap().command else {
            panic!()
        };
        assert_eq!(default_args.backends, vec!["sim"]);
    }

    #[test]
    fn default_command_is_help() {
        assert_eq!(parse(&[]).unwrap().command, Command::Help);
    }

    #[test]
    fn scheduler_names_resolve() {
        for name in SchedulerKind::names() {
            assert!(SchedulerKind::from_name(name).is_ok(), "{name}");
        }
        assert!(SchedulerKind::from_name("slurm").is_err());
    }

    #[test]
    fn duration_models_resolve() {
        let mut args = SimArgs {
            jobs: 5,
            ..SimArgs::default()
        };
        assert!(build_trace(&args).is_ok());
        args.durations = "gavel".into();
        assert!(build_trace(&args).is_ok());
        args.durations = "weibull".into();
        assert!(build_trace(&args).is_err());
    }
}
