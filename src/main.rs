//! `eva` — command-line front end for the simulator and catalogs.
//!
//! ```text
//! eva simulate [--jobs N] [--rate JOBS_PER_HR] [--scheduler NAME]
//!              [--durations alibaba|gavel] [--seed N] [--period MINS]
//!              [--json FILE]
//! eva compare  [--jobs N] [--rate JOBS_PER_HR] [--durations ...] [--seed N]
//!              [--period MINS] [--threads N]
//! eva sweep    [--jobs N] [--rate JOBS_PER_HR] [--durations ...]
//!              [--schedulers A,B,..] [--seeds S1,S2,..]
//!              [--backend sim|live|sim,live] [--threads N]
//!              [--period MINS] [--json FILE]
//! eva workloads        # print the Table 7 workload catalog
//! eva catalog          # print the 21-type AWS instance catalog
//! ```

use std::process::ExitCode;

use eva::prelude::*;

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    command: Command,
}

#[derive(Debug, Clone, PartialEq)]
enum Command {
    Simulate(SimArgs),
    Compare(SimArgs),
    Sweep(SweepArgs),
    Workloads,
    Catalog,
    Help,
}

#[derive(Debug, Clone, PartialEq)]
struct SimArgs {
    jobs: usize,
    rate: f64,
    scheduler: String,
    durations: String,
    seed: u64,
    period_mins: f64,
    threads: usize,
    json: Option<String>,
}

impl Default for SimArgs {
    fn default() -> Self {
        SimArgs {
            jobs: 500,
            rate: 3.0,
            scheduler: "eva".into(),
            durations: "alibaba".into(),
            seed: 42,
            period_mins: 5.0,
            threads: 0,
            json: None,
        }
    }
}

/// Arguments of the `sweep` subcommand: the shared simulation knobs plus
/// the scheduler, seed, and backend axes of the grid.
#[derive(Debug, Clone, PartialEq)]
struct SweepArgs {
    sim: SimArgs,
    schedulers: Vec<String>,
    seeds: Vec<u64>,
    backends: Vec<String>,
}

impl Default for SweepArgs {
    fn default() -> Self {
        SweepArgs {
            sim: SimArgs::default(),
            schedulers: vec![
                "no-packing".into(),
                "stratus".into(),
                "synergy".into(),
                "owl".into(),
                "eva".into(),
            ],
            seeds: vec![42],
            backends: vec!["sim".into()],
        }
    }
}

/// Parses arguments (exposed for testing).
pub fn parse(args: &[String]) -> Result<Cli, String> {
    let mut it = args.iter();
    let command = match it.next().map(String::as_str) {
        Some("simulate") => Command::Simulate(parse_sim_args(it, false)?.sim),
        Some("compare") => Command::Compare(parse_sim_args(it, false)?.sim),
        Some("sweep") => Command::Sweep(parse_sim_args(it, true)?),
        Some("workloads") => Command::Workloads,
        Some("catalog") => Command::Catalog,
        Some("help") | Some("--help") | Some("-h") | None => Command::Help,
        Some(other) => return Err(format!("unknown command `{other}` (try `eva help`)")),
    };
    Ok(Cli { command })
}

fn parse_sim_args<'a>(
    mut it: impl Iterator<Item = &'a String>,
    sweep: bool,
) -> Result<SweepArgs, String> {
    let mut args = SweepArgs::default();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--jobs" => args.sim.jobs = value()?.parse().map_err(|e| format!("--jobs: {e}"))?,
            "--rate" => args.sim.rate = value()?.parse().map_err(|e| format!("--rate: {e}"))?,
            "--scheduler" if !sweep => args.sim.scheduler = value()?,
            "--durations" => args.sim.durations = value()?,
            "--seed" => args.sim.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--period" => {
                args.sim.period_mins = value()?.parse().map_err(|e| format!("--period: {e}"))?;
                if !(args.sim.period_mins.is_finite() && args.sim.period_mins > 0.0) {
                    return Err("--period: must be a positive number of minutes".into());
                }
            }
            "--threads" => {
                args.sim.threads = value()?.parse().map_err(|e| format!("--threads: {e}"))?
            }
            "--schedulers" if sweep => {
                args.schedulers = value()?.split(',').map(str::to_string).collect();
                for name in &args.schedulers {
                    SchedulerKind::from_name(name)?;
                }
            }
            "--seeds" if sweep => {
                args.seeds = value()?
                    .split(',')
                    .map(|s| s.parse().map_err(|e| format!("--seeds: {e}")))
                    .collect::<Result<Vec<u64>, String>>()?;
            }
            "--backend" if sweep => {
                args.backends = value()?.split(',').map(str::to_string).collect();
                for name in &args.backends {
                    BackendKind::from_name(name).map_err(|e| format!("--backend: {e}"))?;
                }
            }
            "--json" => args.sim.json = Some(value()?),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn build_trace(args: &SimArgs) -> Result<Trace, String> {
    let durations = match args.durations.to_ascii_lowercase().as_str() {
        "alibaba" => DurationModelChoice::Alibaba,
        "gavel" => DurationModelChoice::Gavel,
        other => return Err(format!("unknown duration model `{other}`")),
    };
    let cfg = AlibabaTraceConfig {
        num_jobs: args.jobs,
        arrival_rate_per_hour: args.rate,
        durations,
    };
    Ok(cfg.generate(args.seed))
}

fn round_period(args: &SimArgs) -> SimDuration {
    SimDuration::from_hours_f64(args.period_mins / 60.0)
}

fn run(cli: Cli) -> Result<(), String> {
    match cli.command {
        Command::Help => {
            println!(
                "eva — cost-efficient cloud-based cluster scheduling (EuroSys '25 reproduction)\n\n\
                 USAGE:\n  eva simulate [--jobs N] [--rate J/HR] [--scheduler NAME] [--durations alibaba|gavel] [--seed N] [--period MINS] [--threads N] [--json FILE]\n  \
                 eva compare  [--jobs N] [--rate J/HR] [--durations ...] [--seed N] [--period MINS] [--threads N]\n  \
                 eva sweep    [--jobs N] [--rate J/HR] [--durations ...] [--schedulers A,B,..] [--seeds S1,S2,..] [--backend sim|live|sim,live] [--threads N] [--period MINS] [--json FILE]\n  \
                 eva workloads\n  eva catalog\n\n\
                 SCHEDULERS: {}\n  BACKENDS: {} (`--backend sim,live` adds a grid axis: live cells\n\
                 replay the schedule through the real master/worker runtime)\n\n\
                 `--threads 0` (the default) uses every available core; sweep results\n\
                 are byte-identical for any thread count, identical cells run once,\n\
                 and the longest cells are claimed first. A single `simulate` run is\n\
                 one cell, so `--threads` is accepted there but has no effect.",
                SchedulerKind::names().join(", "),
                BackendKind::names().join(", ")
            );
        }
        Command::Workloads => {
            for w in WorkloadCatalog::table7().iter() {
                println!(
                    "{:<12} {:<28} {} ×{}",
                    w.name, w.domain, w.demand.default, w.num_tasks
                );
            }
        }
        Command::Catalog => {
            for t in eva::cloud::Catalog::aws_eval_2025().types() {
                println!("{t}");
            }
        }
        Command::Simulate(args) => {
            let trace = build_trace(&args)?;
            let kind = SchedulerKind::from_name(&args.scheduler)?;
            println!(
                "simulating {} jobs at {}/hr under {} (seed {})...",
                args.jobs,
                args.rate,
                kind.label(),
                args.seed
            );
            let mut cfg = SimConfig::new(trace, kind);
            cfg.seed = args.seed;
            cfg.round_period = round_period(&args);
            let report = run_simulation(&cfg);
            println!("{}", report.table_row(None));
            if let Some(path) = args.json {
                let json =
                    serde_json::to_string_pretty(&report).map_err(|e| format!("serialize: {e}"))?;
                std::fs::write(&path, json).map_err(|e| format!("write {path}: {e}"))?;
                println!("saved {path}");
            }
        }
        Command::Compare(args) => {
            let trace = build_trace(&args)?;
            let grid = SweepGrid::new("cli", trace)
                .paper_schedulers()
                .seeds(vec![args.seed])
                .round_period(round_period(&args));
            let result = SweepRunner::new(args.threads).run(&grid);
            let mut baseline: Option<&SimReport> = None;
            for cell in &result.cells {
                println!("{}", cell.report.table_row(baseline));
                baseline = baseline.or(Some(&cell.report));
            }
        }
        Command::Sweep(args) => {
            let trace = build_trace(&args.sim)?;
            let names: Vec<&str> = args.schedulers.iter().map(String::as_str).collect();
            let backends = args
                .backends
                .iter()
                .map(|name| BackendKind::from_name(name))
                .collect::<Result<Vec<_>, String>>()?;
            let grid = SweepGrid::new("cli", trace)
                .schedulers_by_name(&names)?
                .seeds(args.seeds.clone())
                .backends(backends)
                .round_period(round_period(&args.sim));
            let runner = SweepRunner::new(args.sim.threads);
            println!(
                "sweeping {} cells ({} unique: {} schedulers × {} seeds × {} backends, {} jobs) on {} threads...",
                grid.cell_count(),
                grid.unique_cell_count(),
                args.schedulers.len(),
                args.seeds.len(),
                args.backends.len(),
                args.sim.jobs,
                runner.threads()
            );
            let result = runner.run(&grid);
            println!("{:<16} {:>6} {:>6}  report", "scheduler", "seed", "exec");
            for cell in &result.cells {
                println!(
                    "{:<16} {:>6} {:>6}  {}",
                    cell.key.scheduler,
                    cell.key.seed,
                    cell.key.backend,
                    cell.report.table_row(None)
                );
            }
            if let Some(path) = args.sim.json {
                std::fs::write(&path, result.to_json_pretty())
                    .map_err(|e| format!("write {path}: {e}"))?;
                println!("saved {path}");
            }
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse(&args).and_then(run) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_simulate_flags() {
        let cli = parse(&argv(
            "simulate --jobs 100 --rate 2.5 --scheduler stratus --seed 7 --period 10 --threads 2",
        ))
        .unwrap();
        let Command::Simulate(args) = cli.command else {
            panic!()
        };
        assert_eq!(args.jobs, 100);
        assert_eq!(args.rate, 2.5);
        assert_eq!(args.scheduler, "stratus");
        assert_eq!(args.seed, 7);
        assert_eq!(args.period_mins, 10.0);
        assert_eq!(args.threads, 2);
    }

    #[test]
    fn parses_sweep_flags() {
        let cli = parse(&argv(
            "sweep --jobs 50 --schedulers eva,owl --seeds 1,2,3 --threads 4",
        ))
        .unwrap();
        let Command::Sweep(args) = cli.command else {
            panic!()
        };
        assert_eq!(args.schedulers, vec!["eva", "owl"]);
        assert_eq!(args.seeds, vec![1, 2, 3]);
        assert_eq!(args.sim.threads, 4);
        assert_eq!(args.sim.jobs, 50);
    }

    #[test]
    fn rejects_unknown_command_and_flags() {
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("simulate --bogus 1")).is_err());
        assert!(parse(&argv("simulate --jobs")).is_err());
        assert!(parse(&argv("simulate --jobs abc")).is_err());
        // Axis flags are sweep-only.
        assert!(parse(&argv("simulate --schedulers eva,owl")).is_err());
        assert!(parse(&argv("sweep --scheduler eva")).is_err());
    }

    #[test]
    fn rejects_bad_period_and_threads() {
        for bad in [
            "simulate --period abc",
            "simulate --period 0",
            "simulate --period -5",
            "compare --threads abc",
            "sweep --threads",
        ] {
            let err = parse(&argv(bad)).unwrap_err();
            let flag = if bad.contains("--period") {
                "--period"
            } else {
                "--threads"
            };
            assert!(err.contains(flag), "{bad} → {err}");
        }
    }

    #[test]
    fn rejects_bad_sweep_axes() {
        assert!(parse(&argv("sweep --schedulers eva,slurm")).is_err());
        assert!(parse(&argv("sweep --seeds 1,x")).is_err());
        assert!(parse(&argv("sweep --backend hardware")).is_err());
        assert!(parse(&argv("simulate --backend live")).is_err(), "sweep-only");
    }

    #[test]
    fn parses_backend_axis() {
        let cli = parse(&argv("sweep --backend sim,live")).unwrap();
        let Command::Sweep(args) = cli.command else {
            panic!()
        };
        assert_eq!(args.backends, vec!["sim", "live"]);
        let Command::Sweep(default_args) = parse(&argv("sweep")).unwrap().command else {
            panic!()
        };
        assert_eq!(default_args.backends, vec!["sim"]);
    }

    #[test]
    fn default_command_is_help() {
        assert_eq!(parse(&[]).unwrap().command, Command::Help);
    }

    #[test]
    fn scheduler_names_resolve() {
        for name in SchedulerKind::names() {
            assert!(SchedulerKind::from_name(name).is_ok(), "{name}");
        }
        assert!(SchedulerKind::from_name("slurm").is_err());
    }

    #[test]
    fn duration_models_resolve() {
        let mut args = SimArgs {
            jobs: 5,
            ..SimArgs::default()
        };
        assert!(build_trace(&args).is_ok());
        args.durations = "gavel".into();
        assert!(build_trace(&args).is_ok());
        args.durations = "weibull".into();
        assert!(build_trace(&args).is_err());
    }
}
