//! Eva: cost-efficient cloud-based cluster scheduling — Rust reproduction.
//!
//! This facade crate re-exports the workspace so downstream users depend
//! on one crate. See the README for a tour and the paper-to-crate
//! mapping.
//!
//! # Quickstart
//!
//! ```
//! use eva::prelude::*;
//!
//! // Schedule the paper's Table 3 example: four tasks over four types.
//! let catalog = Catalog::table3_example();
//! let mut eva = EvaScheduler::new(EvaConfig::eva());
//! let ctx = SchedulerContext {
//!     now: SimTime::ZERO,
//!     catalog: &catalog,
//!     tasks: &[],
//!     instances: &[],
//! };
//! assert!(eva.plan(&ctx).assignments.is_empty());
//! ```

pub use eva_baselines as baselines;
pub use eva_cloud as cloud;
pub use eva_core as core;
pub use eva_exec as exec;
pub use eva_interference as interference;
pub use eva_sim as sim;
pub use eva_solver as solver;
pub use eva_types as types;
pub use eva_workloads as workloads;

/// Most-used items in one import.
pub mod prelude {
    pub use eva_baselines::{NoPackingScheduler, OwlScheduler, StratusScheduler, SynergyScheduler};
    pub use eva_cloud::{Catalog, CloudProvider, DelayModel, FidelityMode};
    pub use eva_core::{EvaConfig, EvaScheduler, Plan, Scheduler, SchedulerContext, TaskSnapshot};
    pub use eva_sim::{
        claim_stale_deadline, join_workers, run_recorded, run_simulation, serve, worker_role,
        BackendKind, CacheStats, CellPool, ClaimStride, ClusterSim, ExecBackend, Experiment,
        FaultPlan,
        FaultRegime, FaultSpec, Federation, LiveBackend, LiveOutcome, MergeReport,
        MetricsRegistry, MetricsSnapshot, PartitionAudit,
        PoolStats, PruneReport, ReportCache, SchedulerKind, ServeConfig, ServeOutcome,
        SimBackend, SimConfig, SimReport,
        SplicedOutcome, SplicedResult, SweepArtifact, SweepGrid, SweepResult, SweepRunner,
        VerifyReport, SCHEMA_VERSION,
    };
    pub use eva_types::{
        Cost, DemandSpec, InstanceId, JobId, JobSpec, ResourceVector, SimDuration, SimTime, TaskId,
        TaskSpec, WorkloadKind,
    };
    pub use eva_workloads::{
        AlibabaTraceConfig, BoundedSource, DurationModelChoice, InterferenceModel, JobSource,
        JsonLinesSource, ShardMeta, ShardPlanner, ShardPolicy, SyntheticSource,
        SyntheticTraceConfig, Trace, TraceHandle, TraceSource, WorkloadCatalog,
    };
}
