//! Interference learning demo (§4.3–§4.4).
//!
//! Shows the co-location throughput table converging: the scheduler starts
//! with the optimistic default `t = 0.95`, observes real (Figure 1)
//! interference through simulated co-runs, and adjusts packing — the GCN +
//! A3C pair (true throughput 0.65) ends up separated while friendly pairs
//! stay packed.
//!
//! Run with: `cargo run --example interference_learning`

use eva::interference::{TaskContext, ThroughputMonitor};
use eva::prelude::*;

fn main() {
    let catalog = WorkloadCatalog::table7();
    let truth = InterferenceModel::measured(&catalog);
    let mut monitor = ThroughputMonitor::with_default_tput(0.95);

    let gcn = catalog.by_name("GCN").unwrap().kind;
    let a3c = catalog.by_name("A3C").unwrap().kind;
    let diamond = catalog.by_name("Diamond").unwrap().kind;

    println!("Before any observation (default t = 0.95):");
    println!(
        "  est tput(GCN | A3C)      = {:.2}",
        monitor.table().estimate(gcn, &[a3c])
    );
    println!(
        "  est tput(Diamond | GCN)  = {:.2}",
        monitor.table().estimate(diamond, &[gcn])
    );

    // Simulate a few scheduling rounds of observations from co-located runs.
    for round in 0..3 {
        let observed_gcn = truth.throughput(gcn, &[a3c]);
        monitor.observe_single_task(
            TaskContext::new(TaskId::new(JobId(round), 0), gcn, vec![a3c]),
            observed_gcn,
        );
        let observed_diamond = truth.throughput(diamond, &[gcn]);
        monitor.observe_single_task(
            TaskContext::new(TaskId::new(JobId(round), 1), diamond, vec![gcn]),
            observed_diamond,
        );
    }

    println!("\nAfter observing real co-runs (Figure 1 ground truth):");
    println!(
        "  est tput(GCN | A3C)      = {:.2}  (truth 0.65 — avoid this pair!)",
        monitor.table().estimate(gcn, &[a3c])
    );
    println!(
        "  est tput(Diamond | GCN)  = {:.2}  (truth 0.99 — pack freely)",
        monitor.table().estimate(diamond, &[gcn])
    );

    // The estimates feed straight into cost-efficiency: a $0.8/hr GCN task
    // at 0.65 throughput is only "worth" $0.52/hr — packing it with A3C
    // would need to save more than that to be adopted.
    println!("\nTNRP consequence: RP($0.80) × 0.65 = $0.52 — the GCN/A3C");
    println!("co-location cannot cover its instance share and is rejected.");
}
