//! Live execution demo: the master–worker runtime with EvaIterator.
//!
//! Spins up three in-process "instances", launches synthetic training
//! tasks as containers, polls throughput through the EvaIterator API, and
//! performs a live checkpoint → global storage → resume migration — the
//! §5 control plane without a cloud account.
//!
//! Run with: `cargo run --example live_cluster`

use std::time::Duration;

use eva::exec::bytes::Bytes;
use eva::exec::{Master, TaskProgram};
use eva::prelude::*;

/// A synthetic "training step": a little CPU work per iteration.
struct TrainingTask {
    loss: f64,
}

impl TaskProgram for TrainingTask {
    fn step(&mut self, iteration: u64) {
        // Simulate work.
        std::thread::sleep(Duration::from_micros(500));
        self.loss = 1.0 / (iteration + 1) as f64;
    }

    fn checkpoint(&self) -> Bytes {
        Bytes::copy_from_slice(&self.loss.to_le_bytes())
    }

    fn restore(&mut self, blob: &Bytes) {
        if blob.len() == 8 {
            let mut b = [0u8; 8];
            b.copy_from_slice(blob);
            self.loss = f64::from_le_bytes(b);
        }
    }
}

fn main() {
    let mut master = Master::new();
    for i in 0..3u64 {
        master.register_instance(
            InstanceId(i),
            Box::new(|_| Box::new(TrainingTask { loss: 1.0 })),
        );
    }
    println!("Cluster up: {} workers", master.worker_count());

    let job = JobId(1);
    let task = TaskId::new(job, 0);
    master.launch_task(InstanceId(0), task, 5_000).unwrap();
    println!("Launched {task} on i-000000 (5,000 iterations)");

    std::thread::sleep(Duration::from_millis(300));
    master.poll_throughput();
    master.drain_reports();
    let before = master.task_handle(task).unwrap();
    println!("Progress before migration: {} iterations", before.completed);

    println!("Migrating {task} to i-000001 (checkpoint → S3 stand-in → resume)...");
    master
        .migrate_task(task, InstanceId(1), Duration::from_secs(10))
        .unwrap();

    // Block on the exit report — a channel wait with a deadline, not a
    // poll loop.
    match master.wait_task_exit(task, Duration::from_secs(60)) {
        Ok(info) => println!(
            "Task finished ({:?}) with {} iterations — no work lost across migration.",
            info.exit, info.completed
        ),
        Err(e) => println!("(timed out waiting — {e:?})"),
    }
    master.shutdown();
}
