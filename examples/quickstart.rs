//! Quickstart: the paper's §4.2 worked example, end to end.
//!
//! Four tasks (Table 3b) are scheduled over four instance types
//! (Table 3a). Eva packs τ1, τ2, τ4 onto one `it1` and τ3 onto an `it3`,
//! for $12.80/hr instead of the $16.20/hr of one instance per task.
//!
//! Run with: `cargo run --example quickstart`

use eva::prelude::*;

fn task(job: u64, gpu: u32, cpu: u32, ram_gb: u64) -> TaskSnapshot {
    TaskSnapshot {
        id: TaskId::new(JobId(job), 0),
        workload: WorkloadKind(job as u32),
        demand: DemandSpec::uniform(ResourceVector::with_ram_gb(gpu, cpu, ram_gb)),
        checkpoint_delay: SimDuration::from_secs(2),
        launch_delay: SimDuration::from_secs(10),
        gang_size: 1,
        gang_coupled: false,
        assigned_to: None,
        remaining_hint: None,
    }
}

fn main() {
    let catalog = Catalog::table3_example();
    println!("Instance types:");
    for t in catalog.types() {
        println!("  {t}");
    }

    let tasks = vec![
        task(1, 2, 8, 24), // τ1: RP $12 (it1)
        task(2, 1, 4, 10), // τ2: RP $3  (it2)
        task(3, 0, 6, 20), // τ3: RP $0.8 (it3)
        task(4, 0, 4, 12), // τ4: RP $0.4 (it4)
    ];
    println!("\nReservation prices:");
    for t in &tasks {
        let (ty, rp) = eva::core::reservation_price(&catalog, &t.demand).unwrap();
        println!("  {} → {} at {}", t.id, catalog.get(ty).unwrap().name, rp);
    }

    // The §4.2 walkthrough uses plain reservation prices (the TNRP
    // extension with its conservative default `t` comes later in §4.3 and
    // would decline τ4's marginal addition until it observes real
    // throughput). Eva-RP reproduces the walkthrough exactly.
    let mut eva = EvaScheduler::new(EvaConfig::eva_rp());
    let ctx = SchedulerContext {
        now: SimTime::ZERO,
        catalog: &catalog,
        tasks: &tasks,
        instances: &[],
    };
    let plan = eva.plan(&ctx);

    println!("\nEva's plan:");
    let mut total = Cost::ZERO;
    for a in &plan.assignments {
        let eva::core::PlannedInstance::New(ty) = a.instance else {
            continue;
        };
        let ty = catalog.get(ty).unwrap();
        total += ty.hourly_cost;
        println!("  {} ({}) ← {:?}", ty.name, ty.hourly_cost, a.tasks);
    }
    println!("Total: {total} (no-packing would cost $16.2000/hr)");
    assert_eq!(total, Cost::from_dollars(12.8));
}
