//! The paper's motivating scenario (§2.3): an enterprise's ML teams share
//! one cloud-based cluster instead of each renting their own instances.
//!
//! Simulates the 32-job synthetic trace of §6.2 under every scheduler and
//! prints the cost comparison — a miniature Table 11.
//!
//! Run with: `cargo run --release --example shared_ml_cluster`

use eva::prelude::*;

fn main() {
    let trace = SyntheticTraceConfig::small_scale().generate(2025);
    println!(
        "Shared cluster receives {} jobs over {:.1}h (ML training + scientific computing)",
        trace.len(),
        trace.stats().arrival_span_hours
    );
    let kinds = [
        SchedulerKind::NoPacking,
        SchedulerKind::Stratus,
        SchedulerKind::Synergy,
        SchedulerKind::Owl,
        SchedulerKind::Eva(EvaConfig::eva()),
    ];
    let mut baseline: Option<SimReport> = None;
    for kind in kinds {
        let report = run_simulation(&SimConfig::new(trace.clone(), kind));
        println!("{}", report.table_row(baseline.as_ref()));
        if baseline.is_none() {
            baseline = Some(report);
        }
    }
    println!("\nEva packs complementary tasks, learns interference online, and");
    println!("reconfigures when provisioning savings outweigh migration cost.");
}
