//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The Eva workspace builds in hermetic environments with no access to
//! crates.io, so the handful of `rand 0.8` APIs the codebase uses are
//! reimplemented here: [`RngCore`], [`Rng`] (`gen`, `gen_range`),
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] (a xoshiro256++
//! generator seeded via SplitMix64), and
//! [`distributions::Distribution`].
//!
//! The implementation is deterministic for a given seed, which is all the
//! simulator and tests rely on; it makes no attempt to be bit-compatible
//! with upstream `rand`'s stream.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// Types samplable uniformly from an RNG via [`Rng::gen`].
pub trait StandardSample: Sized {
    /// Draws one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value from the range; panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as StandardSample>::standard_sample(rng);
                let v = self.start + u * (self.end - self.start);
                // `start + u*span` can round up to the excluded bound when
                // the span's ULP is coarse; clamp just below it.
                if v >= self.end {
                    self.end.next_down().max(self.start)
                } else {
                    v
                }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let u = <$t as StandardSample>::standard_sample(rng);
                (start + u * (end - start)).min(end)
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of a [`StandardSample`] type (uniform over its range,
    /// or `[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++ seeded through
    /// SplitMix64. Not cryptographic; not stream-compatible with upstream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod distributions {
    //! Distribution sampling, mirroring `rand::distributions`.

    use super::Rng;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
    }

    impl StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-0.5f64..=1.5);
            assert!((-0.5..=1.5).contains(&f));
            let i = rng.gen_range(0..10);
            assert!((0..10).contains(&i));
        }
    }

    #[test]
    fn float_range_never_returns_excluded_bound() {
        // An RNG pinned at the maximum word makes `u` the largest value
        // below 1.0; with a coarse-ULP span, `start + u*span` rounds up
        // to the excluded bound unless clamped.
        struct MaxRng;
        impl super::RngCore for MaxRng {
            fn next_u64(&mut self) -> u64 {
                u64::MAX
            }
        }
        let mut rng = MaxRng;
        let v = rng.gen_range(1.0e16_f64..1.0e16 + 2.0);
        assert!(v < 1.0e16 + 2.0, "excluded bound returned: {v}");
        let w = rng.gen_range(0.0f64..=1.5);
        assert!(w <= 1.5);
    }

    #[test]
    fn float_mean_is_near_half() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }
}
