//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! Implements the subset Eva's property tests use: the [`Strategy`] trait
//! with `prop_map`, range and tuple strategies, [`collection::vec`],
//! [`Just`], `prop_oneof!`, the `proptest!` test macro, and the
//! `prop_assert*` family. Failing cases are reported with their case
//! number and deterministic seed but are **not shrunk** — the sampling
//! loop is a plain deterministic-random search, which keeps this
//! stand-in tiny while preserving the tests' semantics.

use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy;

pub use strategy::{Just, Strategy, Union};

/// The RNG driving test-case generation (deterministic per test).
pub type TestRng = StdRng;

/// Creates the per-test RNG. Deterministic: derived from the test name so
/// failures reproduce across runs.
pub fn test_rng(test_name: &str) -> TestRng {
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(seed)
}

/// Runtime configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property assertion (the `Err` of a test-case closure).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }

    /// Alias matching upstream's constructor.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::fail(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// Size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                min: exact,
                max: exact + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            assert!(
                self.size.min < self.size.max,
                "empty collection size range"
            );
            let len = rng.gen_range(self.size.min..self.size.max);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy, Union};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
        TestCaseError,
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($pat:pat_param in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_proptest(
                    stringify!($name),
                    &($cfg),
                    |__rng| {
                        $(
                            let $pat = $crate::Strategy::new_value(&($strat), __rng);
                        )*
                        $body
                        ::core::result::Result::Ok(())
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($pat:pat_param in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name ( $($pat in $strat),* ) $body
            )*
        }
    };
}

/// Drives one property test: runs `cases` sampled cases, panicking on the
/// first failure with enough context to reproduce it.
pub fn run_proptest(
    name: &str,
    config: &ProptestConfig,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let mut rng = test_rng(name);
    for case_index in 0..config.cases {
        if let Err(e) = case(&mut rng) {
            panic!(
                "proptest `{name}` failed at case {case_index}/{}: {e}",
                config.cases
            );
        }
    }
}

/// `prop_assert!(cond)` / `prop_assert!(cond, fmt, args...)`: on failure,
/// returns a [`TestCaseError`] from the enclosing test-case closure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `prop_assert_eq!(a, b)` with optional format arguments.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = $left;
        let __right = $right;
        if !(__left == __right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}` ({} != {})",
                __left,
                __right,
                stringify!($left),
                stringify!($right)
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __left = $left;
        let __right = $right;
        if !(__left == __right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} (`{:?}` != `{:?}`)",
                format!($($fmt)+),
                __left,
                __right
            )));
        }
    }};
}

/// `prop_assert_ne!(a, b)` with optional format arguments.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = $left;
        let __right = $right;
        if __left == __right {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                __left, __right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __left = $left;
        let __right = $right;
        if __left == __right {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Uniform choice between same-typed strategies: `prop_oneof![a, b, c]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($strategy),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..10, f in -0.5f64..1.5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-0.5..1.5).contains(&f));
        }

        #[test]
        fn tuples_and_vecs_compose(
            items in collection::vec((0u8..4, 1u64..=8), 1..5),
        ) {
            prop_assert!(!items.is_empty() && items.len() < 5);
            for (a, b) in items {
                prop_assert!(a < 4);
                prop_assert!((1..=8).contains(&b));
            }
        }

        #[test]
        fn map_and_oneof((label, n) in (prop_oneof![Just("a"), Just("b")], 0u8..3).prop_map(|(l, n)| (l, n + 1))) {
            prop_assert!(label == "a" || label == "b");
            prop_assert!((1..=3).contains(&n));
        }

        #[test]
        fn question_mark_propagates(x in 0u32..10) {
            fn helper(x: u32) -> Result<(), TestCaseError> {
                prop_assert!(x < 10);
                Ok(())
            }
            helper(x)?;
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_rng("t");
        let mut b = crate::test_rng("t");
        let s = 0u64..1000;
        for _ in 0..50 {
            assert_eq!(
                crate::Strategy::new_value(&s, &mut a),
                crate::Strategy::new_value(&s, &mut b)
            );
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_number() {
        crate::run_proptest(
            "always_fails",
            &crate::ProptestConfig::with_cases(5),
            |_rng| Err(crate::TestCaseError::fail("nope")),
        );
    }
}
