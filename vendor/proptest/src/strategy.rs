//! The [`Strategy`] trait and the combinators Eva's tests use.

use rand::Rng;

use crate::TestRng;

/// A recipe for generating random values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree or shrinking: a
/// strategy is just a deterministic sampler over a seeded RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Filters and maps in one step; resamples (up to a bound) when `f`
    /// returns `None`.
    fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            inner: self,
            f,
            whence,
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Debug, Clone)]
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        for _ in 0..1000 {
            if let Some(v) = (self.f)(self.inner.new_value(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map `{}` rejected 1000 samples", self.whence);
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among same-typed strategies (backs `prop_oneof!`).
#[derive(Debug, Clone)]
pub struct Union<S> {
    options: Vec<S>,
}

impl<S: Strategy> Union<S> {
    /// A union over `options`; panics if empty.
    pub fn new(options: Vec<S>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! requires at least one arm");
        Union { options }
    }
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        (**self).new_value(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.new_value(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F),
);
