//! Offline stand-in for the [`bytes`](https://crates.io/crates/bytes) crate.
//!
//! Provides [`Bytes`], [`BytesMut`], and the [`BufMut`] trait with the
//! operations Eva's execution substrate uses (checkpoint blobs). Unlike
//! upstream, `Bytes` owns a plain `Vec<u8>` and [`Bytes::slice`] copies —
//! checkpoint blobs are small, so zero-copy reference counting is not
//! worth the complexity here.

use std::ops::{Deref, RangeBounds};

/// An immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes { data: Vec::new() }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
        }
    }

    /// Wraps a static byte string.
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes {
            data: data.to_vec(),
        }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// A sub-range as a new buffer (copies).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.data.len(),
        };
        Bytes {
            data: self.data[start..end].to_vec(),
        }
    }

    /// The contents as a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

/// A growable byte buffer that can be frozen into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Write-side operations (subset of upstream `bytes::BufMut`).
pub trait BufMut {
    /// Appends a slice of bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a `u64` in little-endian order.
    fn put_u64_le(&mut self, value: u64) {
        self.put_slice(&value.to_le_bytes());
    }

    /// Appends a `u64` in big-endian order.
    fn put_u64(&mut self, value: u64) {
        self.put_slice(&value.to_be_bytes());
    }

    /// Appends a single byte.
    fn put_u8(&mut self, value: u8) {
        self.put_slice(&[value]);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_u64_le() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u64_le(0xDEAD_BEEF);
        buf.extend_from_slice(b"tail");
        let frozen = buf.freeze();
        assert_eq!(frozen.len(), 12);
        let mut le = [0u8; 8];
        le.copy_from_slice(&frozen[..8]);
        assert_eq!(u64::from_le_bytes(le), 0xDEAD_BEEF);
        assert_eq!(&frozen.slice(8..)[..], b"tail");
    }

    #[test]
    fn slice_and_equality() {
        let b = Bytes::from_static(b"hello world");
        assert_eq!(b.slice(..5), Bytes::copy_from_slice(b"hello"));
        assert_eq!(b.slice(6..).as_ref(), b"world");
        assert!(Bytes::new().is_empty());
    }
}
