//! Offline stand-in for [`crossbeam`](https://crates.io/crates/crossbeam).
//!
//! Eva's execution substrate uses crossbeam only for unbounded MPSC
//! channels and the [`select!`] macro over two receivers. This stand-in
//! maps channels onto `std::sync::mpsc` (identical send/recv/disconnect
//! semantics) and implements `select!` as a fair-enough polling loop:
//! arms are tried in order, and an idle select sleeps briefly between
//! rounds. Latency is bounded by the poll interval (200µs), which is well
//! inside what the worker/master control plane tolerates.

pub mod channel {
    //! MPSC channels with crossbeam's `unbounded` constructor.

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};
    pub use std::sync::mpsc::{Receiver, Sender};

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }

    /// `Err(RecvError)` typed to `rx`'s element type — used by `select!`
    /// so its disconnected arm infers the same `T` as the ready arm.
    pub fn disconnected_result<T>(_rx: &Receiver<T>) -> Result<T, RecvError> {
        Err(RecvError)
    }

    // Make `crossbeam::channel::select!` resolve like upstream.
    pub use crate::select;
}

/// Blocks until one of the `recv(receiver) -> result => body` arms is
/// ready, runs exactly that arm, and evaluates to its value.
///
/// The bound `result` is a `Result<T, RecvError>`: `Ok` on message,
/// `Err` when the arm's channel is disconnected (as in crossbeam).
///
/// Two properties upstream guarantees are preserved deliberately:
///
/// * arm bodies execute **outside** the internal polling loop, so
///   `break`/`continue` inside a body bind to the *caller's* enclosing
///   loop exactly as with real crossbeam;
/// * exactly one arm runs per `select!`.
///
/// One- and two-arm forms are supported (all Eva call sites use two).
/// Idle waiting is polling with backoff (100µs for the first ~100
/// rounds, then 1ms), not true parking — worst-case wakeup latency is
/// 1ms and idle cost is ~1k wakeups/sec per waiting thread.
///
/// Known divergence from upstream: ready arms are tried in order, not
/// chosen at random, and a disconnected arm keeps firing its `Err` on
/// every call (messages queued on the other arm are still delivered
/// first). A caller that loops over `select!` must therefore terminate
/// or stop selecting on an arm once it reports `Err`, as
/// `worker_loop` in `eva-exec` does — ignoring the `Err` and looping
/// again busy-spins.
#[macro_export]
macro_rules! select {
    ( recv($rx:expr) -> $res:ident => $body:block ) => {{
        let $res = $rx.recv();
        $body
    }};
    (
        recv($rx1:expr) -> $res1:ident => $body1:block
        recv($rx2:expr) -> $res2:ident => $body2:block
    ) => {{
        let __rx1 = &$rx1;
        let __rx2 = &$rx2;
        let mut __slot1 = ::core::option::Option::None;
        let mut __slot2 = ::core::option::Option::None;
        let mut __round: u32 = 0;
        loop {
            // Poll both arms each round and fire real messages before
            // disconnections, so a dead channel cannot starve queued
            // messages on the live one.
            let __r1 = __rx1.try_recv();
            if let ::core::result::Result::Ok(__msg) = __r1 {
                __slot1 = ::core::option::Option::Some(::core::result::Result::Ok(__msg));
                break;
            }
            let __r2 = __rx2.try_recv();
            if let ::core::result::Result::Ok(__msg) = __r2 {
                __slot2 = ::core::option::Option::Some(::core::result::Result::Ok(__msg));
                break;
            }
            if ::core::matches!(
                __r1,
                ::core::result::Result::Err($crate::channel::TryRecvError::Disconnected)
            ) {
                __slot1 = ::core::option::Option::Some(
                    $crate::channel::disconnected_result(__rx1),
                );
                break;
            }
            if ::core::matches!(
                __r2,
                ::core::result::Result::Err($crate::channel::TryRecvError::Disconnected)
            ) {
                __slot2 = ::core::option::Option::Some(
                    $crate::channel::disconnected_result(__rx2),
                );
                break;
            }
            __round = __round.saturating_add(1);
            let __sleep_us = if __round < 100 { 100 } else { 1_000 };
            ::std::thread::sleep(::std::time::Duration::from_micros(__sleep_us));
        }
        // Dispatch outside the polling loop so control flow in the
        // bodies (`break`, `continue`, `return`) behaves as written.
        if let ::core::option::Option::Some($res1) = __slot1 {
            $body1
        } else if let ::core::option::Option::Some($res2) = __slot2 {
            $body2
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;

    #[test]
    fn send_recv_round_trip() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
    }

    #[test]
    fn disconnect_propagates() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn select_picks_ready_arm() {
        let (tx_a, rx_a) = unbounded::<u32>();
        let (_tx_b, rx_b) = unbounded::<u32>();
        tx_a.send(1).unwrap();
        let mut got = 0;
        crate::select! {
            recv(rx_a) -> msg => {
                got = msg.unwrap();
            }
            recv(rx_b) -> msg => {
                got = msg.unwrap() + 100;
            }
        }
        assert_eq!(got, 1);
    }

    #[test]
    fn select_blocks_until_message() {
        let (tx, rx) = unbounded::<u32>();
        let (_keep, rx_other) = unbounded::<u32>();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(5));
            tx.send(9).unwrap();
        });
        let mut got = 0;
        crate::select! {
            recv(rx) -> msg => {
                got = msg.unwrap();
            }
            recv(rx_other) -> msg => {
                let _ = msg;
            }
        }
        handle.join().unwrap();
        assert_eq!(got, 9);
    }

    #[test]
    fn select_arm_control_flow_binds_to_caller_loop() {
        // `break`/`continue` written in an arm body must act on the
        // caller's loop (upstream crossbeam semantics), not on any loop
        // internal to the macro expansion.
        let (tx_a, rx_a) = unbounded::<u32>();
        let (_keep, rx_b) = unbounded::<u32>();
        for v in [1u32, 2, 3] {
            tx_a.send(v).unwrap();
        }
        drop(tx_a);
        let mut seen = Vec::new();
        loop {
            crate::select! {
                recv(rx_a) -> msg => {
                    match msg {
                        Ok(2) => continue, // skip recording 2
                        Ok(v) => seen.push(v),
                        Err(_) => break,
                    }
                }
                recv(rx_b) -> msg => {
                    let _ = msg;
                }
            }
        }
        assert_eq!(seen, vec![1, 3]);
    }

    #[test]
    fn select_single_arm_blocks() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(5).unwrap();
        let got: u32;
        crate::select! {
            recv(rx) -> msg => {
                got = msg.unwrap();
            }
        }
        assert_eq!(got, 5);
    }

    #[test]
    fn select_delivers_queued_messages_before_disconnect() {
        // A dead first arm must not starve messages pending on the
        // second arm.
        let (tx_a, rx_a) = unbounded::<u32>();
        let (tx_b, rx_b) = unbounded::<u32>();
        drop(tx_a);
        tx_b.send(7).unwrap();
        let mut fired = None;
        crate::select! {
            recv(rx_a) -> msg => {
                fired = Some(("a", msg.is_err()));
            }
            recv(rx_b) -> msg => {
                fired = Some(("b", msg.is_err()));
                assert_eq!(msg.unwrap(), 7);
            }
        }
        assert_eq!(fired, Some(("b", false)));
    }

    #[test]
    fn select_fires_on_disconnect() {
        let (tx, rx) = unbounded::<u32>();
        let (_keep, rx_other) = unbounded::<u32>();
        drop(tx);
        let mut disconnected = false;
        crate::select! {
            recv(rx) -> msg => {
                disconnected = msg.is_err();
            }
            recv(rx_other) -> msg => {
                let _ = msg;
            }
        }
        assert!(disconnected);
    }
}
