//! Offline stand-in for [`serde_json`](https://crates.io/crates/serde_json).
//!
//! Prints and parses JSON text over the value-tree model of the vendored
//! `serde` stand-in. Provides the three entry points Eva uses —
//! [`to_string`], [`to_string_pretty`], and [`from_str`] — with upstream's
//! formatting conventions (two-space pretty indentation, `null` for
//! non-finite floats is replaced by an error, externally tagged enums come
//! from the serde side).

use std::fmt::Write as _;

pub use serde::{Error, Number, Value};

/// A `Result` specialized to this crate's [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0)?;
    Ok(out)
}

/// Serializes a value to human-readable JSON (two-space indentation).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0)?;
    Ok(out)
}

/// Deserializes a value from JSON text.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T> {
    let value = parse(text)?;
    T::deserialize(&value)
}

/// Parses JSON text into a [`Value`] tree.
pub fn from_str_value(text: &str) -> Result<Value> {
    parse(text)
}

fn write_value(
    out: &mut String,
    value: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<()> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n)?,
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (key, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: &Number) -> Result<()> {
    match *n {
        Number::U(v) => {
            let _ = write!(out, "{v}");
        }
        Number::I(v) => {
            let _ = write!(out, "{v}");
        }
        Number::F(v) => {
            if !v.is_finite() {
                return Err(Error::custom("JSON cannot represent NaN or infinity"));
            }
            // `{:?}` prints the shortest representation that round-trips
            // (`1.0`, `0.1`, `1e300`), all of which are valid JSON.
            let _ = write!(out, "{v:?}");
        }
    }
    Ok(())
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(text: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::custom("unexpected end of JSON input"))
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek()? {
            b'n' if self.eat_keyword("null") => Ok(Value::Null),
            b't' if self.eat_keyword("true") => Ok(Value::Bool(true)),
            b'f' if self.eat_keyword("false") => Ok(Value::Bool(false)),
            b'"' => Ok(Value::String(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::custom(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]`, found `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            pairs.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}`, found `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::custom("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.eat_keyword("\\u") {
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(Error::custom(
                                            "unpaired high surrogate in \\u escape",
                                        ));
                                    }
                                    let combined =
                                        0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| Error::custom("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at this byte.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let slice = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::custom("truncated UTF-8 sequence"))?;
                    let s = std::str::from_utf8(slice)
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::custom("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| Error::custom("invalid \\u escape"))?;
        let code = u32::from_str_radix(s, 16).map_err(|_| Error::custom("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        let number = if is_float {
            Number::F(
                text.parse::<f64>()
                    .map_err(|_| Error::custom(format!("invalid number `{text}`")))?,
            )
        } else if text.starts_with('-') {
            Number::I(
                text.parse::<i64>()
                    .map_err(|_| Error::custom(format!("invalid number `{text}`")))?,
            )
        } else {
            Number::U(
                text.parse::<u64>()
                    .map_err(|_| Error::custom(format!("invalid number `{text}`")))?,
            )
        };
        Ok(Value::Number(number))
    }
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"hi\n\"there\"").unwrap(), "\"hi\\n\\\"there\\\"\"");
        let v: u32 = from_str("42").unwrap();
        assert_eq!(v, 42);
        let f: f64 = from_str("2.5e3").unwrap();
        assert_eq!(f, 2500.0);
    }

    #[test]
    fn round_trips_collections() {
        let v = vec![1u32, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        let back: Vec<u32> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = vec![1u32, 2];
        let json = to_string_pretty(&v).unwrap();
        assert_eq!(json, "[\n  1,\n  2\n]");
    }

    #[test]
    fn parses_nested_objects() {
        let v = from_str_value(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get_field("c").and_then(Value::as_str), Some("x"));
        let arr = v.get_field("a").and_then(Value::as_array).unwrap();
        assert_eq!(arr.len(), 2);
    }

    #[test]
    fn surrogate_pairs_decode_and_invalid_ones_fail() {
        let v: String = from_str(r#""😀""#).unwrap();
        assert_eq!(v, "\u{1F600}");
        // High surrogate followed by another high surrogate is invalid.
        assert!(from_str_value(r#""\uD800\uD800""#).is_err());
        // Unpaired high surrogate is invalid.
        assert!(from_str_value(r#""\uD800x""#).is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str_value("1 2").is_err());
        assert!(from_str_value("{").is_err());
    }

    #[test]
    fn float_round_trip_is_exact() {
        for x in [0.1f64, 1.0 / 3.0, 1e-12, 123456.789] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back, x);
        }
    }
}
