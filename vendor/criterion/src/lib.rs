//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Implements the benchmarking API Eva's benches use — [`Criterion`],
//! benchmark groups, [`Bencher::iter`], [`BenchmarkId`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — with a simple
//! wall-clock measurement loop: each benchmark is warmed up once, then
//! timed over `sample_size` batches, and the per-iteration mean / min /
//! max are printed. There is no statistical analysis, HTML report, or
//! baseline comparison; the point is that `cargo bench` runs and prints
//! honest numbers offline.

use std::fmt;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n## {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.default_sample_size, f);
        self
    }
}

/// A named set of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Benchmarks `f` under a plain name.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name);
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function label and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Passed to each benchmark closure; [`Bencher::iter`] times the routine.
pub struct Bencher {
    sample_size: usize,
    /// One `(elapsed, iterations)` record per sample, so each batch is
    /// normalized by its own calibration even if a benchmark closure
    /// calls [`Bencher::iter`] more than once.
    samples: Vec<(Duration, u64)>,
}

impl Bencher {
    /// Times `routine`, recording one sample per call batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and batch sizing: aim for samples of at least ~1ms so
        // Instant overhead stays negligible, but cap the calibration work.
        let warmup_start = Instant::now();
        black_box(routine());
        let one = warmup_start.elapsed();
        let iters = if one >= Duration::from_millis(1) {
            1
        } else {
            let nanos = one.as_nanos().max(50) as u64;
            (1_000_000 / nanos).clamp(1, 10_000)
        };
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push((start.elapsed(), iters));
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        sample_size: sample_size.max(1),
        samples: Vec::new(),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    let per_iter: Vec<f64> = bencher
        .samples
        .iter()
        .map(|(d, iters)| d.as_secs_f64() / *iters as f64)
        .collect();
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "{label:<40} time: [{} {} {}]",
        format_time(min),
        format_time(mean),
        format_time(max)
    );
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Bundles benchmark functions into one group runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $(
                $function(&mut criterion);
            )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_round_trip() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        let input = vec![1u64, 2, 3];
        group.bench_with_input(BenchmarkId::from_parameter(3), &input, |b, v| {
            b.iter(|| v.iter().sum::<u64>())
        });
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.finish();
        c.bench_function("free", |b| b.iter(|| 2 + 2));
    }

    #[test]
    fn format_time_scales() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with(" ms"));
        assert!(format_time(2e-6).ends_with(" µs"));
        assert!(format_time(2e-9).ends_with(" ns"));
    }
}
