//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` with a
//! hand-rolled token parser (no `syn`/`quote`, which are unavailable in
//! hermetic builds). Supported shapes — which cover every derived type in
//! the Eva workspace — are:
//!
//! * named-field structs (`struct S { a: T, .. }`) → JSON objects,
//! * newtype structs (`struct S(T);`) → transparent,
//! * tuple structs (`struct S(A, B);`) → arrays,
//! * enums with unit / newtype / tuple / struct variants → externally
//!   tagged, exactly like upstream serde's JSON encoding.
//!
//! Generic types and `#[serde(...)]` attributes are intentionally
//! unsupported and panic at derive time with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of the deriving type.
enum Shape {
    /// `struct S { fields }`
    NamedStruct { name: String, fields: Vec<String> },
    /// `struct S(T0, T1, ...);` with the arity recorded.
    TupleStruct { name: String, arity: usize },
    /// `enum E { variants }`
    Enum { name: String, variants: Vec<Variant> },
}

/// One enum variant.
struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derives the value-tree `Serialize` impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let body = match &shape {
        Shape::NamedStruct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__fields.push((::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::serialize(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Value {{\n\
                 let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n\
                 {pushes}\n\
                 ::serde::Value::Object(__fields)\n\
                 }}\n}}"
            )
        }
        Shape::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Value {{\n\
             ::serde::Serialize::serialize(&self.0)\n\
             }}\n}}"
        ),
        Shape::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Array(vec![{}])\n\
                 }}\n}}",
                items.join(", ")
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::String(\
                             ::std::string::String::from(\"{vn}\")),\n"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Object(vec![(\
                             ::std::string::String::from(\"{vn}\"), \
                             ::serde::Serialize::serialize(__f0))]),\n"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(vec![(\
                                 ::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Array(vec![{}]))]),\n",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds = fields.join(", ");
                            let pushes: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "__inner.push((::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::serialize({f})));"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => {{\n\
                                 let mut __inner: ::std::vec::Vec<(::std::string::String, \
                                 ::serde::Value)> = ::std::vec::Vec::new();\n\
                                 {pushes}\n\
                                 ::serde::Value::Object(vec![(\
                                 ::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Object(__inner))])\n\
                                 }}\n"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}\n}}\n\
                 }}\n}}"
            )
        }
    };
    body.parse().expect("serde_derive produced invalid Rust")
}

/// Derives the value-tree `Deserialize` impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let body = match &shape {
        Shape::NamedStruct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::deserialize(__v.get_field(\"{f}\")\
                         .ok_or_else(|| ::serde::Error::missing_field(\"{f}\"))?)?,\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize(__v: &::serde::Value) -> \
                 ::core::result::Result<Self, ::serde::Error> {{\n\
                 if __v.as_object().is_none() {{\n\
                 return ::core::result::Result::Err(\
                 ::serde::Error::invalid_type(\"object\", __v));\n\
                 }}\n\
                 ::core::result::Result::Ok({name} {{\n{inits}\n}})\n\
                 }}\n}}"
            )
        }
        Shape::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(__v: &::serde::Value) -> \
             ::core::result::Result<Self, ::serde::Error> {{\n\
             ::core::result::Result::Ok({name}(::serde::Deserialize::deserialize(__v)?))\n\
             }}\n}}"
        ),
        Shape::TupleStruct { name, arity } => {
            let inits: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::deserialize(&__items[{i}])?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize(__v: &::serde::Value) -> \
                 ::core::result::Result<Self, ::serde::Error> {{\n\
                 let __items = __v.as_array()\
                 .ok_or_else(|| ::serde::Error::invalid_type(\"array\", __v))?;\n\
                 if __items.len() != {arity} {{\n\
                 return ::core::result::Result::Err(::serde::Error::custom(\
                 \"wrong tuple length\"));\n\
                 }}\n\
                 ::core::result::Result::Ok({name}({}))\n\
                 }}\n}}",
                inits.join(", ")
            )
        }
        Shape::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    let vn = &v.name;
                    format!("\"{vn}\" => ::core::result::Result::Ok({name}::{vn}),\n")
                })
                .collect();
            let data_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vn}\" => ::core::result::Result::Ok(\
                             {name}::{vn}(::serde::Deserialize::deserialize(__val)?)),\n"
                        )),
                        VariantKind::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::deserialize(&__items[{i}])?")
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                 let __items = __val.as_array()\
                                 .ok_or_else(|| ::serde::Error::invalid_type(\"array\", __val))?;\n\
                                 if __items.len() != {n} {{\n\
                                 return ::core::result::Result::Err(::serde::Error::custom(\
                                 \"wrong tuple variant length\"));\n\
                                 }}\n\
                                 ::core::result::Result::Ok({name}::{vn}({}))\n\
                                 }}\n",
                                inits.join(", ")
                            ))
                        }
                        VariantKind::Named(fields) => {
                            let inits: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::deserialize(\
                                         __val.get_field(\"{f}\")\
                                         .ok_or_else(|| ::serde::Error::missing_field(\"{f}\"))?)?,\n"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => ::core::result::Result::Ok(\
                                 {name}::{vn} {{\n{inits}\n}}),\n"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize(__v: &::serde::Value) -> \
                 ::core::result::Result<Self, ::serde::Error> {{\n\
                 match __v {{\n\
                 ::serde::Value::String(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::core::result::Result::Err(\
                 ::serde::Error::unknown_variant(__other)),\n\
                 }},\n\
                 ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{\n\
                 let (__tag, __val) = &__pairs[0];\n\
                 match __tag.as_str() {{\n\
                 {data_arms}\
                 __other => ::core::result::Result::Err(\
                 ::serde::Error::unknown_variant(__other)),\n\
                 }}\n\
                 }},\n\
                 __other => ::core::result::Result::Err(\
                 ::serde::Error::invalid_type(\"enum representation\", __other)),\n\
                 }}\n\
                 }}\n}}"
            )
        }
    };
    body.parse().expect("serde_derive produced invalid Rust")
}

/// Parses the derive input into a [`Shape`]. Panics (derive-time error)
/// on generics or unsupported forms.
fn parse_shape(input: TokenStream) -> Shape {
    let mut tokens = input.into_iter().peekable();

    // Skip outer attributes (`#[...]`, including doc comments) and
    // visibility (`pub`, `pub(crate)`, ...).
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) restriction
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive stand-in does not support generic types (deriving {name})");
        }
    }

    match kind.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            other => panic!("serde_derive: unsupported struct body for {name}: {other:?}"),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde_derive: unsupported enum body for {name}: {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

/// Extracts field names from a named-field body (`a: T, b: U, ...`).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip field attributes and visibility.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(id)) = tokens.next() else {
            break;
        };
        fields.push(id.to_string());
        // Skip `:` and the type, up to the next top-level comma. Commas
        // inside `<...>` (e.g. `BTreeMap<String, V>`) are not separators.
        let mut angle_depth: i32 = 0;
        for tok in tokens.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

/// Counts fields in a tuple body (`pub u64`, `A, B`, ...).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0;
    let mut angle_depth: i32 = 0;
    let mut saw_tokens = false;
    for tok in stream {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                saw_tokens = false;
                continue;
            }
            _ => {}
        }
        saw_tokens = true;
    }
    if saw_tokens {
        count += 1;
    }
    count
}

/// Parses enum variants (`Unit, Newtype(T), Struct { a: T }, ...`).
fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip variant attributes.
        while let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == '#' {
                tokens.next();
                tokens.next();
            } else {
                break;
            }
        }
        let Some(TokenTree::Ident(id)) = tokens.next() else {
            break;
        };
        let name = id.to_string();
        let kind = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                tokens.next();
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                tokens.next();
                VariantKind::Named(fields)
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        // Skip to the next comma (handles discriminants defensively).
        for tok in tokens.by_ref() {
            if matches!(&tok, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
    }
    variants
}
