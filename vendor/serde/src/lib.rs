//! Offline stand-in for [`serde`](https://crates.io/crates/serde).
//!
//! The workspace builds without network access, so this crate provides the
//! subset of serde that Eva uses: the [`Serialize`] / [`Deserialize`]
//! traits (value-tree based rather than visitor based), derive macros for
//! structs and enums (re-exported from `serde_derive`), and a JSON-shaped
//! [`Value`] model that `serde_json` prints and parses.
//!
//! Data model conventions match upstream serde's JSON encoding: named
//! structs become objects, newtype structs are transparent, tuple structs
//! become arrays, and enums are externally tagged (`"Unit"`,
//! `{"Newtype": v}`, `{"Struct": {..}}`).

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// An exact JSON-style number: unsigned, signed, or floating.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    U(u64),
    /// A negative integer.
    I(i64),
    /// A floating-point number.
    F(f64),
}

impl Number {
    /// The value as `f64` (lossy for very large integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U(v) => v as f64,
            Number::I(v) => v as f64,
            Number::F(v) => v,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(v) => Some(v),
            Number::I(v) => u64::try_from(v).ok(),
            Number::F(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            Number::F(_) => None,
        }
    }

    /// The value as `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U(v) => i64::try_from(v).ok(),
            Number::I(v) => Some(v),
            Number::F(v) if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 => {
                Some(v as i64)
            }
            Number::F(_) => None,
        }
    }
}

/// A JSON-shaped value tree: the intermediate form between Rust data and
/// serialized text.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// Key/value pairs in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks a field up in an object value.
    pub fn get_field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object's pairs, if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The array's elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Serialization or deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error with an arbitrary message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }

    /// A "missing field" error.
    pub fn missing_field(name: &str) -> Self {
        Error::custom(format!("missing field `{name}`"))
    }

    /// An "unknown enum variant" error.
    pub fn unknown_variant(name: &str) -> Self {
        Error::custom(format!("unknown variant `{name}`"))
    }

    /// A type-mismatch error.
    pub fn invalid_type(expected: &str, got: &Value) -> Self {
        let got = match got {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        };
        Error::custom(format!("invalid type: expected {expected}, found {got}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types convertible into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn serialize(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

/// Namespace mirror of `serde::ser` (bounds like `serde::ser::Serialize`).
pub mod ser {
    pub use crate::{Error, Serialize};
}

/// Namespace mirror of `serde::de` (bounds like `serde::de::Deserialize`).
pub mod de {
    pub use crate::{Deserialize, Error};

    /// In this stand-in every `Deserialize` type is already owned.
    pub trait DeserializeOwned: Deserialize {}
    impl<T: Deserialize> DeserializeOwned for T {}
}

macro_rules! impl_serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Number(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Number(n) => n
                        .as_u64()
                        .and_then(|v| <$t>::try_from(v).ok())
                        .ok_or_else(|| Error::custom(concat!("number out of range for ", stringify!($t)))),
                    other => Err(Error::invalid_type("unsigned integer", other)),
                }
            }
        }
    )*};
}
impl_serde_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::U(v as u64))
                } else {
                    Value::Number(Number::I(v))
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Number(n) => n
                        .as_i64()
                        .and_then(|v| <$t>::try_from(v).ok())
                        .ok_or_else(|| Error::custom(concat!("number out of range for ", stringify!($t)))),
                    other => Err(Error::invalid_type("integer", other)),
                }
            }
        }
    )*};
}
impl_serde_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Number(Number::F(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Number(n) => Ok(n.as_f64() as $t),
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(Error::invalid_type("number", other)),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::invalid_type("boolean", other)),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::invalid_type("string", other)),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::invalid_type("single-character string", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::invalid_type("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
                .collect(),
            other => Err(Error::invalid_type("object", other)),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.serialize()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
                .collect(),
            other => Err(Error::invalid_type("object", other)),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$n.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Array(items) => {
                        let expected = [$($n,)+].len();
                        if items.len() != expected {
                            return Err(Error::custom(format!(
                                "expected a {expected}-element array, found {}",
                                items.len()
                            )));
                        }
                        Ok(($($t::deserialize(&items[$n])?,)+))
                    }
                    other => Err(Error::invalid_type("array", other)),
                }
            }
        }
    )+};
}
impl_serde_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H),
);

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
