//! Offline stand-in for [`parking_lot`](https://crates.io/crates/parking_lot).
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API: the
//! locks Eva uses are [`Mutex`] (guard returned directly from
//! [`Mutex::lock`], no `Result`) and [`RwLock`]. Poisoned std locks are
//! recovered transparently, matching parking_lot's no-poisoning contract.

use std::fmt;
use std::sync::PoisonError;

/// A mutex whose `lock` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock whose guards are returned directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(1));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        // parking_lot semantics: no poisoning observable by later users.
        assert_eq!(*m.lock(), 1);
    }
}
