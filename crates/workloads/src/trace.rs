//! Traces: ordered job streams with statistics and serde I/O.

use serde::{Deserialize, Serialize};

use eva_types::{EvaError, JobSpec, Result, SimDuration};

/// A workload trace: jobs ordered by arrival time.
///
/// # Examples
///
/// ```
/// use eva_workloads::{SyntheticTraceConfig, Trace};
///
/// let trace = SyntheticTraceConfig::small_scale().generate(42);
/// assert_eq!(trace.len(), 32);
/// let stats = trace.stats();
/// assert!(stats.mean_duration_hours >= 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    jobs: Vec<JobSpec>,
}

impl Trace {
    /// Builds a trace, sorting jobs by arrival (stable on job id).
    pub fn new(mut jobs: Vec<JobSpec>) -> Self {
        jobs.sort_by(|a, b| a.arrival.cmp(&b.arrival).then(a.id.cmp(&b.id)));
        Trace { jobs }
    }

    /// The jobs in arrival order.
    pub fn jobs(&self) -> &[JobSpec] {
        &self.jobs
    }

    /// Consumes the trace, returning its jobs.
    pub fn into_jobs(self) -> Vec<JobSpec> {
        self.jobs
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when the trace has no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// A trace containing only the first `n` jobs (the paper's artifact
    /// runs the "first 200 jobs of the Alibaba trace").
    pub fn take(&self, n: usize) -> Trace {
        Trace {
            jobs: self.jobs.iter().take(n).cloned().collect(),
        }
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string_pretty(self)
            .map_err(|e| EvaError::InvalidInput(format!("trace serialization failed: {e}")))
    }

    /// Parses a trace from JSON.
    pub fn from_json(json: &str) -> Result<Trace> {
        let trace: Trace = serde_json::from_str(json)
            .map_err(|e| EvaError::InvalidInput(format!("trace parse failed: {e}")))?;
        Ok(Trace::new(trace.jobs))
    }

    /// Summary statistics (Table 8/9-style reporting).
    pub fn stats(&self) -> TraceStats {
        let n = self.jobs.len();
        let mut durations: Vec<f64> = self
            .jobs
            .iter()
            .map(|j| j.duration_at_full_tput.as_hours_f64())
            .collect();
        durations.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let quantile = |q: f64| {
            if durations.is_empty() {
                0.0
            } else {
                durations[((durations.len() as f64 - 1.0) * q).round() as usize]
            }
        };
        let mut gpu_histogram = std::collections::BTreeMap::new();
        let mut total_tasks = 0usize;
        let mut multi_task_jobs = 0usize;
        for job in &self.jobs {
            total_tasks += job.num_tasks();
            if job.num_tasks() > 1 {
                multi_task_jobs += 1;
            }
            let gpus = job.tasks.first().map(|t| t.demand.default.gpu).unwrap_or(0);
            *gpu_histogram.entry(gpus).or_insert(0usize) += 1;
        }
        let span = self
            .jobs
            .last()
            .map(|j| j.arrival.duration_since(self.jobs[0].arrival))
            .unwrap_or(SimDuration::ZERO);
        TraceStats {
            num_jobs: n,
            num_tasks: total_tasks,
            multi_task_jobs,
            mean_duration_hours: if n == 0 {
                0.0
            } else {
                durations.iter().sum::<f64>() / n as f64
            },
            median_duration_hours: quantile(0.5),
            p80_duration_hours: quantile(0.8),
            p95_duration_hours: quantile(0.95),
            arrival_span_hours: span.as_hours_f64(),
            gpu_demand_histogram: gpu_histogram.into_iter().collect(),
        }
    }
}

/// Summary statistics of a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Number of jobs.
    pub num_jobs: usize,
    /// Total tasks across jobs.
    pub num_tasks: usize,
    /// Jobs with more than one task.
    pub multi_task_jobs: usize,
    /// Mean full-throughput duration (hours).
    pub mean_duration_hours: f64,
    /// Median duration (hours).
    pub median_duration_hours: f64,
    /// 80th-percentile duration (hours).
    pub p80_duration_hours: f64,
    /// 95th-percentile duration (hours).
    pub p95_duration_hours: f64,
    /// Hours between first and last arrival.
    pub arrival_span_hours: f64,
    /// `(gpu_per_task, job_count)` pairs — the Table 8 composition.
    pub gpu_demand_histogram: Vec<(u32, usize)>,
}

impl TraceStats {
    /// Fraction of jobs whose per-task GPU demand equals `gpus`.
    pub fn gpu_fraction(&self, gpus: u32) -> f64 {
        if self.num_jobs == 0 {
            return 0.0;
        }
        let count = self
            .gpu_demand_histogram
            .iter()
            .find(|(g, _)| *g == gpus)
            .map(|(_, c)| *c)
            .unwrap_or(0);
        count as f64 / self.num_jobs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_types::{DemandSpec, JobId, ResourceVector, SimTime, TaskId, TaskSpec, WorkloadKind};

    fn job(id: u64, arrival_secs: u64, hours: f64, gpus: u32, tasks: u32) -> JobSpec {
        JobSpec {
            id: JobId(id),
            arrival: SimTime::from_secs(arrival_secs),
            tasks: (0..tasks)
                .map(|i| TaskSpec {
                    id: TaskId::new(JobId(id), i),
                    workload: WorkloadKind(0),
                    demand: DemandSpec::uniform(ResourceVector::new(gpus, 4, 1024)),
                    checkpoint_delay: SimDuration::from_secs(2),
                    launch_delay: SimDuration::from_secs(10),
                })
                .collect(),
            duration_at_full_tput: SimDuration::from_hours_f64(hours),
            gang_coupled: tasks > 1,
        }
    }

    #[test]
    fn new_sorts_by_arrival() {
        let t = Trace::new(vec![job(2, 100, 1.0, 0, 1), job(1, 50, 1.0, 1, 1)]);
        assert_eq!(t.jobs()[0].id, JobId(1));
        assert_eq!(t.jobs()[1].id, JobId(2));
    }

    #[test]
    fn stats_compute_composition() {
        let t = Trace::new(vec![
            job(1, 0, 1.0, 0, 1),
            job(2, 10, 2.0, 1, 1),
            job(3, 20, 3.0, 1, 4),
            job(4, 30, 4.0, 8, 1),
        ]);
        let s = t.stats();
        assert_eq!(s.num_jobs, 4);
        assert_eq!(s.num_tasks, 7);
        assert_eq!(s.multi_task_jobs, 1);
        assert_eq!(s.gpu_fraction(1), 0.5);
        assert_eq!(s.gpu_fraction(0), 0.25);
        assert_eq!(s.gpu_fraction(4), 0.0);
        assert!((s.mean_duration_hours - 2.5).abs() < 1e-9);
    }

    #[test]
    fn take_truncates() {
        let t = Trace::new((0..10).map(|i| job(i, i * 10, 1.0, 0, 1)).collect());
        assert_eq!(t.take(3).len(), 3);
        assert_eq!(t.take(100).len(), 10);
    }

    #[test]
    fn json_round_trip() {
        let t = Trace::new(vec![job(1, 0, 1.5, 1, 2)]);
        let json = t.to_json().unwrap();
        let back = Trace::from_json(&json).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn bad_json_is_invalid_input() {
        let err = Trace::from_json("not json").unwrap_err();
        assert!(matches!(err, EvaError::InvalidInput(_)));
    }

    #[test]
    fn empty_trace_stats() {
        let s = Trace::new(vec![]).stats();
        assert_eq!(s.num_jobs, 0);
        assert_eq!(s.mean_duration_hours, 0.0);
        assert_eq!(s.gpu_fraction(1), 0.0);
    }
}
