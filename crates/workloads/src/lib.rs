//! Workloads and traces for the Eva reproduction.
//!
//! Provides:
//!
//! * the ten batch-processing workloads of **Table 7** (per-task resource
//!   demands with per-family CPU overrides, checkpoint and launch delays,
//!   task counts);
//! * the measured pairwise co-location throughput matrix of **Figure 1**
//!   and the ground-truth interference model built on it;
//! * the job-duration models of **Table 9** (Alibaba empirical quantiles
//!   and the Gavel exponential model);
//! * trace generators: the synthetic Poisson traces of the physical
//!   experiments (§6.2), the Alibaba-like production trace (§6.3, Table 8
//!   GPU mix), and the multi-GPU / multi-task trace modifiers used by the
//!   workload-composition studies (§6.6, §6.7); and
//! * serde-based trace I/O.

pub mod alibaba;
pub mod catalog;
pub mod colocation;
pub mod duration;
pub mod handle;
pub mod modifiers;
pub mod planner;
pub mod source;
pub mod synthetic;
pub mod trace;

pub use alibaba::{AlibabaTraceConfig, DurationModelChoice, TABLE8_GPU_MIX};
pub use catalog::{WorkloadCatalog, WorkloadInfo};
pub use colocation::{InterferenceModel, PairwiseMatrix};
pub use duration::{AlibabaDurations, DurationSampler, GavelDurations, UniformHours};
pub use handle::{ShardMeta, ShardPolicy, TraceHandle, TraceWindow};
pub use modifiers::{MultiGpuMix, MultiTaskMix};
pub use planner::{ShardPlanner, DEFAULT_AUTO_MAX_WINDOWS, DEFAULT_AUTO_TARGET_JOBS};
pub use source::{BoundedSource, JobSource, JsonLinesSource, SyntheticSource, TraceSource};
pub use synthetic::SyntheticTraceConfig;
pub use trace::{Trace, TraceStats};
