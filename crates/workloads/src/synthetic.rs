//! Synthetic traces for the physical-style experiments (§6.2).
//!
//! Jobs are sampled uniformly from the Table 7 workloads, durations are
//! uniform in 0.5–3 h, and arrivals follow a Poisson process with a mean
//! inter-arrival time of 20 minutes — the exact recipe the paper uses for
//! its 32-job and 120-job traces.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use eva_types::{JobId, SimDuration, SimTime};

use crate::catalog::WorkloadCatalog;
use crate::duration::{DurationSampler, UniformHours};
use crate::trace::Trace;

/// Configuration for a synthetic Poisson trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticTraceConfig {
    /// Number of jobs to generate.
    pub num_jobs: usize,
    /// Mean inter-arrival time (Poisson process).
    pub mean_interarrival: SimDuration,
    /// Duration bounds in hours.
    pub duration: UniformHours,
    /// Restrict sampling to single-task workloads (the multi-task
    /// micro-benchmark of Table 6 instead builds its own jobs).
    pub single_task_only: bool,
}

impl SyntheticTraceConfig {
    /// The 32-job small-scale physical trace (§6.2, Table 11).
    pub fn small_scale() -> Self {
        SyntheticTraceConfig {
            num_jobs: 32,
            mean_interarrival: SimDuration::from_mins(20),
            duration: UniformHours::new(0.5, 3.0),
            single_task_only: false,
        }
    }

    /// The 120-job large-scale physical trace (§6.2, Table 10 / Figure 3).
    pub fn large_scale() -> Self {
        SyntheticTraceConfig {
            num_jobs: 120,
            ..SyntheticTraceConfig::small_scale()
        }
    }

    /// A 100,000-job stress tier for the million-job hot path: same
    /// Table 7 recipe as the paper traces, with arrivals compressed to a
    /// 30-second mean so the cluster stays under sustained load instead
    /// of draining between jobs. Used by the perf harness and the CI
    /// release smoke — far beyond anything the paper evaluates.
    pub fn huge_100k() -> Self {
        SyntheticTraceConfig {
            num_jobs: 100_000,
            mean_interarrival: SimDuration::from_secs(30),
            duration: UniformHours::new(0.5, 3.0),
            single_task_only: false,
        }
    }

    /// The million-job tier: ten times
    /// [`huge_100k`](SyntheticTraceConfig::huge_100k), same arrival and
    /// duration distributions. Generation stays cheap (one pass over an
    /// RNG); simulating it end to end is the headline stress target.
    pub fn huge_1m() -> Self {
        SyntheticTraceConfig {
            num_jobs: 1_000_000,
            ..SyntheticTraceConfig::huge_100k()
        }
    }

    /// Generates the trace with a fixed seed.
    pub fn generate(&self, seed: u64) -> Trace {
        let catalog = WorkloadCatalog::table7();
        let mut rng = StdRng::seed_from_u64(seed);
        let pool: Vec<_> = if self.single_task_only {
            catalog
                .single_task_workloads()
                .into_iter()
                .cloned()
                .collect()
        } else {
            catalog.iter().cloned().collect()
        };
        let mut jobs = Vec::with_capacity(self.num_jobs);
        let mut now = SimTime::ZERO;
        for i in 0..self.num_jobs {
            // Exponential inter-arrival gaps give a Poisson process.
            let gap_hours = -self.mean_interarrival.as_hours_f64() * (1.0 - rng.gen::<f64>()).ln();
            now += SimDuration::from_hours_f64(gap_hours);
            let w = &pool[rng.gen_range(0..pool.len())];
            let duration = self.duration.sample(&mut rng);
            jobs.push(w.job_spec(JobId(i as u64), now, duration));
        }
        Trace::new(jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_job_count() {
        let t = SyntheticTraceConfig::large_scale().generate(1);
        assert_eq!(t.len(), 120);
    }

    #[test]
    fn durations_within_bounds() {
        let t = SyntheticTraceConfig::small_scale().generate(2);
        for j in t.jobs() {
            let h = j.duration_at_full_tput.as_hours_f64();
            assert!((0.5..=3.0).contains(&h), "duration {h}");
        }
    }

    #[test]
    fn arrivals_are_increasing_with_poisson_mean() {
        let cfg = SyntheticTraceConfig {
            num_jobs: 2_000,
            ..SyntheticTraceConfig::small_scale()
        };
        let t = cfg.generate(3);
        let jobs = t.jobs();
        let mut gaps = Vec::new();
        for w in jobs.windows(2) {
            assert!(w[1].arrival >= w[0].arrival);
            gaps.push(w[1].arrival.duration_since(w[0].arrival).as_hours_f64());
        }
        let mean_gap: f64 = gaps.iter().sum::<f64>() / gaps.len() as f64;
        assert!((mean_gap - 1.0 / 3.0).abs() < 0.03, "mean gap {mean_gap}h");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SyntheticTraceConfig::small_scale().generate(7);
        let b = SyntheticTraceConfig::small_scale().generate(7);
        let c = SyntheticTraceConfig::small_scale().generate(8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn single_task_only_excludes_resnet_jobs() {
        let cfg = SyntheticTraceConfig {
            num_jobs: 200,
            single_task_only: true,
            ..SyntheticTraceConfig::small_scale()
        };
        let t = cfg.generate(4);
        for j in t.jobs() {
            assert_eq!(j.num_tasks(), 1);
        }
    }

    #[test]
    fn mixed_trace_contains_multi_task_jobs() {
        let t = SyntheticTraceConfig::large_scale().generate(5);
        assert!(t.stats().multi_task_jobs > 0);
    }

    #[test]
    fn huge_tiers_scale_the_paper_recipe() {
        let huge = SyntheticTraceConfig::huge_100k();
        assert_eq!(huge.num_jobs, 100_000);
        assert_eq!(huge.mean_interarrival, SimDuration::from_secs(30));
        assert_eq!(huge.duration, SyntheticTraceConfig::small_scale().duration);
        let million = SyntheticTraceConfig::huge_1m();
        assert_eq!(million.num_jobs, 1_000_000);
        assert_eq!(million.mean_interarrival, huge.mean_interarrival);

        // Generating the full 100k tier is a one-pass RNG walk — cheap
        // enough to do in a unit test — and ids stay dense and sorted.
        let t = SyntheticTraceConfig {
            num_jobs: 100_000,
            ..huge
        }
        .generate(42);
        assert_eq!(t.len(), 100_000);
        let jobs = t.jobs();
        assert_eq!(jobs[0].id, JobId(0));
        assert_eq!(jobs[99_999].id, JobId(99_999));
        assert!(jobs.windows(2).all(|w| w[1].arrival >= w[0].arrival));
    }
}
