//! Ground-truth co-location interference (Figure 1).
//!
//! The paper measured the normalized throughput of each workload when
//! co-located pairwise with every other workload on one instance (separate
//! GPUs/CPUs, shared LLC / disk / network). The simulator uses this matrix
//! as *ground truth*: the scheduler never reads it directly and must learn
//! interference online through the ThroughputMonitor.
//!
//! For groups of more than two co-located tasks the ground-truth throughput
//! composes as the product of the task's pairwise throughputs (each extra
//! neighbour adds contention).

use eva_types::WorkloadKind;

use crate::catalog::WorkloadCatalog;

/// The measured 8×8 pairwise matrix of Figure 1.
///
/// `MATRIX[a][b]` is the normalized throughput of workload `a` (row) when
/// co-located with workload `b` (column). Order: ResNet18, GraphSAGE,
/// CycleGAN, GPT2, GCN, OpenFOAM, Diamond, A3C.
pub const FIG1_MATRIX: [[f64; 8]; 8] = [
    [0.93, 0.97, 1.00, 0.92, 0.83, 0.99, 0.89, 0.83], // ResNet18
    [0.89, 0.89, 0.98, 0.97, 0.88, 0.95, 1.00, 0.74], // GraphSAGE
    [0.99, 1.00, 0.99, 0.99, 0.85, 1.00, 1.00, 1.00], // CycleGAN
    [0.79, 0.96, 0.79, 0.86, 1.00, 0.99, 0.80, 0.78], // GPT2
    [0.92, 0.90, 0.95, 0.98, 0.90, 0.99, 0.95, 0.65], // GCN
    [0.81, 0.98, 0.98, 0.99, 0.95, 0.97, 0.83, 0.94], // OpenFOAM
    [0.96, 0.98, 1.00, 1.00, 0.99, 1.00, 0.93, 0.89], // Diamond
    [0.91, 0.91, 0.98, 0.96, 0.94, 1.00, 0.94, 0.67], // A3C
];

/// A pairwise throughput lookup keyed by Figure 1 indices.
#[derive(Debug, Clone, PartialEq)]
pub struct PairwiseMatrix {
    values: Vec<Vec<f64>>,
}

impl PairwiseMatrix {
    /// The measured Figure 1 matrix.
    pub fn fig1() -> Self {
        PairwiseMatrix {
            values: FIG1_MATRIX.iter().map(|r| r.to_vec()).collect(),
        }
    }

    /// A matrix where every pairwise co-location yields throughput `t`
    /// (the controlled sweep of §6.4 / Figure 4).
    pub fn uniform(t: f64, size: usize) -> Self {
        PairwiseMatrix {
            values: vec![vec![t.clamp(0.0, 1.0); size]; size],
        }
    }

    /// Throughput of row workload `a` when co-located with `b`.
    /// Out-of-range indices fall back to 1.0 (no interference).
    pub fn pair(&self, a: usize, b: usize) -> f64 {
        self.values
            .get(a)
            .and_then(|row| row.get(b))
            .copied()
            .unwrap_or(1.0)
    }

    /// Matrix dimension.
    pub fn size(&self) -> usize {
        self.values.len()
    }
}

/// Ground-truth interference used by the simulator.
///
/// # Examples
///
/// ```
/// use eva_workloads::{InterferenceModel, WorkloadCatalog};
///
/// let cat = WorkloadCatalog::table7();
/// let model = InterferenceModel::measured(&cat);
/// let gpt2 = cat.by_name("GPT2").unwrap().kind;
/// let resnet = cat.by_name("ResNet18-2").unwrap().kind;
/// // GPT2 suffers badly next to ResNet18 (Figure 1: 0.79).
/// assert!((model.throughput(gpt2, &[resnet]) - 0.79).abs() < 1e-9);
/// // Alone, throughput is 1.0.
/// assert_eq!(model.throughput(gpt2, &[]), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct InterferenceModel {
    matrix: PairwiseMatrix,
    /// Maps a workload kind to its matrix index.
    index_of: Vec<usize>,
}

impl InterferenceModel {
    /// The measured Figure 1 model over the Table 7 catalog (ViT reuses the
    /// ResNet18 row/column).
    pub fn measured(catalog: &WorkloadCatalog) -> Self {
        InterferenceModel {
            matrix: PairwiseMatrix::fig1(),
            index_of: catalog.iter().map(|w| w.fig1_index).collect(),
        }
    }

    /// A model where every co-located pair degrades both tasks to `t` —
    /// used for the interference sweep (§6.4).
    pub fn uniform(catalog: &WorkloadCatalog, t: f64) -> Self {
        InterferenceModel {
            matrix: PairwiseMatrix::uniform(t, 8),
            index_of: catalog.iter().map(|w| w.fig1_index).collect(),
        }
    }

    /// A model with no interference at all.
    pub fn none(catalog: &WorkloadCatalog) -> Self {
        InterferenceModel::uniform(catalog, 1.0)
    }

    fn idx(&self, kind: WorkloadKind) -> usize {
        self.index_of.get(kind.0 as usize).copied().unwrap_or(0)
    }

    /// Pairwise ground-truth throughput of `a` when co-located with `b`.
    pub fn pairwise(&self, a: WorkloadKind, b: WorkloadKind) -> f64 {
        self.matrix.pair(self.idx(a), self.idx(b))
    }

    /// Ground-truth throughput of `task` co-located with `others`
    /// (1.0 when alone).
    ///
    /// Groups larger than the measured pairs compose as the *product* of
    /// pairwise throughputs — every extra neighbour adds contention — the
    /// same shape as the estimator the paper's co-location table uses for
    /// unseen groups, so the scheduler's learned values converge to the
    /// truth.
    pub fn throughput(&self, task: WorkloadKind, others: &[WorkloadKind]) -> f64 {
        others
            .iter()
            .map(|o| self.pairwise(task, *o))
            .product::<f64>()
            .clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_matrix_is_row_stochastic_range() {
        for row in FIG1_MATRIX {
            for v in row {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn fig1_spot_checks() {
        let m = PairwiseMatrix::fig1();
        // GCN next to A3C is the worst measured pair (0.65).
        assert_eq!(m.pair(4, 7), 0.65);
        // CycleGAN barely notices anyone.
        assert_eq!(m.pair(2, 1), 1.00);
        // Matrix is asymmetric: ResNet hurts GPT2 more than vice versa.
        assert_eq!(m.pair(3, 0), 0.79);
        assert_eq!(m.pair(0, 3), 0.92);
    }

    #[test]
    fn group_throughput_composes_multiplicatively() {
        let cat = WorkloadCatalog::table7();
        let model = InterferenceModel::measured(&cat);
        let gpt2 = cat.by_name("GPT2").unwrap().kind;
        let resnet = cat.by_name("ResNet18-2").unwrap().kind;
        let cyclegan = cat.by_name("CycleGAN").unwrap().kind;
        let expected = 0.79 * 0.79; // Product over both neighbours.
        let got = model.throughput(gpt2, &[resnet, cyclegan]);
        assert!((got - expected).abs() < 1e-9, "got {got}");
    }

    #[test]
    fn uniform_model_applies_constant() {
        let cat = WorkloadCatalog::table7();
        let model = InterferenceModel::uniform(&cat, 0.9);
        let a = cat.by_name("Diamond").unwrap().kind;
        let b = cat.by_name("GCN").unwrap().kind;
        assert_eq!(model.pairwise(a, b), 0.9);
        assert!((model.throughput(a, &[b, b]) - 0.81).abs() < 1e-9);
    }

    #[test]
    fn none_model_never_degrades() {
        let cat = WorkloadCatalog::table7();
        let model = InterferenceModel::none(&cat);
        let kinds: Vec<_> = cat.iter().map(|w| w.kind).collect();
        for a in &kinds {
            assert_eq!(model.throughput(*a, &kinds), 1.0);
        }
    }

    #[test]
    fn vit_behaves_like_resnet() {
        let cat = WorkloadCatalog::table7();
        let model = InterferenceModel::measured(&cat);
        let vit = cat.by_name("ViT").unwrap().kind;
        let resnet = cat.by_name("ResNet18-2").unwrap().kind;
        let gpt2 = cat.by_name("GPT2").unwrap().kind;
        assert_eq!(model.pairwise(vit, gpt2), model.pairwise(resnet, gpt2));
        assert_eq!(model.pairwise(gpt2, vit), model.pairwise(gpt2, resnet));
    }

    #[test]
    fn uniform_clamps_out_of_range() {
        let m = PairwiseMatrix::uniform(1.5, 4);
        assert_eq!(m.pair(0, 0), 1.0);
        let m = PairwiseMatrix::uniform(-0.5, 4);
        assert_eq!(m.pair(1, 2), 0.0);
    }
}
