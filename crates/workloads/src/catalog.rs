//! The Table 7 workload catalog.
//!
//! Ten batch-processing workloads spanning ML training, bioinformatics, and
//! computational fluid dynamics, with per-task demands, per-family CPU
//! overrides (CPU jobs need fewer of the faster C7i/R7i cores), and the
//! measured checkpoint/launch delays that drive migration overhead.

use eva_types::{
    DemandSpec, JobId, JobSpec, ResourceVector, SimDuration, SimTime, TaskId, TaskSpec,
    WorkloadKind,
};

/// Static description of one workload (a row of Table 7).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadInfo {
    /// Stable kind id within [`WorkloadCatalog::table7`].
    pub kind: WorkloadKind,
    /// Short name, e.g. `"GPT2"`.
    pub name: &'static str,
    /// Application domain, e.g. `"ML – Language Modeling"`.
    pub domain: &'static str,
    /// Per-task resource demand (with per-family overrides).
    pub demand: DemandSpec,
    /// Number of tasks per job.
    pub num_tasks: u32,
    /// Whether tasks are performance-interdependent (data-parallel, §4.4).
    pub gang_coupled: bool,
    /// Checkpoint delay (Table 7 "Mig. Delay – Checkpoint").
    pub checkpoint_delay: SimDuration,
    /// Launch delay (Table 7 "Mig. Delay – Launch").
    pub launch_delay: SimDuration,
    /// Row/column index into the Figure 1 interference matrix. ViT reuses
    /// the ResNet18 index (documented substitution — Figure 1 omits ViT).
    pub fig1_index: usize,
}

impl WorkloadInfo {
    /// True when the workload needs at least one GPU on P3 instances.
    pub fn is_gpu(&self) -> bool {
        self.demand.default.gpu > 0
    }

    /// Builds the `TaskSpec` for task `index` of job `job`.
    pub fn task_spec(&self, job: JobId, index: u32) -> TaskSpec {
        TaskSpec {
            id: TaskId::new(job, index),
            workload: self.kind,
            demand: self.demand.clone(),
            checkpoint_delay: self.checkpoint_delay,
            launch_delay: self.launch_delay,
        }
    }

    /// Builds a complete `JobSpec` of this workload.
    pub fn job_spec(&self, job: JobId, arrival: SimTime, duration: SimDuration) -> JobSpec {
        let tasks = (0..self.num_tasks)
            .map(|i| self.task_spec(job, i))
            .collect();
        JobSpec {
            id: job,
            arrival,
            tasks,
            duration_at_full_tput: duration,
            gang_coupled: self.gang_coupled,
        }
    }
}

/// The full workload catalog.
///
/// # Examples
///
/// ```
/// use eva_workloads::WorkloadCatalog;
///
/// let cat = WorkloadCatalog::table7();
/// assert_eq!(cat.len(), 10);
/// let gpt2 = cat.by_name("GPT2").unwrap();
/// assert_eq!(gpt2.demand.default.gpu, 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadCatalog {
    workloads: Vec<WorkloadInfo>,
}

/// Figure 1 matrix indices (order of the figure's axes).
pub mod fig1 {
    /// ResNet18 row/column.
    pub const RESNET18: usize = 0;
    /// GraphSAGE row/column.
    pub const GRAPHSAGE: usize = 1;
    /// CycleGAN row/column.
    pub const CYCLEGAN: usize = 2;
    /// GPT2 row/column.
    pub const GPT2: usize = 3;
    /// GCN row/column.
    pub const GCN: usize = 4;
    /// OpenFOAM row/column.
    pub const OPENFOAM: usize = 5;
    /// Diamond row/column.
    pub const DIAMOND: usize = 6;
    /// A3C row/column.
    pub const A3C: usize = 7;
}

impl WorkloadCatalog {
    /// The ten workloads of Table 7, in table order.
    pub fn table7() -> Self {
        let gb = |g: u64| g * 1024;
        let uniform = |g, c, ram_gb| DemandSpec::uniform(ResourceVector::new(g, c, gb(ram_gb)));
        // CPU workloads with parenthesized demands need fewer of the
        // higher-frequency C7i/R7i cores.
        let cpu_split = |p3_cpu, fast_cpu, ram_gb| {
            DemandSpec::uniform(ResourceVector::new(0, p3_cpu, gb(ram_gb)))
                .with_family_override("c7i", ResourceVector::new(0, fast_cpu, gb(ram_gb)))
                .with_family_override("r7i", ResourceVector::new(0, fast_cpu, gb(ram_gb)))
        };
        let secs = SimDuration::from_secs;
        let mut workloads = Vec::new();
        let mut push = |name,
                        domain,
                        demand,
                        num_tasks,
                        gang_coupled,
                        ckpt_s: u64,
                        launch_s: u64,
                        fig1_index| {
            let kind = WorkloadKind(workloads.len() as u32);
            workloads.push(WorkloadInfo {
                kind,
                name,
                domain,
                demand,
                num_tasks,
                gang_coupled,
                checkpoint_delay: secs(ckpt_s),
                launch_delay: secs(launch_s),
                fig1_index,
            });
        };
        push(
            "ResNet18-2",
            "ML – Image Classification",
            uniform(1, 4, 24),
            2,
            true,
            2,
            80,
            fig1::RESNET18,
        );
        push(
            "ResNet18-4",
            "ML – Image Classification",
            uniform(1, 4, 24),
            4,
            true,
            2,
            80,
            fig1::RESNET18,
        );
        push(
            "ViT",
            "ML – Image Classification",
            uniform(2, 8, 60),
            1,
            false,
            3,
            143,
            fig1::RESNET18,
        );
        push(
            "CycleGAN",
            "ML – I2I Translation",
            uniform(1, 4, 10),
            1,
            false,
            7,
            2,
            fig1::CYCLEGAN,
        );
        push(
            "GPT2",
            "ML – Language Modeling",
            uniform(4, 4, 10),
            1,
            false,
            30,
            15,
            fig1::GPT2,
        );
        push(
            "GraphSAGE",
            "ML – Graph Embedding",
            uniform(1, 8, 50),
            1,
            false,
            2,
            160,
            fig1::GRAPHSAGE,
        );
        push(
            "GCN",
            "ML – Graph Embedding",
            cpu_split(12, 6, 40),
            1,
            false,
            2,
            28,
            fig1::GCN,
        );
        push(
            "A3C",
            "ML – RL",
            cpu_split(10, 4, 8),
            1,
            false,
            2,
            10,
            fig1::A3C,
        );
        push(
            "Diamond",
            "BioInfo – Sequence Alignment",
            cpu_split(14, 8, 16),
            1,
            false,
            8,
            12,
            fig1::DIAMOND,
        );
        push(
            "OpenFOAM",
            "Physics – CFD",
            cpu_split(8, 6, 8),
            1,
            false,
            21,
            1,
            fig1::OPENFOAM,
        );
        WorkloadCatalog { workloads }
    }

    /// Number of workloads.
    pub fn len(&self) -> usize {
        self.workloads.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.workloads.is_empty()
    }

    /// Iterates over the workloads in table order.
    pub fn iter(&self) -> impl Iterator<Item = &WorkloadInfo> {
        self.workloads.iter()
    }

    /// Looks a workload up by kind.
    pub fn get(&self, kind: WorkloadKind) -> Option<&WorkloadInfo> {
        self.workloads
            .get(kind.0 as usize)
            .filter(|w| w.kind == kind)
    }

    /// Looks a workload up by name.
    pub fn by_name(&self, name: &str) -> Option<&WorkloadInfo> {
        self.workloads.iter().find(|w| w.name == name)
    }

    /// GPU workloads only.
    pub fn gpu_workloads(&self) -> Vec<&WorkloadInfo> {
        self.workloads.iter().filter(|w| w.is_gpu()).collect()
    }

    /// CPU-only workloads.
    pub fn cpu_workloads(&self) -> Vec<&WorkloadInfo> {
        self.workloads.iter().filter(|w| !w.is_gpu()).collect()
    }

    /// Single-task workloads (used where the trace treats every job as a
    /// single-task job, §6.1).
    pub fn single_task_workloads(&self) -> Vec<&WorkloadInfo> {
        self.workloads.iter().filter(|w| w.num_tasks == 1).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table7_has_ten_workloads() {
        let cat = WorkloadCatalog::table7();
        assert_eq!(cat.len(), 10);
        assert_eq!(cat.gpu_workloads().len(), 6);
        assert_eq!(cat.cpu_workloads().len(), 4);
    }

    #[test]
    fn demands_match_table7() {
        let cat = WorkloadCatalog::table7();
        let check = |name: &str, gpu: u32, cpu: u32, ram_gb: u64| {
            let w = cat.by_name(name).unwrap();
            assert_eq!(
                w.demand.default,
                ResourceVector::with_ram_gb(gpu, cpu, ram_gb),
                "{name}"
            );
        };
        check("ResNet18-2", 1, 4, 24);
        check("ViT", 2, 8, 60);
        check("CycleGAN", 1, 4, 10);
        check("GPT2", 4, 4, 10);
        check("GraphSAGE", 1, 8, 50);
        check("GCN", 0, 12, 40);
        check("A3C", 0, 10, 8);
        check("Diamond", 0, 14, 16);
        check("OpenFOAM", 0, 8, 8);
    }

    #[test]
    fn cpu_workloads_have_family_overrides() {
        let cat = WorkloadCatalog::table7();
        let expect = [("GCN", 6u32), ("A3C", 4), ("Diamond", 8), ("OpenFOAM", 6)];
        for (name, fast_cpu) in expect {
            let w = cat.by_name(name).unwrap();
            assert_eq!(w.demand.for_family("c7i").cpu, fast_cpu, "{name}");
            assert_eq!(w.demand.for_family("r7i").cpu, fast_cpu, "{name}");
            assert_ne!(w.demand.for_family("p3").cpu, fast_cpu, "{name}");
        }
    }

    #[test]
    fn migration_delays_match_table7() {
        let cat = WorkloadCatalog::table7();
        let gpt2 = cat.by_name("GPT2").unwrap();
        assert_eq!(gpt2.checkpoint_delay, SimDuration::from_secs(30));
        assert_eq!(gpt2.launch_delay, SimDuration::from_secs(15));
        let foam = cat.by_name("OpenFOAM").unwrap();
        assert_eq!(foam.checkpoint_delay, SimDuration::from_secs(21));
        assert_eq!(foam.launch_delay, SimDuration::from_secs(1));
    }

    #[test]
    fn only_resnet_jobs_are_multi_task() {
        let cat = WorkloadCatalog::table7();
        for w in cat.iter() {
            let multi = w.name.starts_with("ResNet18");
            assert_eq!(w.num_tasks > 1, multi, "{}", w.name);
            assert_eq!(w.gang_coupled, multi, "{}", w.name);
        }
        assert_eq!(cat.by_name("ResNet18-4").unwrap().num_tasks, 4);
        assert_eq!(cat.single_task_workloads().len(), 8);
    }

    #[test]
    fn job_spec_expands_tasks() {
        let cat = WorkloadCatalog::table7();
        let w = cat.by_name("ResNet18-4").unwrap();
        let job = w.job_spec(JobId(3), SimTime::ZERO, SimDuration::from_hours(2));
        assert_eq!(job.num_tasks(), 4);
        assert!(job.gang_coupled);
        for (i, t) in job.tasks.iter().enumerate() {
            assert_eq!(t.id, TaskId::new(JobId(3), i as u32));
            assert_eq!(t.workload, w.kind);
        }
    }

    #[test]
    fn kind_lookup_round_trips() {
        let cat = WorkloadCatalog::table7();
        for w in cat.iter() {
            assert_eq!(cat.get(w.kind).unwrap().name, w.name);
        }
        assert!(cat.get(WorkloadKind(99)).is_none());
    }

    #[test]
    fn vit_substitutes_resnet_interference_index() {
        let cat = WorkloadCatalog::table7();
        assert_eq!(cat.by_name("ViT").unwrap().fig1_index, fig1::RESNET18);
    }
}
