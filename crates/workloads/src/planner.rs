//! Density-aware shard planning: choosing window boundaries from the
//! arrival process instead of slicing the arrival span blindly.
//!
//! [`crate::ShardPolicy::Windows`] cuts the arrival span into equal-width
//! windows — cheap, but oblivious to where jobs actually are. A window
//! boundary that falls inside a burst of long-running jobs cuts through
//! executions that straddle it, and the spliced report silently loses the
//! exact-integer-metric guarantee. A [`ShardPlanner`] instead walks the
//! trace in arrival order and cuts at **drained boundaries** — points
//! where every job seen so far is estimated to have finished before the
//! next window's first job arrives (which in practice means cutting in
//! long arrival gaps). Each window targets a per-cell job budget, which
//! is what bounds a sweep worker's peak memory.
//!
//! Planning is a pure function of the job list, so planned windows —
//! like every other shard policy — keep sweep results byte-identical
//! across thread counts and cache states.

use eva_types::JobSpec;

/// Default per-window job budget of [`crate::ShardPolicy::Auto`].
pub const DEFAULT_AUTO_TARGET_JOBS: usize = 1000;

/// Default cap on planned windows of [`crate::ShardPolicy::Auto`].
pub const DEFAULT_AUTO_MAX_WINDOWS: usize = 64;

/// Plans arrival-window boundaries from arrival density and a per-cell
/// job budget.
///
/// The planner walks jobs in arrival order and opens a new window once
/// the current one holds at least `target_jobs` jobs, cutting at the
/// first **drained** boundary: a point where every job seen so far is
/// estimated to have finished (`max(arrival + duration_at_full_tput)`
/// does not cross the next arrival — in practice, an arrival gap longer
/// than the runtimes of the jobs still executing). This is exactly the
/// straddler predicate the partition audit checks, so a plan whose cuts
/// are all drained is guaranteed to audit clean. If no drained boundary
/// appears before the window reaches twice the budget, the planner cuts
/// at the *largest* arrival gap in that stretch — the least-bad, dirty
/// boundary — so a window never exceeds `2 × target_jobs` jobs.
/// `max_windows` bounds the window count from above by raising the
/// effective budget.
///
/// # Examples
///
/// ```
/// use eva_workloads::{ShardPlanner, SyntheticTraceConfig};
///
/// let trace = SyntheticTraceConfig::small_scale().generate(42);
/// let planner = ShardPlanner::new(8, 16);
/// let windows = planner.plan(trace.jobs());
/// assert_eq!(windows.iter().map(|w| w.len()).sum::<usize>(), trace.len());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlanner {
    target_jobs: usize,
    max_windows: usize,
}

impl ShardPlanner {
    /// A planner with the given per-window job budget and window cap
    /// (both clamped to at least 1).
    pub fn new(target_jobs: usize, max_windows: usize) -> Self {
        ShardPlanner {
            target_jobs: target_jobs.max(1),
            max_windows: max_windows.max(1),
        }
    }

    /// The per-window job budget.
    pub fn target_jobs(&self) -> usize {
        self.target_jobs
    }

    /// The maximum number of windows the plan may produce.
    pub fn max_windows(&self) -> usize {
        self.max_windows
    }

    /// The budget actually enforced for `n` jobs: the declared target,
    /// raised so that `max_windows` is never exceeded.
    pub fn effective_target(&self, n: usize) -> usize {
        self.target_jobs.max(n.div_ceil(self.max_windows)).max(1)
    }

    /// Splits `jobs` (assumed arrival-ordered) into consecutive index
    /// ranges, one per planned window. Always covers every job exactly
    /// once; returns a single range when the trace fits one budget.
    // A one-window plan really is a single `0..n` range, not `(0..n)`
    // misspelled.
    #[allow(clippy::single_range_in_vec_init)]
    pub fn plan(&self, jobs: &[JobSpec]) -> Vec<std::ops::Range<usize>> {
        let n = jobs.len();
        let target = self.effective_target(n);
        if n <= target {
            return vec![0..n];
        }
        let gap = |j: usize| jobs[j + 1].arrival.duration_since(jobs[j].arrival);
        // Running max of estimated end times: a cut after job `j` is
        // *drained* — straddler-free by the same estimate the partition
        // audit uses — iff `latest_end[j] <= jobs[j + 1].arrival`.
        let mut latest_end = Vec::with_capacity(n);
        let mut latest = eva_types::SimTime::ZERO;
        for job in jobs {
            latest = latest.max(job.arrival + job.duration_at_full_tput);
            latest_end.push(latest);
        }

        let mut ranges = Vec::new();
        let mut start = 0;
        // Leave room for the tail range so max_windows is a hard cap even
        // if every cut fires as early as possible.
        while n - start > target && ranges.len() + 1 < self.max_windows {
            // Candidate cuts: after job `j`, for window sizes in
            // [target, 2 × target], never leaving the next window empty.
            let lo = start + target - 1;
            let hi = (start + 2 * target - 1).min(n - 2);
            let mut cut = None;
            let mut best = lo;
            for j in lo..=hi {
                if gap(j) > gap(best) {
                    best = j;
                }
                if latest_end[j] <= jobs[j + 1].arrival {
                    cut = Some(j);
                    break;
                }
            }
            // No drained boundary in budget range: cut at the largest
            // arrival gap seen, keeping the window within twice the
            // budget.
            let j = cut.unwrap_or(best);
            ranges.push(start..j + 1);
            start = j + 1;
        }
        ranges.push(start..n);
        ranges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticTraceConfig;
    use crate::trace::Trace;
    use eva_types::{
        DemandSpec, JobId, ResourceVector, SimDuration, SimTime, TaskId, TaskSpec, WorkloadKind,
    };

    fn job(id: u64, arrival_mins: u64, duration_mins: u64) -> JobSpec {
        JobSpec {
            id: JobId(id),
            arrival: SimTime::from_secs(arrival_mins * 60),
            tasks: vec![TaskSpec {
                id: TaskId::new(JobId(id), 0),
                workload: WorkloadKind(0),
                demand: DemandSpec::uniform(ResourceVector::new(1, 4, 1024)),
                checkpoint_delay: SimDuration::from_secs(2),
                launch_delay: SimDuration::from_secs(10),
            }],
            duration_at_full_tput: SimDuration::from_mins(duration_mins),
            gang_coupled: false,
        }
    }

    /// Three 4-job bursts, 30-min jobs, bursts 600 min apart: the only
    /// drain-sized gaps are the two inter-burst ones.
    fn bursty() -> Vec<JobSpec> {
        let mut jobs = Vec::new();
        for k in 0..3u64 {
            for i in 0..4u64 {
                jobs.push(job(k * 10 + i, k * 600 + i * 2, 30));
            }
        }
        Trace::new(jobs).into_jobs()
    }

    #[test]
    fn cuts_land_in_inter_burst_gaps() {
        let jobs = bursty();
        let ranges = ShardPlanner::new(4, 64).plan(&jobs);
        assert_eq!(ranges, vec![0..4, 4..8, 8..12]);
    }

    #[test]
    #[allow(clippy::single_range_in_vec_init)] // one-window plans are literal
    fn small_traces_stay_whole() {
        let jobs = bursty();
        assert_eq!(ShardPlanner::new(12, 64).plan(&jobs), [0..12]);
        assert_eq!(ShardPlanner::new(100, 64).plan(&jobs), [0..12]);
        assert_eq!(ShardPlanner::new(4, 64).plan(&[]), [0..0]);
        assert_eq!(ShardPlanner::new(1, 64).plan(&jobs[..1]), [0..1]);
    }

    #[test]
    fn max_windows_raises_the_effective_budget() {
        let jobs = bursty();
        let planner = ShardPlanner::new(1, 2);
        assert_eq!(planner.effective_target(jobs.len()), 6);
        let ranges = planner.plan(&jobs);
        assert!(ranges.len() <= 2, "{ranges:?}");
        let covered: usize = ranges.iter().map(|r| r.len()).sum();
        assert_eq!(covered, jobs.len());
    }

    #[test]
    fn dense_traces_fall_back_to_largest_gap_cuts() {
        // Arrivals every 10 min, durations 120 min: no gap ever reaches
        // the expected runtime, so cuts use the largest gap in range and
        // windows stay within twice the budget.
        let jobs: Vec<JobSpec> = (0..20).map(|i| job(i, i * 10, 120)).collect();
        let ranges = ShardPlanner::new(5, 64).plan(&jobs);
        assert!(ranges.len() >= 2, "{ranges:?}");
        for r in &ranges {
            assert!(r.len() <= 10, "window exceeds twice the budget: {r:?}");
        }
        let covered: usize = ranges.iter().map(|r| r.len()).sum();
        assert_eq!(covered, 20);
    }

    #[test]
    fn plan_is_deterministic_and_covers_synthetic_traces() {
        let trace = SyntheticTraceConfig::small_scale().generate(7);
        let planner = ShardPlanner::new(8, 16);
        let a = planner.plan(trace.jobs());
        let b = planner.plan(trace.jobs());
        assert_eq!(a, b);
        assert_eq!(a.iter().map(|r| r.len()).sum::<usize>(), trace.len());
        let mut next = 0;
        for r in &a {
            assert_eq!(r.start, next, "ranges must be consecutive");
            next = r.end;
        }
    }

}
