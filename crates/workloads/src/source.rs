//! Incremental job sources for streaming ingestion.
//!
//! A [`JobSource`] yields jobs one at a time in arrival order, letting the
//! simulator ingest lazily instead of interning a whole trace at
//! construction. Three adapters cover the service-mode story:
//!
//! * [`TraceSource`] — batch replay of an in-memory [`TraceHandle`]; the
//!   existing load-then-run path expressed as a source.
//! * [`SyntheticSource`] — a seeded open-loop Poisson generator that
//!   replays [`SyntheticTraceConfig::generate`]'s exact RNG walk one job
//!   at a time, so a streamed run sees the same jobs as a batch run
//!   without ever materialising the trace.
//! * [`JsonLinesSource`] — line-delimited JSON [`JobSpec`]s from any
//!   [`BufRead`] (stdin, a file, eventually a socket) for external feeds.
//!
//! [`BoundedSource`] caps any source at an arrival-time horizon, which is
//! how `eva serve --duration` bounds an otherwise endless stream.

use std::io::BufRead;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use eva_types::{JobId, JobSpec, SimDuration, SimTime};

use crate::catalog::{WorkloadCatalog, WorkloadInfo};
use crate::duration::DurationSampler;
use crate::handle::TraceHandle;
use crate::synthetic::SyntheticTraceConfig;

/// A pull-based stream of jobs in non-decreasing arrival order.
///
/// Implementations must yield arrivals monotonically: the simulator
/// schedules its next ingest at the pulled job's arrival time and a
/// regression there would violate the event engine's monotone clock.
pub trait JobSource {
    /// Pulls the next job, or `None` once the stream is exhausted.
    fn next_job(&mut self) -> Option<JobSpec>;

    /// Total jobs this source will ever yield, when known up front
    /// (batch traces and fixed-count synthetic streams).
    fn len_hint(&self) -> Option<usize> {
        None
    }

    /// Whether job ids come back strictly increasing.
    ///
    /// Arrival order is a hard contract; id order is not. When a source
    /// can promise strictly increasing ids, the simulator may fold a
    /// retired job's report contribution as soon as no smaller live id
    /// remains, keeping memory bounded on endless streams. Sources that
    /// cannot promise it (external feeds with caller-chosen ids) return
    /// `false` and the simulator holds every contribution until the end.
    fn ids_monotone(&self) -> bool {
        false
    }
}

/// Batch adapter: replays a [`TraceHandle`] in stored order.
#[derive(Debug, Clone)]
pub struct TraceSource {
    handle: TraceHandle,
    cursor: usize,
}

impl TraceSource {
    /// Wraps a trace handle; jobs come back in the trace's arrival order.
    pub fn new(handle: TraceHandle) -> Self {
        TraceSource { handle, cursor: 0 }
    }
}

impl JobSource for TraceSource {
    fn next_job(&mut self) -> Option<JobSpec> {
        let job = self.handle.trace().jobs().get(self.cursor)?.clone();
        self.cursor += 1;
        Some(job)
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.handle.trace().len())
    }

    fn ids_monotone(&self) -> bool {
        self.handle
            .trace()
            .jobs()
            .windows(2)
            .all(|w| w[0].id < w[1].id)
    }
}

/// Open-loop synthetic generator: the [`SyntheticTraceConfig::generate`]
/// recipe (Table 7 pool, exponential gaps, uniform durations) replayed
/// incrementally with the same RNG stream.
///
/// Pulling `cfg.num_jobs` jobs from `SyntheticSource::new(cfg, seed)`
/// yields exactly `cfg.generate(seed).into_jobs()` — a property the unit
/// tests pin down — so streamed and batch runs of the huge tiers agree.
pub struct SyntheticSource {
    remaining: usize,
    mean_interarrival: SimDuration,
    duration: crate::duration::UniformHours,
    pool: Vec<WorkloadInfo>,
    rng: StdRng,
    now: SimTime,
    next_id: u64,
    total: usize,
}

impl SyntheticSource {
    /// Streams the given synthetic config with a fixed seed.
    pub fn new(cfg: &SyntheticTraceConfig, seed: u64) -> Self {
        let catalog = WorkloadCatalog::table7();
        let rng = StdRng::seed_from_u64(seed);
        let pool: Vec<WorkloadInfo> = if cfg.single_task_only {
            catalog
                .single_task_workloads()
                .into_iter()
                .cloned()
                .collect()
        } else {
            catalog.iter().cloned().collect()
        };
        SyntheticSource {
            remaining: cfg.num_jobs,
            mean_interarrival: cfg.mean_interarrival,
            duration: cfg.duration,
            pool,
            rng,
            now: SimTime::ZERO,
            next_id: 0,
            total: cfg.num_jobs,
        }
    }

    /// Open-loop stream at `rate_per_hour` mean arrivals, capped at
    /// `num_jobs` pulls (pass a large cap and wrap in [`BoundedSource`]
    /// to bound by time instead). Durations follow the paper's 0.5–3 h
    /// uniform recipe.
    pub fn open_loop(rate_per_hour: f64, num_jobs: usize, seed: u64) -> Self {
        let cfg = SyntheticTraceConfig {
            num_jobs,
            mean_interarrival: SimDuration::from_hours_f64(1.0 / rate_per_hour.max(1e-9)),
            ..SyntheticTraceConfig::small_scale()
        };
        SyntheticSource::new(&cfg, seed)
    }
}

impl JobSource for SyntheticSource {
    fn next_job(&mut self) -> Option<JobSpec> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        // Exponential inter-arrival gaps give a Poisson process. The RNG
        // call order (gap, workload, duration) must match
        // `SyntheticTraceConfig::generate` exactly.
        let gap_hours = -self.mean_interarrival.as_hours_f64() * (1.0 - self.rng.gen::<f64>()).ln();
        self.now += SimDuration::from_hours_f64(gap_hours);
        let w = &self.pool[self.rng.gen_range(0..self.pool.len())];
        let duration = self.duration.sample(&mut self.rng);
        let id = JobId(self.next_id);
        self.next_id += 1;
        Some(w.job_spec(id, self.now, duration))
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.total)
    }

    fn ids_monotone(&self) -> bool {
        // Ids are `next_id` post-increments: strictly increasing.
        true
    }
}

/// External feed: one JSON-encoded [`JobSpec`] per line.
///
/// Blank lines are skipped. Malformed lines and out-of-order arrivals
/// (which would break the engine's monotone clock) are skipped with a
/// warning on stderr rather than poisoning the stream.
pub struct JsonLinesSource<R: BufRead> {
    reader: R,
    last_arrival: SimTime,
    line_no: usize,
}

impl<R: BufRead> JsonLinesSource<R> {
    /// Streams jobs from a buffered reader (e.g. locked stdin).
    pub fn new(reader: R) -> Self {
        JsonLinesSource {
            reader,
            last_arrival: SimTime::ZERO,
            line_no: 0,
        }
    }
}

impl<R: BufRead> JobSource for JsonLinesSource<R> {
    fn next_job(&mut self) -> Option<JobSpec> {
        let mut line = String::new();
        loop {
            line.clear();
            self.line_no += 1;
            match self.reader.read_line(&mut line) {
                Ok(0) => return None,
                Ok(_) => {}
                Err(e) => {
                    eprintln!("warning: job feed read error at line {}: {e}", self.line_no);
                    return None;
                }
            }
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            match serde_json::from_str::<JobSpec>(trimmed) {
                Ok(job) if job.arrival >= self.last_arrival => {
                    self.last_arrival = job.arrival;
                    return Some(job);
                }
                Ok(job) => {
                    eprintln!(
                        "warning: dropping out-of-order job {:?} at line {} (arrival went backwards)",
                        job.id, self.line_no
                    );
                }
                Err(e) => {
                    eprintln!("warning: skipping malformed job line {}: {e}", self.line_no);
                }
            }
        }
    }
}

/// Caps an inner source at an arrival-time horizon: jobs arriving after
/// `deadline` are dropped and the stream ends.
pub struct BoundedSource<S: JobSource> {
    inner: S,
    deadline: SimTime,
    done: bool,
}

impl<S: JobSource> BoundedSource<S> {
    /// Passes through jobs arriving at or before `deadline`.
    pub fn new(inner: S, deadline: SimTime) -> Self {
        BoundedSource {
            inner,
            deadline,
            done: false,
        }
    }
}

impl<S: JobSource> JobSource for BoundedSource<S> {
    fn next_job(&mut self) -> Option<JobSpec> {
        if self.done {
            return None;
        }
        match self.inner.next_job() {
            Some(job) if job.arrival <= self.deadline => Some(job),
            _ => {
                self.done = true;
                None
            }
        }
    }

    fn ids_monotone(&self) -> bool {
        self.inner.ids_monotone()
    }
}

impl JobSource for Box<dyn JobSource> {
    fn next_job(&mut self) -> Option<JobSpec> {
        (**self).next_job()
    }

    fn len_hint(&self) -> Option<usize> {
        (**self).len_hint()
    }

    fn ids_monotone(&self) -> bool {
        (**self).ids_monotone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;

    fn drain(mut s: impl JobSource) -> Vec<JobSpec> {
        let mut out = Vec::new();
        while let Some(j) = s.next_job() {
            out.push(j);
        }
        out
    }

    #[test]
    fn trace_source_replays_in_stored_order() {
        let trace = SyntheticTraceConfig::small_scale().generate(42);
        let expect = trace.jobs().to_vec();
        let src = TraceSource::new(TraceHandle::new(trace));
        assert_eq!(src.len_hint(), Some(32));
        assert_eq!(drain(src), expect);
    }

    #[test]
    fn synthetic_source_matches_batch_generation_exactly() {
        let cfg = SyntheticTraceConfig {
            num_jobs: 500,
            ..SyntheticTraceConfig::small_scale()
        };
        let batch = cfg.generate(9).into_jobs();
        let streamed = drain(SyntheticSource::new(&cfg, 9));
        assert_eq!(streamed, batch);
    }

    #[test]
    fn open_loop_rate_sets_mean_interarrival() {
        // 60 jobs/hour => 1-minute mean gap; check the sample mean.
        let jobs = drain(SyntheticSource::open_loop(60.0, 2_000, 11));
        let span = jobs
            .last()
            .unwrap()
            .arrival
            .duration_since(jobs[0].arrival)
            .as_hours_f64();
        let mean_gap_mins = span / (jobs.len() - 1) as f64 * 60.0;
        assert!((mean_gap_mins - 1.0).abs() < 0.1, "mean gap {mean_gap_mins}min");
        assert!(jobs.windows(2).all(|w| w[1].arrival >= w[0].arrival));
    }

    #[test]
    fn json_lines_source_parses_skips_and_orders() {
        let trace = SyntheticTraceConfig::small_scale().generate(3);
        let mut feed = String::new();
        for job in trace.jobs() {
            feed.push_str(&serde_json::to_string(job).unwrap());
            feed.push('\n');
        }
        feed.push_str("\n   \nnot json\n");
        // An out-of-order replay of the first job must be dropped.
        feed.push_str(&serde_json::to_string(&trace.jobs()[0]).unwrap());
        feed.push('\n');
        let got = drain(JsonLinesSource::new(feed.as_bytes()));
        assert_eq!(got, trace.jobs());
    }

    #[test]
    fn bounded_source_cuts_at_the_deadline() {
        let cfg = SyntheticTraceConfig {
            num_jobs: 1_000,
            ..SyntheticTraceConfig::small_scale()
        };
        let all = cfg.generate(5).into_jobs();
        let deadline = all[99].arrival;
        let got = drain(BoundedSource::new(SyntheticSource::new(&cfg, 5), deadline));
        assert!(!got.is_empty());
        assert!(got.len() < all.len());
        assert!(got.iter().all(|j| j.arrival <= deadline));
        assert_eq!(got[..], all[..got.len()]);
    }

    #[test]
    fn batch_trace_round_trips_through_a_source() {
        // A trace rebuilt from a source equals the original trace —
        // the batch path really is a special case of streaming.
        let trace = SyntheticTraceConfig::small_scale().generate(21);
        let src = TraceSource::new(TraceHandle::new(trace.clone()));
        assert_eq!(Trace::new(drain(src)), trace);
    }
}
