//! Trace modifiers for the workload-composition studies.
//!
//! * [`MultiGpuMix`] converts a fraction of single-GPU jobs into 2-, 4-,
//!   and 8-GPU jobs in a 5:4:1 ratio (§6.6 / Figure 6).
//! * [`MultiTaskMix`] duplicates tasks of a fraction of jobs into 2- or
//!   4-task gang-coupled jobs in a 1:1 ratio (§6.7 / Figure 7).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use eva_types::{ResourceVector, TaskId};

use crate::trace::Trace;

/// Converts single-GPU jobs to multi-GPU jobs (Figure 6's x-axis).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiGpuMix {
    /// Fraction of *GPU* jobs to convert to multi-GPU (0.0–1.0).
    pub proportion: f64,
}

impl MultiGpuMix {
    /// Builds the modifier; the proportion is clamped to `[0, 1]`.
    pub fn new(proportion: f64) -> Self {
        MultiGpuMix {
            proportion: proportion.clamp(0.0, 1.0),
        }
    }

    /// Applies the modifier. GPU counts are drawn 2/4/8 with weights
    /// 5:4:1; CPU and RAM scale with the GPU count, capped to keep every
    /// task hostable on the P3 family (≤8 vCPU and ≤61 GB per GPU, max 8
    /// GPUs on p3.16xlarge).
    pub fn apply(&self, trace: &Trace, seed: u64) -> Trace {
        let mut rng = StdRng::seed_from_u64(seed);
        let jobs = trace
            .jobs()
            .iter()
            .map(|job| {
                let mut job = job.clone();
                let is_single_gpu = job.tasks.iter().all(|t| t.demand.default.gpu == 1);
                if is_single_gpu && rng.gen::<f64>() < self.proportion {
                    let gpus = sample_multi_gpu_count(&mut rng);
                    for task in &mut job.tasks {
                        let d = task.demand.default;
                        let scaled = ResourceVector::new(
                            gpus,
                            (d.cpu * gpus).min(8 * gpus),
                            (d.ram_mb * u64::from(gpus)).min(61 * 1024 * u64::from(gpus)),
                        );
                        task.demand.default = scaled;
                        // Family overrides scale the same way.
                        for v in task.demand.per_family.values_mut() {
                            *v = ResourceVector::new(
                                gpus,
                                (v.cpu * gpus).min(8 * gpus),
                                (v.ram_mb * u64::from(gpus)).min(61 * 1024 * u64::from(gpus)),
                            );
                        }
                    }
                }
                job
            })
            .collect();
        Trace::new(jobs)
    }
}

/// Draws 2, 4, or 8 GPUs with the paper's 5:4:1 weights.
pub fn sample_multi_gpu_count<R: Rng + ?Sized>(rng: &mut R) -> u32 {
    match rng.gen_range(0..10) {
        0..=4 => 2,
        5..=8 => 4,
        _ => 8,
    }
}

/// Converts single-task jobs into gang-coupled multi-task jobs
/// (Figure 7's x-axis).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiTaskMix {
    /// Fraction of jobs to convert (0.0–1.0).
    pub proportion: f64,
}

impl MultiTaskMix {
    /// Builds the modifier; the proportion is clamped to `[0, 1]`.
    pub fn new(proportion: f64) -> Self {
        MultiTaskMix {
            proportion: proportion.clamp(0.0, 1.0),
        }
    }

    /// Applies the modifier: selected single-task jobs get their task
    /// duplicated into 2 or 4 identical tasks (1:1 ratio) and become
    /// gang-coupled, each task keeping the original resource demands.
    pub fn apply(&self, trace: &Trace, seed: u64) -> Trace {
        let mut rng = StdRng::seed_from_u64(seed);
        let jobs = trace
            .jobs()
            .iter()
            .map(|job| {
                let mut job = job.clone();
                if job.is_single_task() && rng.gen::<f64>() < self.proportion {
                    let copies = if rng.gen::<bool>() { 2 } else { 4 };
                    let template = job.tasks[0].clone();
                    job.tasks = (0..copies)
                        .map(|i| {
                            let mut t = template.clone();
                            t.id = TaskId::new(job.id, i);
                            t
                        })
                        .collect();
                    job.gang_coupled = true;
                }
                job
            })
            .collect();
        Trace::new(jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alibaba::{AlibabaTraceConfig, DurationModelChoice};
    use eva_cloud::Catalog;

    fn base_trace() -> Trace {
        AlibabaTraceConfig {
            num_jobs: 2_000,
            ..AlibabaTraceConfig::small(DurationModelChoice::Alibaba)
        }
        .generate(30)
    }

    #[test]
    fn zero_proportion_is_identity() {
        let t = base_trace();
        assert_eq!(MultiGpuMix::new(0.0).apply(&t, 1), t);
        assert_eq!(MultiTaskMix::new(0.0).apply(&t, 1), t);
    }

    #[test]
    fn multi_gpu_ratio_is_5_4_1() {
        let t = base_trace();
        let out = MultiGpuMix::new(1.0).apply(&t, 2);
        let s = out.stats();
        let two = s.gpu_fraction(2);
        let four = s.gpu_fraction(4);
        let eight = s.gpu_fraction(8);
        assert!(two > four && four > eight, "{two} {four} {eight}");
        assert!(
            (two / four - 1.25).abs() < 0.3,
            "2:4 ratio {:.2}",
            two / four
        );
        // Non-GPU jobs untouched.
        assert!((s.gpu_fraction(0) - t.stats().gpu_fraction(0)).abs() < 1e-9);
    }

    #[test]
    fn multi_gpu_jobs_remain_schedulable() {
        let catalog = Catalog::aws_eval_2025();
        let out = MultiGpuMix::new(1.0).apply(&base_trace(), 3);
        for job in out.jobs() {
            for task in &job.tasks {
                assert!(catalog.cheapest_fit(&task.demand).is_some());
            }
        }
    }

    #[test]
    fn proportion_controls_conversion_count() {
        let t = base_trace();
        let gpu_jobs = |tr: &Trace| {
            tr.jobs()
                .iter()
                .filter(|j| j.tasks[0].demand.default.gpu > 1)
                .count()
        };
        let multi_before = gpu_jobs(&t) as f64;
        let out = MultiGpuMix::new(0.3).apply(&t, 4);
        let total_single_gpu = t
            .jobs()
            .iter()
            .filter(|j| j.tasks[0].demand.default.gpu == 1)
            .count() as f64;
        let converted = gpu_jobs(&out) as f64 - multi_before;
        let rate = converted / total_single_gpu;
        assert!((rate - 0.3).abs() < 0.05, "conversion rate {rate:.3}");
    }

    #[test]
    fn multi_task_mix_duplicates_tasks() {
        let t = base_trace();
        let out = MultiTaskMix::new(1.0).apply(&t, 5);
        let mut twos = 0;
        let mut fours = 0;
        for job in out.jobs() {
            assert!(job.gang_coupled);
            match job.num_tasks() {
                2 => twos += 1,
                4 => fours += 1,
                n => panic!("unexpected task count {n}"),
            }
            // Tasks are identical except for ids.
            let d0 = &job.tasks[0].demand;
            for (i, task) in job.tasks.iter().enumerate() {
                assert_eq!(&task.demand, d0);
                assert_eq!(task.id, TaskId::new(job.id, i as u32));
            }
        }
        let ratio = twos as f64 / fours as f64;
        assert!((ratio - 1.0).abs() < 0.2, "2-task:4-task ratio {ratio:.2}");
    }

    #[test]
    fn multi_task_mix_partial_proportion() {
        let t = base_trace();
        let out = MultiTaskMix::new(0.4).apply(&t, 6);
        let s = out.stats();
        let frac = s.multi_task_jobs as f64 / s.num_jobs as f64;
        assert!((frac - 0.4).abs() < 0.05, "multi-task fraction {frac:.3}");
    }
}
