//! The Alibaba-like production trace generator (§6.3).
//!
//! The paper simulates 6,274 single-task jobs from Alibaba's
//! `cluster-trace-gpu-v2023`. We do not ship the proprietary trace;
//! instead this generator reproduces the published marginals:
//!
//! * GPU-demand mix from Table 8
//!   (0 GPU 13.41 %, 1 GPU 86.17 %, 2 GPU 0.20 %, 4 GPU 0.18 %, 8 GPU 0.04 %);
//! * job durations from either the Alibaba empirical model or the Gavel
//!   model (Table 9);
//! * Poisson arrivals (rate studied in §6.8); and
//! * a Table 7 workload attached to every job to drive its migration
//!   delays and co-location interference, exactly as the paper does.
//!
//! CPU and RAM demands are sampled per GPU class so that every job fits on
//! at least one of the 21 instance types (the paper likewise drops jobs no
//! type can host).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use eva_types::{
    DemandSpec, JobId, JobSpec, ResourceVector, SimDuration, SimTime, TaskId, TaskSpec,
};

use crate::catalog::WorkloadCatalog;
use crate::duration::{AlibabaDurations, DurationSampler, GavelDurations};
use crate::trace::Trace;

/// Table 8 GPU-demand mix: `(gpus_per_task, probability)`.
pub const TABLE8_GPU_MIX: [(u32, f64); 5] = [
    (0, 0.1341),
    (1, 0.8617),
    (2, 0.0020),
    (4, 0.0018),
    (8, 0.0004),
];

/// Which Table 9 duration model to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DurationModelChoice {
    /// Alibaba empirical quantiles (mean 9.1 h).
    Alibaba,
    /// Gavel exponential model (mean 16.7 h).
    Gavel,
}

/// Configuration of the Alibaba-like trace.
#[derive(Debug, Clone, PartialEq)]
pub struct AlibabaTraceConfig {
    /// Number of jobs (the paper's full trace has 6,274).
    pub num_jobs: usize,
    /// Mean job arrival rate in jobs/hour (§6.8 sweeps 0.5–3).
    pub arrival_rate_per_hour: f64,
    /// The duration model.
    pub durations: DurationModelChoice,
}

impl AlibabaTraceConfig {
    /// The full-trace configuration (6,274 jobs, 3 jobs/hr as in the
    /// synthetic traces' 20-minute inter-arrival).
    pub fn full(durations: DurationModelChoice) -> Self {
        AlibabaTraceConfig {
            num_jobs: 6_274,
            arrival_rate_per_hour: 3.0,
            durations,
        }
    }

    /// A scaled-down configuration for quick runs (the artifact's
    /// "first 200 jobs" experiment).
    pub fn small(durations: DurationModelChoice) -> Self {
        AlibabaTraceConfig {
            num_jobs: 200,
            arrival_rate_per_hour: 3.0,
            durations,
        }
    }

    /// Generates the trace with a fixed seed.
    pub fn generate(&self, seed: u64) -> Trace {
        let catalog = WorkloadCatalog::table7();
        let mut rng = StdRng::seed_from_u64(seed);
        let gpu_pool: Vec<_> = catalog
            .gpu_workloads()
            .into_iter()
            .filter(|w| w.num_tasks == 1)
            .cloned()
            .collect();
        let cpu_pool: Vec<_> = catalog.cpu_workloads().into_iter().cloned().collect();
        let alibaba = AlibabaDurations::default();
        let gavel = GavelDurations;

        let mut jobs = Vec::with_capacity(self.num_jobs);
        let mut now = SimTime::ZERO;
        let mean_gap_hours = 1.0 / self.arrival_rate_per_hour.max(1e-6);
        for i in 0..self.num_jobs {
            let gap = -mean_gap_hours * (1.0 - rng.gen::<f64>()).ln();
            now += SimDuration::from_hours_f64(gap);
            let gpus = sample_gpu_count(&mut rng);
            let demand = sample_demand(&mut rng, gpus);
            // Attach a workload of the matching class for interference and
            // migration-delay modelling.
            let w = if gpus > 0 {
                &gpu_pool[rng.gen_range(0..gpu_pool.len())]
            } else {
                &cpu_pool[rng.gen_range(0..cpu_pool.len())]
            };
            let duration = match self.durations {
                DurationModelChoice::Alibaba => alibaba.sample(&mut rng),
                DurationModelChoice::Gavel => gavel.sample(&mut rng),
            };
            let id = JobId(i as u64);
            jobs.push(JobSpec {
                id,
                arrival: now,
                tasks: vec![TaskSpec {
                    id: TaskId::new(id, 0),
                    workload: w.kind,
                    demand,
                    checkpoint_delay: w.checkpoint_delay,
                    launch_delay: w.launch_delay,
                }],
                duration_at_full_tput: duration,
                gang_coupled: false,
            });
        }
        Trace::new(jobs)
    }
}

/// Samples a GPU count from the Table 8 mix.
pub fn sample_gpu_count<R: Rng + ?Sized>(rng: &mut R) -> u32 {
    let u: f64 = rng.gen();
    let mut acc = 0.0;
    for (gpus, p) in TABLE8_GPU_MIX {
        acc += p;
        if u < acc {
            return gpus;
        }
    }
    // Probabilities sum to 1.0; floating slack lands on the last bucket.
    TABLE8_GPU_MIX.last().map(|(g, _)| *g).unwrap_or(0)
}

/// Samples a CPU/RAM demand for a task with `gpus` GPUs.
///
/// Production demands are *imbalanced*: many GPU jobs need more CPU or RAM
/// than the per-GPU slice of a P3 box provides (data-heavy input pipelines,
/// giant embedding tables), which forces them onto larger instances whose
/// extra GPUs sit idle — exactly why No-Packing leaves GPU allocation at
/// ~67 % in the paper's Table 10 and why reservation-price packing has
/// headroom to exploit. The sampler reproduces that skew while keeping
/// every demand hostable on some catalog type (≤64 vCPU / ≤488 GB for GPU
/// jobs on p3.16xlarge; ≤192 vCPU / ≤1536 GB for CPU jobs).
pub fn sample_demand<R: Rng + ?Sized>(rng: &mut R, gpus: u32) -> DemandSpec {
    fn weighted<R: Rng + ?Sized, const N: usize>(
        rng: &mut R,
        values: [u64; N],
        weights: [f64; N],
    ) -> u64 {
        let total: f64 = weights.iter().sum();
        let mut u = rng.gen::<f64>() * total;
        for (v, w) in values.iter().zip(weights) {
            if u < w {
                return *v;
            }
            u -= w;
        }
        values[N - 1]
    }
    if gpus > 0 {
        let cpu_per_gpu = weighted(
            rng,
            [1, 2, 4, 8, 12, 16],
            [0.15, 0.20, 0.30, 0.15, 0.12, 0.08],
        ) as u32;
        let ram_gb_per_gpu = weighted(
            rng,
            [4, 8, 16, 32, 61, 100],
            [0.15, 0.20, 0.25, 0.20, 0.12, 0.08],
        );
        DemandSpec::uniform(ResourceVector::with_ram_gb(
            gpus,
            (cpu_per_gpu * gpus).min(64),
            (ram_gb_per_gpu * u64::from(gpus)).min(488),
        ))
    } else {
        let cpu = weighted(
            rng,
            [1, 2, 4, 6, 8, 12, 16, 32],
            [0.10, 0.15, 0.20, 0.15, 0.15, 0.10, 0.10, 0.05],
        ) as u32;
        let ram_per_cpu = weighted(rng, [1, 2, 4, 8, 16], [0.20, 0.25, 0.25, 0.20, 0.10]);
        let ram_gb = (ram_per_cpu * u64::from(cpu)).clamp(1, 1536);
        let spec = DemandSpec::uniform(ResourceVector::with_ram_gb(0, cpu, ram_gb));
        // The faster C7i/R7i cores serve CPU jobs with ~half the vCPUs
        // (Table 7 pattern).
        let fast_cpu = (cpu / 2).max(1);
        spec.with_family_override("c7i", ResourceVector::with_ram_gb(0, fast_cpu, ram_gb))
            .with_family_override("r7i", ResourceVector::with_ram_gb(0, fast_cpu, ram_gb))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_cloud::Catalog;

    #[test]
    fn gpu_mix_matches_table8() {
        let mut rng = StdRng::seed_from_u64(20);
        let n = 200_000;
        let mut counts = std::collections::BTreeMap::new();
        for _ in 0..n {
            *counts.entry(sample_gpu_count(&mut rng)).or_insert(0usize) += 1;
        }
        let frac = |g: u32| *counts.get(&g).unwrap_or(&0) as f64 / n as f64;
        assert!((frac(0) - 0.1341).abs() < 0.01, "0-GPU {:.4}", frac(0));
        assert!((frac(1) - 0.8617).abs() < 0.01, "1-GPU {:.4}", frac(1));
        assert!(frac(2) > 0.0 && frac(2) < 0.01);
        assert!(frac(8) < 0.005);
    }

    #[test]
    fn every_generated_job_fits_some_instance_type() {
        let catalog = Catalog::aws_eval_2025();
        let t = AlibabaTraceConfig::small(DurationModelChoice::Alibaba).generate(21);
        for job in t.jobs() {
            for task in &job.tasks {
                assert!(
                    catalog.cheapest_fit(&task.demand).is_some(),
                    "unschedulable demand {:?}",
                    task.demand
                );
            }
        }
    }

    #[test]
    fn trace_stats_reflect_composition() {
        let cfg = AlibabaTraceConfig {
            num_jobs: 5_000,
            ..AlibabaTraceConfig::full(DurationModelChoice::Alibaba)
        };
        let t = cfg.generate(22);
        let s = t.stats();
        assert_eq!(s.num_jobs, 5_000);
        assert!((s.gpu_fraction(1) - 0.8617).abs() < 0.02);
        assert!((s.gpu_fraction(0) - 0.1341).abs() < 0.02);
        // All single-task.
        assert_eq!(s.multi_task_jobs, 0);
    }

    #[test]
    fn gavel_durations_are_longer_on_average() {
        let a = AlibabaTraceConfig {
            num_jobs: 3_000,
            ..AlibabaTraceConfig::full(DurationModelChoice::Alibaba)
        }
        .generate(23)
        .stats();
        let g = AlibabaTraceConfig {
            num_jobs: 3_000,
            ..AlibabaTraceConfig::full(DurationModelChoice::Gavel)
        }
        .generate(23)
        .stats();
        assert!(g.mean_duration_hours > a.mean_duration_hours);
        assert!(g.median_duration_hours > a.median_duration_hours);
    }

    #[test]
    fn arrival_rate_controls_span() {
        let slow = AlibabaTraceConfig {
            num_jobs: 500,
            arrival_rate_per_hour: 0.5,
            durations: DurationModelChoice::Alibaba,
        }
        .generate(24)
        .stats();
        let fast = AlibabaTraceConfig {
            num_jobs: 500,
            arrival_rate_per_hour: 3.0,
            durations: DurationModelChoice::Alibaba,
        }
        .generate(24)
        .stats();
        assert!(slow.arrival_span_hours > 4.0 * fast.arrival_span_hours);
    }

    #[test]
    fn cpu_jobs_get_family_overrides() {
        let t = AlibabaTraceConfig {
            num_jobs: 2_000,
            ..AlibabaTraceConfig::small(DurationModelChoice::Alibaba)
        }
        .generate(25);
        let mut saw_cpu_job = false;
        for job in t.jobs() {
            let d = &job.tasks[0].demand;
            if d.default.gpu == 0 && d.default.cpu >= 2 {
                saw_cpu_job = true;
                assert!(d.for_family("c7i").cpu <= d.default.cpu / 2 + 1);
            }
        }
        assert!(saw_cpu_job);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = AlibabaTraceConfig::small(DurationModelChoice::Gavel);
        assert_eq!(cfg.generate(9), cfg.generate(9));
        assert_ne!(cfg.generate(9), cfg.generate(10));
    }
}
