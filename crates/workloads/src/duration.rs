//! Job-duration models (Table 9).
//!
//! Two models drive the simulation experiments:
//!
//! * **Alibaba** — the empirical distribution of the production trace:
//!   median 0.2 h, P80 1.0 h, P95 5.2 h, mean 9.1 h (half the jobs last
//!   under ~11 minutes, yet the mean is dominated by a heavy tail). We
//!   reproduce it with a piecewise log-uniform inverse CDF through the
//!   published quantiles, with the tail endpoint chosen so the overall mean
//!   lands on 9.1 h.
//! * **Gavel** — durations of `10^x` minutes with `x ~ U[1.5, 3]` with
//!   probability 0.8 and `x ~ U[3, 4]` with probability 0.2, reproducing
//!   mean 16.7 h / median 4.5 h / P80 16.4 h / P95 96.6 h.

use rand::Rng;

use eva_types::SimDuration;

/// Anything that can sample a job duration.
pub trait DurationSampler {
    /// Draws one job duration.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> SimDuration;
}

/// Uniform duration in `[min_hours, max_hours]` — the synthetic physical
/// traces use 0.5–3 h (§6.1), the multi-task micro-benchmark 0.5–16 h.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformHours {
    /// Lower bound (hours).
    pub min_hours: f64,
    /// Upper bound (hours).
    pub max_hours: f64,
}

impl UniformHours {
    /// Builds the sampler; swaps bounds if given in the wrong order.
    pub fn new(min_hours: f64, max_hours: f64) -> Self {
        let (lo, hi) = if min_hours <= max_hours {
            (min_hours, max_hours)
        } else {
            (max_hours, min_hours)
        };
        UniformHours {
            min_hours: lo.max(0.0),
            max_hours: hi.max(0.0),
        }
    }
}

impl DurationSampler for UniformHours {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> SimDuration {
        let h = rng.gen_range(self.min_hours..=self.max_hours);
        SimDuration::from_hours_f64(h)
    }
}

/// The Alibaba empirical duration model.
///
/// Piecewise log-uniform through `(quantile, hours)` knots:
/// `(0, 0.003) – (0.5, 0.2) – (0.8, 1.0) – (0.95, 5.2) – (1.0, TAIL)`,
/// with `TAIL = 880 h` chosen so the mean is ≈ 9.1 h.
///
/// # Examples
///
/// ```
/// use eva_workloads::{AlibabaDurations, DurationSampler};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let model = AlibabaDurations::default();
/// let mut rng = StdRng::seed_from_u64(0);
/// let d = model.sample(&mut rng);
/// assert!(d.as_hours_f64() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AlibabaDurations {
    knots: Vec<(f64, f64)>,
}

impl Default for AlibabaDurations {
    fn default() -> Self {
        AlibabaDurations {
            knots: vec![
                (0.0, 0.003),
                (0.5, 0.2),
                (0.8, 1.0),
                (0.95, 5.2),
                (1.0, 880.0),
            ],
        }
    }
}

impl AlibabaDurations {
    /// Inverse CDF at probability `p ∈ [0, 1]` (hours).
    pub fn inverse_cdf(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        for w in self.knots.windows(2) {
            let (p0, h0) = w[0];
            let (p1, h1) = w[1];
            if p <= p1 {
                let frac = if p1 > p0 { (p - p0) / (p1 - p0) } else { 0.0 };
                // Log-uniform interpolation within the segment.
                return h0 * (h1 / h0).powf(frac);
            }
        }
        self.knots.last().map(|(_, h)| *h).unwrap_or(0.0)
    }
}

impl DurationSampler for AlibabaDurations {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> SimDuration {
        SimDuration::from_hours_f64(self.inverse_cdf(rng.gen::<f64>()))
    }
}

/// The Gavel duration model (§6.1): `10^x` minutes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GavelDurations;

impl DurationSampler for GavelDurations {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> SimDuration {
        let x = if rng.gen::<f64>() < 0.8 {
            rng.gen_range(1.5..3.0)
        } else {
            rng.gen_range(3.0..4.0)
        };
        let minutes = 10f64.powf(x);
        SimDuration::from_hours_f64(minutes / 60.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quantile(sorted: &[f64], q: f64) -> f64 {
        let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
        sorted[idx]
    }

    fn sample_hours<S: DurationSampler>(s: &S, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut v: Vec<f64> = (0..n).map(|_| s.sample(&mut rng).as_hours_f64()).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v
    }

    #[test]
    fn alibaba_matches_table9_quantiles() {
        let v = sample_hours(&AlibabaDurations::default(), 60_000, 11);
        let median = quantile(&v, 0.5);
        let p80 = quantile(&v, 0.8);
        let p95 = quantile(&v, 0.95);
        let mean: f64 = v.iter().sum::<f64>() / v.len() as f64;
        assert!((median - 0.2).abs() < 0.03, "median {median}");
        assert!((p80 - 1.0).abs() < 0.1, "p80 {p80}");
        assert!((p95 - 5.2).abs() < 0.5, "p95 {p95}");
        assert!((mean - 9.1).abs() < 1.5, "mean {mean}");
    }

    #[test]
    fn gavel_matches_table9_quantiles() {
        let v = sample_hours(&GavelDurations, 60_000, 12);
        let median = quantile(&v, 0.5);
        let p80 = quantile(&v, 0.8);
        let p95 = quantile(&v, 0.95);
        let mean: f64 = v.iter().sum::<f64>() / v.len() as f64;
        assert!((median - 4.5).abs() < 0.4, "median {median}");
        assert!((p80 - 16.4).abs() < 1.5, "p80 {p80}");
        assert!((p95 - 96.6).abs() < 10.0, "p95 {p95}");
        assert!((mean - 16.7).abs() < 1.5, "mean {mean}");
    }

    #[test]
    fn alibaba_inverse_cdf_hits_knots() {
        let m = AlibabaDurations::default();
        assert!((m.inverse_cdf(0.5) - 0.2).abs() < 1e-12);
        assert!((m.inverse_cdf(0.8) - 1.0).abs() < 1e-12);
        assert!((m.inverse_cdf(0.95) - 5.2).abs() < 1e-12);
        // Clamped outside [0, 1].
        assert_eq!(m.inverse_cdf(-1.0), m.inverse_cdf(0.0));
        assert_eq!(m.inverse_cdf(2.0), m.inverse_cdf(1.0));
    }

    #[test]
    fn alibaba_inverse_cdf_is_monotone() {
        let m = AlibabaDurations::default();
        let mut prev = 0.0;
        for i in 0..=100 {
            let h = m.inverse_cdf(i as f64 / 100.0);
            assert!(h >= prev, "not monotone at {i}");
            prev = h;
        }
    }

    #[test]
    fn uniform_hours_stays_in_range() {
        let s = UniformHours::new(0.5, 3.0);
        let v = sample_hours(&s, 1_000, 13);
        assert!(*v.first().unwrap() >= 0.5);
        assert!(*v.last().unwrap() <= 3.0);
    }

    #[test]
    fn uniform_hours_swaps_misordered_bounds() {
        let s = UniformHours::new(3.0, 0.5);
        assert_eq!((s.min_hours, s.max_hours), (0.5, 3.0));
    }

    #[test]
    fn gavel_durations_bounded_by_model() {
        // 10^1.5 min ≈ 0.53 h; 10^4 min ≈ 166.7 h.
        let v = sample_hours(&GavelDurations, 5_000, 14);
        assert!(*v.first().unwrap() >= 10f64.powf(1.5) / 60.0 - 1e-9);
        assert!(*v.last().unwrap() <= 10f64.powf(4.0) / 60.0 + 1e-9);
    }
}
