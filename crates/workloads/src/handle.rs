//! Shared trace handles and arrival-time sharding.
//!
//! Experiment grids multiply a trace across many cells; cloning a
//! 6,000-job [`Trace`] per cell dominated sweep memory. A [`TraceHandle`]
//! wraps the trace in an [`Arc`] so every cell shares one immutable copy
//! (cloning a handle is a reference-count bump), and lazily computes a
//! stable **content fingerprint** — the identity the persistent report
//! cache and cross-experiment deduplication key on.
//!
//! [`TraceHandle::shard`] splits a trace into arrival-time windows
//! ([`TraceWindow`]) that run as independent simulation cells. Each
//! window carries offset metadata ([`ShardMeta`]) so shard reports can be
//! spliced back into a whole-trace report: the window keeps its jobs'
//! original arrival times, and `offset` records where the window's first
//! arrival sits relative to the whole trace's first arrival.

use std::ops::Deref;
use std::sync::{Arc, OnceLock};

use serde::{Deserialize, Serialize};

use eva_types::{SimDuration, SimTime};

use crate::planner::{ShardPlanner, DEFAULT_AUTO_MAX_WINDOWS, DEFAULT_AUTO_TARGET_JOBS};
use crate::trace::Trace;

/// An immutable, reference-counted trace with a stable content
/// fingerprint.
///
/// Cloning a handle never clones the jobs. The fingerprint is computed on
/// first use (FNV-1a over the trace's canonical JSON serialization), so
/// handles that are only simulated — never cached or deduplicated — pay
/// nothing.
///
/// # Examples
///
/// ```
/// use eva_workloads::{SyntheticTraceConfig, TraceHandle};
///
/// let handle = TraceHandle::new(SyntheticTraceConfig::small_scale().generate(42));
/// let alias = handle.clone(); // Arc bump, not a job-vector clone
/// assert_eq!(handle.fingerprint(), alias.fingerprint());
/// assert_eq!(handle.len(), 32); // Deref to the underlying Trace
/// ```
#[derive(Debug, Clone)]
pub struct TraceHandle {
    inner: Arc<HandleInner>,
}

#[derive(Debug)]
struct HandleInner {
    trace: Trace,
    fingerprint: OnceLock<u64>,
}

impl TraceHandle {
    /// Wraps a trace in a shared handle.
    pub fn new(trace: Trace) -> Self {
        TraceHandle {
            inner: Arc::new(HandleInner {
                trace,
                fingerprint: OnceLock::new(),
            }),
        }
    }

    /// The underlying trace.
    pub fn trace(&self) -> &Trace {
        &self.inner.trace
    }

    /// Stable 64-bit content hash of the trace (FNV-1a over its canonical
    /// JSON form), computed once per handle. Two handles over traces with
    /// identical job content — regardless of how they were constructed —
    /// fingerprint identically.
    pub fn fingerprint(&self) -> u64 {
        *self.inner.fingerprint.get_or_init(|| {
            let json = serde_json::to_string(&self.inner.trace)
                .expect("traces always serialize");
            eva_types::fnv1a64(json.as_bytes())
        })
    }

    /// The fingerprint as fixed-width hex, for keys and file names.
    pub fn fingerprint_hex(&self) -> String {
        format!("{:016x}", self.fingerprint())
    }

    /// Splits the trace into arrival-time windows.
    ///
    /// Jobs keep their original arrival times; a window is itself an
    /// independent trace (with its own handle and fingerprint) plus
    /// [`ShardMeta`] describing where it sits in the whole trace. Windows
    /// that would contain no jobs are dropped and the remaining windows
    /// are renumbered densely, so `meta.count` is always the number of
    /// windows actually produced. A trace with fewer than two jobs, or a
    /// policy resolving to a single window, yields one window covering
    /// the whole trace.
    pub fn shard(&self, policy: ShardPolicy) -> Vec<TraceWindow> {
        let jobs = self.trace().jobs();
        let chunks: Vec<Vec<eva_types::JobSpec>> = match policy {
            ShardPolicy::Windows(n) if n >= 2 && jobs.len() >= 2 => {
                let first = jobs[0].arrival;
                let last = jobs[jobs.len() - 1].arrival;
                let span = last.duration_since(first).as_millis();
                if span == 0 {
                    // Burst trace: every arrival is equal, so time windows
                    // degenerate to one bucket. Fall back to job-count
                    // chunking so `Windows(n)` still bounds per-cell
                    // memory.
                    let m = jobs.len().div_ceil(n);
                    jobs.chunks(m).map(|c| c.to_vec()).collect()
                } else {
                    let mut buckets: Vec<Vec<eva_types::JobSpec>> = vec![Vec::new(); n];
                    for job in jobs {
                        let offset = job.arrival.duration_since(first).as_millis();
                        // Last window is closed on the right so the final
                        // arrival lands inside it.
                        let k = (((offset as u128 * n as u128) / (span as u128 + 1)) as usize)
                            .min(n - 1);
                        buckets[k].push(job.clone());
                    }
                    buckets
                }
            }
            ShardPolicy::MaxJobs(m) if m >= 1 && jobs.len() > m => {
                jobs.chunks(m).map(|c| c.to_vec()).collect()
            }
            ShardPolicy::Auto {
                target_jobs,
                max_windows,
            } => ShardPlanner::new(target_jobs, max_windows)
                .plan(jobs)
                .into_iter()
                .map(|r| jobs[r].to_vec())
                .collect(),
            _ => vec![jobs.to_vec()],
        };
        let mut windows: Vec<Vec<eva_types::JobSpec>> =
            chunks.into_iter().filter(|c| !c.is_empty()).collect();
        if windows.is_empty() {
            windows.push(Vec::new()); // empty trace → one empty window
        }
        let count = windows.len();
        let whole_first = jobs.first().map(|j| j.arrival).unwrap_or(SimTime::ZERO);
        // Right boundary of window k = window k+1's first arrival: the
        // moment the next cell's simulation starts. A job whose estimated
        // execution (`arrival + duration_at_full_tput`) crosses that edge
        // straddles the boundary, and the partition is no longer clean.
        let edges: Vec<Option<SimTime>> = windows
            .iter()
            .skip(1)
            .map(|w| w.first().map(|j| j.arrival))
            .chain(std::iter::once(None))
            .collect();
        windows
            .into_iter()
            .zip(edges)
            .enumerate()
            .map(|(index, (chunk, edge))| {
                let first = chunk.first().map(|j| j.arrival).unwrap_or(whole_first);
                // One pass over the chunk for every derived statistic, so
                // sharding a million-job trace never rescans a window.
                let mut tasks = 0usize;
                let mut straddlers = 0usize;
                for j in &chunk {
                    tasks += j.num_tasks();
                    if let Some(edge) = edge {
                        if j.arrival + j.duration_at_full_tput > edge {
                            straddlers += 1;
                        }
                    }
                }
                let jobs = chunk.len();
                TraceWindow {
                    handle: TraceHandle::new(Trace::new(chunk)),
                    meta: ShardMeta {
                        index,
                        count,
                        offset: first.duration_since(whole_first),
                        end: edge.map(|e| e.duration_since(whole_first)),
                        jobs,
                        tasks,
                        straddlers,
                        weight: (jobs + tasks) as u64,
                    },
                }
            })
            .collect()
    }
}

impl Deref for TraceHandle {
    type Target = Trace;

    fn deref(&self) -> &Trace {
        self.trace()
    }
}

impl From<Trace> for TraceHandle {
    fn from(trace: Trace) -> Self {
        TraceHandle::new(trace)
    }
}

impl From<&Trace> for TraceHandle {
    fn from(trace: &Trace) -> Self {
        TraceHandle::new(trace.clone())
    }
}

impl PartialEq for TraceHandle {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner) || self.trace() == other.trace()
    }
}

/// How [`TraceHandle::shard`] splits the arrival axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPolicy {
    /// Split the arrival span into this many equal-width time windows
    /// (falls back to job-count chunks when every arrival is equal).
    Windows(usize),
    /// Consecutive windows of at most this many jobs each.
    MaxJobs(usize),
    /// Density-aware planning via [`ShardPlanner`]: windows target
    /// `target_jobs` jobs each, cut preferentially at drained boundaries
    /// (every earlier job's estimated execution ends before the next
    /// window's first arrival), and never exceed `max_windows`.
    Auto {
        /// Per-window job budget (the per-cell memory bound).
        target_jobs: usize,
        /// Upper bound on planned windows.
        max_windows: usize,
    },
}

impl ShardPolicy {
    /// The default density-aware policy
    /// ([`DEFAULT_AUTO_TARGET_JOBS`] jobs per window, at most
    /// [`DEFAULT_AUTO_MAX_WINDOWS`] windows).
    pub fn auto() -> Self {
        ShardPolicy::Auto {
            target_jobs: DEFAULT_AUTO_TARGET_JOBS,
            max_windows: DEFAULT_AUTO_MAX_WINDOWS,
        }
    }

    /// The density-aware policy with an explicit per-window job budget.
    pub fn auto_with_budget(target_jobs: usize) -> Self {
        ShardPolicy::Auto {
            target_jobs: target_jobs.max(1),
            max_windows: DEFAULT_AUTO_MAX_WINDOWS,
        }
    }

    /// Parses the CLI form shared by `eva sweep --shard` and the `exp_*`
    /// binaries: a window count (`"4"`), `"auto"`, or `"auto:JOBS"` (a
    /// per-window job budget). Window counts below 2 are rejected —
    /// they would silently run unsharded, which callers should request
    /// by omitting the flag instead.
    pub fn parse(s: &str) -> Result<ShardPolicy, String> {
        if s == "auto" {
            return Ok(ShardPolicy::auto());
        }
        if let Some(budget) = s.strip_prefix("auto:") {
            let target: usize = budget
                .parse()
                .map_err(|_| format!("`{s}`: the auto budget must be a job count"))?;
            if target == 0 {
                return Err(format!("`{s}`: the auto budget must be at least 1 job"));
            }
            return Ok(ShardPolicy::auto_with_budget(target));
        }
        let n: usize = s
            .parse()
            .map_err(|_| format!("`{s}`: expected a window count >= 2, `auto`, or `auto:JOBS`"))?;
        if n < 2 {
            return Err(format!(
                "{n} window(s) is an unsharded run — omit the flag, or pass >= 2 or `auto[:JOBS]`"
            ));
        }
        Ok(ShardPolicy::Windows(n))
    }
}

/// One arrival-time window of a sharded trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceWindow {
    /// The window's jobs as an independent shared trace.
    pub handle: TraceHandle,
    /// Where the window sits inside the whole trace.
    pub meta: ShardMeta,
}

/// Position and weight metadata of one shard window, carried through
/// sweep-cell keys so shard reports can be spliced back together.
#[derive(Debug, Clone)]
pub struct ShardMeta {
    /// Zero-based window index.
    pub index: usize,
    /// Total windows the trace was split into.
    pub count: usize,
    /// Window first arrival relative to the whole trace's first arrival
    /// (the time shift applied when splicing makespans).
    pub offset: SimDuration,
    /// Right edge of the window's boundary interval — the next window's
    /// first arrival, relative to the whole trace's first arrival.
    /// `None` for the last window, which is unbounded on the right.
    pub end: Option<SimDuration>,
    /// Jobs in the window.
    pub jobs: usize,
    /// Tasks in the window (the weight for per-task rate metrics).
    pub tasks: usize,
    /// Jobs whose estimated execution (`arrival + duration_at_full_tput`)
    /// crosses the right edge. Non-zero means the partition is **dirty**:
    /// the whole-trace run would still be executing these jobs when the
    /// next window begins, so spliced integer metrics are no longer
    /// guaranteed exact (see `eva_sim`'s partition audit).
    pub straddlers: usize,
    /// Cached relative simulation cost of the window (`jobs + tasks`),
    /// computed in [`TraceHandle::shard`]'s single pass so longest-first
    /// cell planning never rescans a window's job vector. A derived
    /// cache, not content: excluded from serialization (cell keys, the
    /// report cache, and golden JSON are byte-unchanged) and from
    /// equality (a deserialized meta compares equal at `weight == 0`).
    pub weight: u64,
}

impl PartialEq for ShardMeta {
    fn eq(&self, other: &Self) -> bool {
        self.index == other.index
            && self.count == other.count
            && self.offset == other.offset
            && self.end == other.end
            && self.jobs == other.jobs
            && self.tasks == other.tasks
            && self.straddlers == other.straddlers
    }
}

// Hand-written (the vendored derive has no `#[serde(skip)]`): identical
// to the derived impls for every field except `weight`, which is a
// derived cache and stays out of the serialized form entirely.
impl Serialize for ShardMeta {
    fn serialize(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("index".to_string(), self.index.serialize()),
            ("count".to_string(), self.count.serialize()),
            ("offset".to_string(), self.offset.serialize()),
            ("end".to_string(), self.end.serialize()),
            ("jobs".to_string(), self.jobs.serialize()),
            ("tasks".to_string(), self.tasks.serialize()),
            ("straddlers".to_string(), self.straddlers.serialize()),
        ])
    }
}

impl Deserialize for ShardMeta {
    fn deserialize(value: &serde::Value) -> Result<Self, serde::Error> {
        if value.as_object().is_none() {
            return Err(serde::Error::invalid_type("object", value));
        }
        let field = |name: &'static str| {
            value
                .get_field(name)
                .ok_or_else(|| serde::Error::missing_field(name))
        };
        Ok(ShardMeta {
            index: Deserialize::deserialize(field("index")?)?,
            count: Deserialize::deserialize(field("count")?)?,
            offset: Deserialize::deserialize(field("offset")?)?,
            end: Deserialize::deserialize(field("end")?)?,
            jobs: Deserialize::deserialize(field("jobs")?)?,
            tasks: Deserialize::deserialize(field("tasks")?)?,
            straddlers: Deserialize::deserialize(field("straddlers")?)?,
            weight: 0,
        })
    }
}

impl ShardMeta {
    /// `"i/n"` label used in cell keys and printed rows (1-based).
    pub fn label(&self) -> String {
        format!("{}/{}", self.index + 1, self.count)
    }

    /// One-line summary of a shard plan — the window set a grid or CLI
    /// actually produced — shared by every surface that prints a
    /// `shard plan:` line. An empty slice means the policy resolved to a
    /// single window (the trace runs unsharded).
    pub fn plan_summary(metas: &[&ShardMeta]) -> String {
        if metas.is_empty() {
            return "1 window — trace fits the policy's budget, running unsharded".to_string();
        }
        let min = metas.iter().map(|m| m.jobs).min().unwrap_or(0);
        let max = metas.iter().map(|m| m.jobs).max().unwrap_or(0);
        let straddlers: usize = metas.iter().map(|m| m.straddlers).sum();
        format!(
            "{} windows (jobs/window {min}\u{2013}{max}, {straddlers} boundary straddler(s))",
            metas.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticTraceConfig;
    use eva_types::{
        DemandSpec, JobId, JobSpec, ResourceVector, TaskId, TaskSpec, WorkloadKind,
    };

    fn job(id: u64, arrival_mins: u64) -> JobSpec {
        JobSpec {
            id: JobId(id),
            arrival: SimTime::from_secs(arrival_mins * 60),
            tasks: vec![TaskSpec {
                id: TaskId::new(JobId(id), 0),
                workload: WorkloadKind(0),
                demand: DemandSpec::uniform(ResourceVector::new(1, 4, 1024)),
                checkpoint_delay: SimDuration::from_secs(2),
                launch_delay: SimDuration::from_secs(10),
            }],
            duration_at_full_tput: SimDuration::from_mins(30),
            gang_coupled: false,
        }
    }

    fn spread_trace() -> Trace {
        // Three arrival clusters: 0–10 min, 100–110 min, 200–210 min.
        let mut jobs = Vec::new();
        for k in 0..3u64 {
            for i in 0..4u64 {
                jobs.push(job(k * 10 + i, k * 100 + i * 3));
            }
        }
        Trace::new(jobs)
    }

    #[test]
    fn handle_clone_shares_storage_and_fingerprint() {
        let h = TraceHandle::new(spread_trace());
        let alias = h.clone();
        assert!(Arc::ptr_eq(&h.inner, &alias.inner));
        assert_eq!(h.fingerprint(), alias.fingerprint());
        assert_eq!(h.fingerprint_hex().len(), 16);
    }

    #[test]
    fn fingerprint_depends_on_content_not_construction() {
        let a = TraceHandle::new(spread_trace());
        let b = TraceHandle::new(spread_trace());
        assert_eq!(a.fingerprint(), b.fingerprint(), "same content, same hash");

        let mut jobs = spread_trace().into_jobs();
        jobs[0].duration_at_full_tput = SimDuration::from_mins(31);
        let mutated = TraceHandle::new(Trace::new(jobs));
        assert_ne!(a.fingerprint(), mutated.fingerprint());
    }

    #[test]
    fn windows_partition_jobs_by_arrival() {
        let h = TraceHandle::new(spread_trace());
        let windows = h.shard(ShardPolicy::Windows(3));
        assert_eq!(windows.len(), 3);
        let total: usize = windows.iter().map(|w| w.handle.len()).sum();
        assert_eq!(total, 12);
        for (k, w) in windows.iter().enumerate() {
            assert_eq!(w.meta.index, k);
            assert_eq!(w.meta.count, 3);
            assert_eq!(w.meta.jobs, w.handle.len());
            assert_eq!(w.meta.tasks, 4);
            assert_eq!(w.meta.weight, (w.meta.jobs + w.meta.tasks) as u64);
            assert_eq!(w.meta.label(), format!("{}/3", k + 1));
        }
        // Arrival order is preserved across the window boundary.
        assert_eq!(windows[0].handle.jobs()[0].id, JobId(0));
        assert_eq!(windows[2].handle.jobs()[0].id, JobId(20));
        // Offsets are the window-relative first arrivals.
        assert_eq!(windows[0].meta.offset, SimDuration::ZERO);
        assert_eq!(windows[1].meta.offset, SimDuration::from_mins(100));
        assert_eq!(windows[2].meta.offset, SimDuration::from_mins(200));
        // Boundary intervals: each window ends where the next begins;
        // the last is unbounded. 30-min jobs drain long before the
        // ~90-min inter-cluster gaps, so the partition is clean.
        assert_eq!(windows[0].meta.end, Some(SimDuration::from_mins(100)));
        assert_eq!(windows[1].meta.end, Some(SimDuration::from_mins(200)));
        assert_eq!(windows[2].meta.end, None);
        assert!(windows.iter().all(|w| w.meta.straddlers == 0));
    }

    #[test]
    fn burst_traces_fall_back_to_job_count_chunking() {
        // Regression: all arrivals equal → span == 0 put every job in
        // bucket 0, so `Windows(n)` degenerated to a single window and
        // `--shard N` no longer bounded per-cell memory.
        let t = Trace::new((0..12).map(|i| job(i, 5)).collect());
        let windows = TraceHandle::new(t).shard(ShardPolicy::Windows(4));
        assert_eq!(windows.len(), 4);
        for w in &windows {
            assert_eq!(w.meta.jobs, 3);
            assert_eq!(w.meta.count, 4);
        }
        // Every job straddles a zero-width boundary: 30-min jobs cross an
        // edge that arrives immediately.
        assert!(windows[0].meta.straddlers > 0);
    }

    #[test]
    fn straddlers_count_jobs_crossing_the_right_edge() {
        // Clusters 100 min apart, but one job in the first cluster runs
        // 500 minutes — past the second window's first arrival.
        let mut jobs: Vec<JobSpec> = spread_trace().into_jobs();
        jobs[0].duration_at_full_tput = SimDuration::from_mins(500);
        let windows = TraceHandle::new(Trace::new(jobs)).shard(ShardPolicy::Windows(3));
        assert_eq!(windows.len(), 3);
        assert_eq!(windows[0].meta.straddlers, 1);
        assert_eq!(windows[1].meta.straddlers, 0);
        assert_eq!(windows[2].meta.straddlers, 0, "last window has no right edge");
    }

    #[test]
    fn auto_policy_cuts_in_arrival_gaps() {
        // spread_trace's clusters are ~90 min apart with 30-min jobs:
        // auto planning with a 4-job budget must cut exactly at the
        // cluster boundaries, cleanly.
        let h = TraceHandle::new(spread_trace());
        let windows = h.shard(ShardPolicy::auto_with_budget(4));
        assert_eq!(windows.len(), 3);
        for (k, w) in windows.iter().enumerate() {
            assert_eq!(w.meta.jobs, 4);
            assert_eq!(w.meta.straddlers, 0, "auto cut through cluster {k}");
        }
        // The default budget is far larger than the trace: unsharded.
        assert_eq!(h.shard(ShardPolicy::auto()).len(), 1);
    }

    #[test]
    fn shard_policy_parses_cli_forms() {
        assert_eq!(ShardPolicy::parse("4"), Ok(ShardPolicy::Windows(4)));
        assert_eq!(ShardPolicy::parse("auto"), Ok(ShardPolicy::auto()));
        assert_eq!(
            ShardPolicy::parse("auto:50"),
            Ok(ShardPolicy::Auto {
                target_jobs: 50,
                max_windows: DEFAULT_AUTO_MAX_WINDOWS,
            })
        );
        // 0/1 windows silently ran unsharded before — now rejected.
        assert!(ShardPolicy::parse("0").is_err());
        assert!(ShardPolicy::parse("1").is_err());
        assert!(ShardPolicy::parse("auto:0").is_err());
        assert!(ShardPolicy::parse("auto:x").is_err());
        assert!(ShardPolicy::parse("many").is_err());
    }

    #[test]
    fn empty_windows_are_dropped_and_renumbered() {
        // All arrivals in the first tenth of the span → most windows empty.
        let t = Trace::new(vec![job(0, 0), job(1, 1), job(2, 2), job(3, 300)]);
        let windows = TraceHandle::new(t).shard(ShardPolicy::Windows(10));
        assert!(windows.len() < 10);
        let count = windows[0].meta.count;
        assert_eq!(count, windows.len());
        for (k, w) in windows.iter().enumerate() {
            assert_eq!(w.meta.index, k);
            assert!(!w.handle.is_empty());
        }
    }

    #[test]
    fn max_jobs_policy_chunks_consecutively() {
        let h = TraceHandle::new(spread_trace());
        let windows = h.shard(ShardPolicy::MaxJobs(5));
        assert_eq!(windows.len(), 3);
        assert_eq!(windows[0].meta.jobs, 5);
        assert_eq!(windows[1].meta.jobs, 5);
        assert_eq!(windows[2].meta.jobs, 2);
    }

    #[test]
    fn degenerate_shards_collapse_to_one_window() {
        let h = TraceHandle::new(spread_trace());
        for policy in [ShardPolicy::Windows(0), ShardPolicy::Windows(1)] {
            let windows = h.shard(policy);
            assert_eq!(windows.len(), 1);
            assert_eq!(windows[0].meta.count, 1);
            assert_eq!(windows[0].handle.len(), 12);
            assert_eq!(windows[0].meta.offset, SimDuration::ZERO);
        }
        let tiny = TraceHandle::new(Trace::new(vec![job(0, 5)]));
        assert_eq!(tiny.shard(ShardPolicy::Windows(4)).len(), 1);
        let empty = TraceHandle::new(Trace::new(vec![]));
        let w = empty.shard(ShardPolicy::Windows(4));
        assert_eq!(w.len(), 1);
        assert!(w[0].handle.is_empty());
    }

    #[test]
    fn sharded_then_recombined_preserves_every_job() {
        let cfg = SyntheticTraceConfig::small_scale();
        let h = TraceHandle::new(cfg.generate(9));
        let windows = h.shard(ShardPolicy::Windows(4));
        let mut recombined: Vec<JobSpec> = Vec::new();
        for w in &windows {
            recombined.extend(w.handle.jobs().iter().cloned());
        }
        assert_eq!(Trace::new(recombined), *h.trace());
    }

    #[test]
    fn shard_meta_serde_round_trip() {
        let meta = ShardMeta {
            index: 1,
            count: 4,
            offset: SimDuration::from_mins(90),
            end: Some(SimDuration::from_mins(180)),
            jobs: 7,
            tasks: 9,
            straddlers: 2,
            weight: 16,
        };
        let json = serde_json::to_string(&meta).unwrap();
        // The cached weight is derived, not content: it never reaches
        // serialized cell keys or the report cache.
        assert!(!json.contains("weight"), "{json}");
        let back: ShardMeta = serde_json::from_str(&json).unwrap();
        assert_eq!(meta, back, "equality ignores the skipped cache field");
        assert_eq!(back.weight, 0);
    }
}
