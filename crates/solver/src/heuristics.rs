//! Classic VSBPP heuristics: first-fit decreasing and best-fit decreasing.
//!
//! Both order items by descending reservation price (the paper's notion of
//! "size" in multi-dimensional space) and place each into an already-open
//! bin when possible, opening the item's reservation-price type otherwise.
//! They serve as warm starts and cross-checks for the exact solver.

use eva_types::ResourceVector;

use crate::problem::{PackingProblem, Solution};

struct OpenBin {
    type_idx: usize,
    used: ResourceVector,
    items: Vec<usize>,
}

/// Shared machinery: order items by descending reservation price, place by
/// `pick` (which selects among fitting open bins), open the cheapest
/// fitting type when no open bin fits.
fn pack_decreasing(
    problem: &PackingProblem,
    pick: impl Fn(&[(usize, &OpenBin)]) -> Option<usize>,
) -> Solution {
    let catalog = &problem.catalog;
    let types: Vec<_> = catalog.types().collect();

    // Sort item indices by descending reservation price.
    let mut order: Vec<usize> = (0..problem.items.len()).collect();
    let rp = |i: usize| {
        catalog
            .cheapest_fit(&problem.items[i].demand)
            .map(|t| t.hourly_cost.as_dollars())
    };
    order.sort_by(|a, b| {
        let ra = rp(*a).unwrap_or(-1.0);
        let rb = rp(*b).unwrap_or(-1.0);
        rb.partial_cmp(&ra).unwrap().then(a.cmp(b))
    });

    let mut bins: Vec<OpenBin> = Vec::new();
    let mut unplaced = Vec::new();
    for idx in order {
        let item = &problem.items[idx];
        // Candidate open bins that fit.
        let fitting: Vec<(usize, &OpenBin)> = bins
            .iter()
            .enumerate()
            .filter(|(_, b)| {
                let ty = types[b.type_idx];
                b.used
                    .checked_add(&ty.demand_of(&item.demand))
                    .map(|u| u.fits_within(&ty.capacity))
                    .unwrap_or(false)
            })
            .collect();
        if let Some(bin_idx) = pick(&fitting) {
            let ty = types[bins[bin_idx].type_idx];
            let add = ty.demand_of(&item.demand);
            bins[bin_idx].used = bins[bin_idx].used.checked_add(&add).unwrap();
            bins[bin_idx].items.push(item.id);
            continue;
        }
        // Open the reservation-price type.
        match catalog.cheapest_fit(&item.demand) {
            Some(ty) => {
                let type_idx = types.iter().position(|t| t.id == ty.id).unwrap();
                bins.push(OpenBin {
                    type_idx,
                    used: ty.demand_of(&item.demand),
                    items: vec![item.id],
                });
            }
            None => unplaced.push(item.id),
        }
    }

    let cost_dollars = bins
        .iter()
        .map(|b| types[b.type_idx].hourly_cost.as_dollars())
        .sum();
    Solution {
        bins: bins
            .into_iter()
            .map(|b| (types[b.type_idx].id, b.items))
            .collect(),
        cost_dollars,
        proven_optimal: false,
        unplaced,
        nodes_explored: 0,
    }
}

/// First-fit decreasing: each item goes to the first open bin that fits.
pub fn first_fit_decreasing(problem: &PackingProblem) -> Solution {
    pack_decreasing(problem, |fitting| fitting.first().map(|(i, _)| *i))
}

/// Best-fit decreasing: each item goes to the open bin whose remaining
/// capacity (scalarized by the bin type's cost density) is tightest.
pub fn best_fit_decreasing(problem: &PackingProblem) -> Solution {
    pack_decreasing(problem, |fitting| {
        fitting
            .iter()
            .min_by(|(_, a), (_, b)| {
                let slack = |bin: &OpenBin| {
                    // Fewer free "slots" = tighter fit; compare by summed
                    // normalized free capacity.
                    let used = bin.used;
                    (used.gpu as f64) + (used.cpu as f64) / 64.0 + (used.ram_mb as f64) / 1e6
                };
                // Larger used = tighter.
                slack(b).partial_cmp(&slack(a)).unwrap()
            })
            .map(|(i, _)| *i)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Item;
    use eva_cloud::Catalog;
    use eva_types::DemandSpec;

    fn item(id: usize, gpu: u32, cpu: u32, ram_gb: u64) -> Item {
        Item {
            id,
            demand: DemandSpec::uniform(ResourceVector::with_ram_gb(gpu, cpu, ram_gb)),
        }
    }

    fn table3_problem() -> PackingProblem {
        PackingProblem::new(
            vec![
                item(0, 2, 8, 24),
                item(1, 1, 4, 10),
                item(2, 0, 6, 20),
                item(3, 0, 4, 12),
            ],
            Catalog::table3_example(),
        )
    }

    #[test]
    fn ffd_produces_valid_solution() {
        let p = table3_problem();
        let s = first_fit_decreasing(&p);
        s.validate(&p).unwrap();
        assert!(s.unplaced.is_empty());
        // FFD matches the paper's walkthrough: it1 + it3 = $12.80.
        assert!(
            (s.cost_dollars - 12.8).abs() < 1e-9,
            "cost {}",
            s.cost_dollars
        );
    }

    #[test]
    fn bfd_produces_valid_solution() {
        let p = table3_problem();
        let s = best_fit_decreasing(&p);
        s.validate(&p).unwrap();
        assert!(s.cost_dollars <= p.no_packing_cost().unwrap() + 1e-9);
    }

    #[test]
    fn heuristics_never_beat_lower_bound() {
        let p = table3_problem();
        let lb = p.lower_bound();
        assert!(first_fit_decreasing(&p).cost_dollars + 1e-9 >= lb);
        assert!(best_fit_decreasing(&p).cost_dollars + 1e-9 >= lb);
    }

    #[test]
    fn infeasible_items_are_reported() {
        let p = PackingProblem::new(
            vec![item(0, 99, 1, 1), item(1, 0, 4, 12)],
            Catalog::table3_example(),
        );
        let s = first_fit_decreasing(&p);
        s.validate(&p).unwrap();
        assert_eq!(s.unplaced, vec![0]);
    }

    #[test]
    fn empty_problem() {
        let p = PackingProblem::new(vec![], Catalog::table3_example());
        let s = first_fit_decreasing(&p);
        assert_eq!(s.cost_dollars, 0.0);
        assert!(s.bins.is_empty());
    }

    #[test]
    fn ffd_on_aws_catalog_with_many_items() {
        let catalog = Catalog::aws_eval_2025();
        let items: Vec<Item> = (0..60)
            .map(|i| match i % 3 {
                0 => item(i, 1, 4, 24),
                1 => item(i, 0, 4, 8),
                _ => item(i, 0, 2, 16),
            })
            .collect();
        let p = PackingProblem::new(items, catalog);
        let s = first_fit_decreasing(&p);
        s.validate(&p).unwrap();
        assert!(s.cost_dollars < p.no_packing_cost().unwrap());
    }
}
