//! Anytime branch-and-bound for the provisioning ILP.
//!
//! Items are branched in descending reservation-price order; each node
//! assigns the next item either to an open bin with room or to a fresh bin
//! of each feasible type (one fresh bin per type — opening two identical
//! empty bins is symmetric). Subtrees are pruned when
//! `committed cost + resource-pricing lower bound ≥ incumbent`. A time
//! limit makes the solver anytime: on expiry it returns the best incumbent
//! with `proven_optimal = false`, reproducing the paper's "Gurobi timed out
//! at 30 minutes, report the best solution found" behaviour (Table 4).

use std::time::{Duration, Instant};

use eva_types::ResourceVector;

use crate::heuristics::first_fit_decreasing;
use crate::problem::{component, PackingProblem, Solution};

/// Branch-and-bound configuration.
#[derive(Debug, Clone, Copy)]
pub struct BnbConfig {
    /// Wall-clock budget.
    pub time_limit: Duration,
    /// Hard cap on explored nodes (safety valve for tests).
    pub max_nodes: u64,
    /// Warm-start from first-fit decreasing.
    pub warm_start: bool,
}

impl Default for BnbConfig {
    fn default() -> Self {
        BnbConfig {
            time_limit: Duration::from_secs(10),
            max_nodes: 50_000_000,
            warm_start: true,
        }
    }
}

struct SearchState<'a> {
    problem: &'a PackingProblem,
    order: Vec<usize>,
    /// Per ordered item, per resource: minimal family demand (for bounds).
    min_demands: Vec<[u64; 3]>,
    /// Cheapest unit price per resource.
    unit_prices: [f64; 3],
    deadline: Instant,
    cfg: BnbConfig,
    nodes: u64,
    timed_out: bool,
    best_cost: f64,
    best_bins: Vec<(usize, Vec<usize>)>,
    open: Vec<OpenBin>,
}

#[derive(Clone)]
struct OpenBin {
    type_idx: usize,
    used: ResourceVector,
    items: Vec<usize>,
}

/// Solves the problem exactly (up to the time/node budget).
///
/// # Examples
///
/// ```
/// use eva_cloud::Catalog;
/// use eva_solver::{branch_and_bound, BnbConfig, Item, PackingProblem};
/// use eva_types::{DemandSpec, ResourceVector};
///
/// let items = vec![
///     Item { id: 0, demand: DemandSpec::uniform(ResourceVector::with_ram_gb(2, 8, 24)) },
///     Item { id: 1, demand: DemandSpec::uniform(ResourceVector::with_ram_gb(1, 4, 10)) },
///     Item { id: 2, demand: DemandSpec::uniform(ResourceVector::with_ram_gb(0, 6, 20)) },
///     Item { id: 3, demand: DemandSpec::uniform(ResourceVector::with_ram_gb(0, 4, 12)) },
/// ];
/// let problem = PackingProblem::new(items, Catalog::table3_example());
/// let solution = branch_and_bound(&problem, BnbConfig::default());
/// assert!(solution.proven_optimal);
/// assert!((solution.cost_dollars - 12.8).abs() < 1e-9);
/// ```
pub fn branch_and_bound(problem: &PackingProblem, cfg: BnbConfig) -> Solution {
    let catalog = &problem.catalog;
    let types: Vec<_> = catalog.types().collect();

    // Separate feasible items from hopeless ones.
    let mut feasible: Vec<usize> = Vec::new();
    let mut unplaced: Vec<usize> = Vec::new();
    for (idx, item) in problem.items.iter().enumerate() {
        if catalog.cheapest_fit(&item.demand).is_some() {
            feasible.push(idx);
        } else {
            unplaced.push(problem.items[idx].id);
        }
    }

    // Order by descending reservation price (big items first prunes fast).
    feasible.sort_by(|a, b| {
        let rp = |i: usize| {
            catalog
                .cheapest_fit(&problem.items[i].demand)
                .map(|t| t.hourly_cost.as_dollars())
                .unwrap_or(0.0)
        };
        rp(*b).partial_cmp(&rp(*a)).unwrap().then(a.cmp(b))
    });

    let min_demands: Vec<[u64; 3]> = feasible
        .iter()
        .map(|i| {
            let item = &problem.items[*i];
            let mut m = [u64::MAX; 3];
            for t in catalog.types() {
                let d = t.demand_of(&item.demand);
                for (r, slot) in m.iter_mut().enumerate() {
                    *slot = (*slot).min(component(&d, r));
                }
            }
            for v in &mut m {
                if *v == u64::MAX {
                    *v = 0;
                }
            }
            m
        })
        .collect();

    let mut unit_prices = [f64::INFINITY; 3];
    for t in catalog.types() {
        for (r, price) in unit_prices.iter_mut().enumerate() {
            let q = component(&t.capacity, r);
            if q > 0 {
                *price = price.min(t.hourly_cost.as_dollars() / q as f64);
            }
        }
    }

    // Warm start.
    let (mut best_cost, mut best_bins) = if cfg.warm_start {
        let ffd = first_fit_decreasing(problem);
        let bins = ffd
            .bins
            .iter()
            .map(|(ty, items)| {
                (
                    types.iter().position(|t| t.id == *ty).unwrap(),
                    items.clone(),
                )
            })
            .collect();
        (ffd.cost_dollars, bins)
    } else {
        (f64::INFINITY, Vec::new())
    };
    // A safe fallback if warm start is off and the search times out early.
    if !cfg.warm_start {
        best_bins.clear();
        best_cost = f64::INFINITY;
    }

    let mut state = SearchState {
        problem,
        order: feasible,
        min_demands,
        unit_prices,
        deadline: Instant::now() + cfg.time_limit,
        cfg,
        nodes: 0,
        timed_out: false,
        best_cost,
        best_bins,
        open: Vec::new(),
    };
    dfs(&mut state, 0, 0.0);

    let proven_optimal = !state.timed_out && state.nodes <= state.cfg.max_nodes;
    if !state.best_cost.is_finite() {
        // No incumbent at all (no warm start + instant timeout): fall back.
        let ffd = first_fit_decreasing(problem);
        return Solution {
            proven_optimal: false,
            nodes_explored: state.nodes,
            ..ffd
        };
    }
    Solution {
        bins: state
            .best_bins
            .iter()
            .map(|(type_idx, items)| (types[*type_idx].id, items.clone()))
            .collect(),
        cost_dollars: state.best_cost,
        proven_optimal,
        unplaced,
        nodes_explored: state.nodes,
    }
}

/// Lower bound on the *additional* cost of hosting items `order[depth..]`:
/// remaining demand beyond the free capacity already paid for in open bins
/// must be bought at no less than the cheapest per-unit price.
fn remaining_bound(state: &SearchState<'_>, depth: usize) -> f64 {
    let types: Vec<_> = state.problem.catalog.types().collect();
    let mut free = [0u64; 3];
    for bin in &state.open {
        let cap = types[bin.type_idx].capacity;
        let spare = cap.saturating_sub(&bin.used);
        for (r, slot) in free.iter_mut().enumerate() {
            *slot += component(&spare, r);
        }
    }
    let mut best = 0.0f64;
    for (r, free_r) in free.iter().enumerate() {
        if !state.unit_prices[r].is_finite() {
            continue;
        }
        let demand: u64 = (depth..state.order.len())
            .map(|i| state.min_demands[i][r])
            .sum();
        let uncovered = demand.saturating_sub(*free_r);
        best = best.max(state.unit_prices[r] * uncovered as f64);
    }
    best
}

fn dfs(state: &mut SearchState<'_>, depth: usize, committed: f64) {
    state.nodes += 1;
    if state.nodes > state.cfg.max_nodes {
        state.timed_out = true;
        return;
    }
    // Check the clock periodically (Instant::now is not free).
    if state.nodes.is_multiple_of(1024) && Instant::now() >= state.deadline {
        state.timed_out = true;
        return;
    }
    if state.timed_out {
        return;
    }
    if depth == state.order.len() {
        if committed < state.best_cost - 1e-9 {
            state.best_cost = committed;
            state.best_bins = state
                .open
                .iter()
                .map(|b| (b.type_idx, b.items.clone()))
                .collect();
        }
        return;
    }
    if committed + remaining_bound(state, depth) >= state.best_cost - 1e-9 {
        return;
    }

    let item_idx = state.order[depth];
    let item = state.problem.items[item_idx].clone();
    let types: Vec<_> = state.problem.catalog.types().collect();

    // Branch 1: place into each open bin that fits (no new cost).
    let open_count = state.open.len();
    for bin_idx in 0..open_count {
        let type_idx = state.open[bin_idx].type_idx;
        let ty = types[type_idx];
        let add = ty.demand_of(&item.demand);
        let Some(total) = state.open[bin_idx].used.checked_add(&add) else {
            continue;
        };
        if !total.fits_within(&ty.capacity) {
            continue;
        }
        let saved_used = state.open[bin_idx].used;
        state.open[bin_idx].used = total;
        state.open[bin_idx].items.push(item.id);
        dfs(state, depth + 1, committed);
        state.open[bin_idx].items.pop();
        state.open[bin_idx].used = saved_used;
        if state.timed_out {
            return;
        }
    }

    // Branch 2: open a new bin of each feasible type (cheapest first).
    let mut type_order: Vec<usize> = (0..types.len()).collect();
    type_order.sort_by(|a, b| types[*a].hourly_cost.cmp(&types[*b].hourly_cost));
    for type_idx in type_order {
        let ty = types[type_idx];
        if ty.hourly_cost.is_zero() {
            continue; // Ghost types host nothing real.
        }
        let demand = ty.demand_of(&item.demand);
        if !demand.fits_within(&ty.capacity) {
            continue;
        }
        // Symmetry: an existing *empty* bin of this type already covers it.
        if state
            .open
            .iter()
            .any(|b| b.type_idx == type_idx && b.items.is_empty())
        {
            continue;
        }
        let cost = committed + ty.hourly_cost.as_dollars();
        state.open.push(OpenBin {
            type_idx,
            used: demand,
            items: vec![item.id],
        });
        // Prune with the new bin's spare capacity counted as free.
        if cost + remaining_bound(state, depth + 1) < state.best_cost - 1e-9 {
            dfs(state, depth + 1, cost);
        }
        state.open.pop();
        if state.timed_out {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Item;
    use eva_cloud::Catalog;
    use eva_types::DemandSpec;

    fn item(id: usize, gpu: u32, cpu: u32, ram_gb: u64) -> Item {
        Item {
            id,
            demand: DemandSpec::uniform(ResourceVector::with_ram_gb(gpu, cpu, ram_gb)),
        }
    }

    #[test]
    fn solves_table3_to_proven_optimum() {
        let p = PackingProblem::new(
            vec![
                item(0, 2, 8, 24),
                item(1, 1, 4, 10),
                item(2, 0, 6, 20),
                item(3, 0, 4, 12),
            ],
            Catalog::table3_example(),
        );
        let s = branch_and_bound(&p, BnbConfig::default());
        s.validate(&p).unwrap();
        assert!(s.proven_optimal);
        assert!((s.cost_dollars - 12.8).abs() < 1e-9);
    }

    #[test]
    fn optimum_never_worse_than_heuristics() {
        let catalog = Catalog::aws_eval_2025();
        let items: Vec<Item> = (0..12)
            .map(|i| match i % 4 {
                0 => item(i, 1, 4, 24),
                1 => item(i, 0, 4, 8),
                2 => item(i, 0, 2, 16),
                _ => item(i, 0, 6, 8),
            })
            .collect();
        let p = PackingProblem::new(items, catalog);
        let ffd = first_fit_decreasing(&p);
        let s = branch_and_bound(
            &p,
            BnbConfig {
                time_limit: Duration::from_secs(5),
                ..Default::default()
            },
        );
        s.validate(&p).unwrap();
        assert!(s.cost_dollars <= ffd.cost_dollars + 1e-9);
        assert!(s.cost_dollars + 1e-9 >= p.lower_bound());
    }

    #[test]
    fn exhausted_budget_returns_incumbent() {
        let catalog = Catalog::aws_eval_2025();
        let items: Vec<Item> = (0..40)
            .map(|i| item(i, (i % 2) as u32, 2 + (i % 6) as u32, (4 + i % 30) as u64))
            .collect();
        let p = PackingProblem::new(items, catalog);
        // A node cap below the item count cannot even reach one leaf, so
        // the warm-start incumbent must be returned unproven.
        let s = branch_and_bound(
            &p,
            BnbConfig {
                max_nodes: 30,
                time_limit: Duration::from_secs(60),
                warm_start: true,
            },
        );
        s.validate(&p).unwrap();
        assert!(!s.proven_optimal);
        assert!(s.cost_dollars.is_finite());
        let ffd = first_fit_decreasing(&p);
        assert!(s.cost_dollars <= ffd.cost_dollars + 1e-9);
    }

    #[test]
    fn node_cap_is_respected() {
        let catalog = Catalog::aws_eval_2025();
        // 3-vCPU items leave slack in every type, so FFD is not tight
        // against the lower bound and real search is required.
        let items: Vec<Item> = (0..30).map(|i| item(i, 0, 3, 4)).collect();
        let p = PackingProblem::new(items, catalog);
        let s = branch_and_bound(
            &p,
            BnbConfig {
                max_nodes: 10,
                time_limit: Duration::from_secs(30),
                warm_start: true,
            },
        );
        s.validate(&p).unwrap();
        assert!(!s.proven_optimal);
        assert!(s.nodes_explored <= 11);
    }

    #[test]
    fn single_item_lands_on_reservation_type() {
        let p = PackingProblem::new(vec![item(0, 1, 4, 24)], Catalog::aws_eval_2025());
        let s = branch_and_bound(&p, BnbConfig::default());
        assert!(s.proven_optimal);
        assert_eq!(s.bins.len(), 1);
        assert_eq!(p.catalog.get(s.bins[0].0).unwrap().name, "p3.2xlarge");
    }

    #[test]
    fn empty_problem_is_trivially_optimal() {
        let p = PackingProblem::new(vec![], Catalog::aws_eval_2025());
        let s = branch_and_bound(&p, BnbConfig::default());
        assert!(s.proven_optimal);
        assert_eq!(s.cost_dollars, 0.0);
    }

    #[test]
    fn infeasible_items_are_excluded_not_fatal() {
        let p = PackingProblem::new(
            vec![item(0, 99, 1, 1), item(1, 0, 4, 12)],
            Catalog::table3_example(),
        );
        let s = branch_and_bound(&p, BnbConfig::default());
        s.validate(&p).unwrap();
        assert_eq!(s.unplaced, vec![0]);
        assert!((s.cost_dollars - 0.4).abs() < 1e-9);
    }

    #[test]
    fn beats_ffd_on_adversarial_mix() {
        // FFD by reservation price can strand small CPU items; B&B finds
        // the tighter mix. Just assert B&B ≤ FFD and both valid.
        let catalog = Catalog::table3_example();
        let items = vec![
            item(0, 1, 4, 10),
            item(1, 1, 4, 10),
            item(2, 0, 8, 30),
            item(3, 0, 4, 12),
            item(4, 0, 4, 12),
        ];
        let p = PackingProblem::new(items, catalog);
        let ffd = first_fit_decreasing(&p);
        let s = branch_and_bound(
            &p,
            BnbConfig {
                time_limit: Duration::from_secs(10),
                ..Default::default()
            },
        );
        s.validate(&p).unwrap();
        assert!(s.cost_dollars <= ffd.cost_dollars + 1e-9);
    }
}
