//! Exact and heuristic solvers for the provisioning ILP (§4.1).
//!
//! The paper formulates cluster provisioning as an integer linear program —
//! pick an instance type for each (potential) instance and an instance for
//! each task, minimizing total hourly cost subject to capacity — and solves
//! it with Gurobi under a 30-minute limit as the optimal reference point of
//! Table 4. This crate provides a from-scratch replacement:
//!
//! * [`branch_and_bound`] — an anytime exact solver with a resource-pricing
//!   lower bound, symmetry pruning, and a configurable time limit. Warm-
//!   started with a heuristic incumbent it reproduces both Gurobi's
//!   near-optimal incumbents and its timeout behaviour.
//! * [`first_fit_decreasing`] / [`best_fit_decreasing`] — classic VSBPP
//!   heuristics used as sanity baselines and for cross-validation.
//!
//! The solvers operate on a plain [`PackingProblem`] so they are usable
//! outside the scheduler (and in property tests against each other).

pub mod bnb;
pub mod heuristics;
pub mod problem;

pub use bnb::{branch_and_bound, BnbConfig};
pub use heuristics::{best_fit_decreasing, first_fit_decreasing};
pub use problem::{Item, PackingProblem, Solution};
