//! The provisioning problem and solution representations.

use eva_cloud::Catalog;
use eva_types::{DemandSpec, InstanceTypeId, ResourceVector};

/// One task to pack (an "item" in bin-packing terms).
#[derive(Debug, Clone, PartialEq)]
pub struct Item {
    /// Caller-meaningful identifier (e.g. an index into a task list).
    pub id: usize,
    /// Resource demands, possibly per family.
    pub demand: DemandSpec,
}

/// A provisioning problem: items to host using unlimited copies of the
/// catalog's instance types at minimal total hourly cost.
#[derive(Debug, Clone)]
pub struct PackingProblem {
    /// The items.
    pub items: Vec<Item>,
    /// The available instance types.
    pub catalog: Catalog,
}

impl PackingProblem {
    /// Builds a problem.
    pub fn new(items: Vec<Item>, catalog: Catalog) -> Self {
        PackingProblem { items, catalog }
    }

    /// The no-packing cost: every item on its reservation-price instance.
    /// `None` if some item fits no type.
    pub fn no_packing_cost(&self) -> Option<f64> {
        let mut total = 0.0;
        for item in &self.items {
            total += self
                .catalog
                .cheapest_fit(&item.demand)?
                .hourly_cost
                .as_dollars();
        }
        Some(total)
    }

    /// A global lower bound on the optimal cost: for each resource `r`,
    /// no solution can pay less than (total demand of `r`) × (cheapest
    /// per-unit price of `r` across types). The bound uses each item's
    /// *minimum* per-family demand so it stays valid whichever family the
    /// optimum picks.
    pub fn lower_bound(&self) -> f64 {
        self.lower_bound_of(&(0..self.items.len()).collect::<Vec<_>>())
    }

    /// The same bound restricted to a subset of item indices.
    pub fn lower_bound_of(&self, indices: &[usize]) -> f64 {
        let mut best = 0.0f64;
        for r in 0..3 {
            let unit_price = self
                .catalog
                .types()
                .filter_map(|t| {
                    let q = component(&t.capacity, r);
                    if q == 0 {
                        None
                    } else {
                        Some(t.hourly_cost.as_dollars() / q as f64)
                    }
                })
                .fold(f64::INFINITY, f64::min);
            if !unit_price.is_finite() {
                continue;
            }
            let total_demand: u64 = indices
                .iter()
                .map(|i| min_family_demand(&self.items[*i], &self.catalog, r))
                .sum();
            best = best.max(unit_price * total_demand as f64);
        }
        best
    }
}

/// Extracts resource component `r` (0 = GPU, 1 = CPU, 2 = RAM).
pub(crate) fn component(v: &ResourceVector, r: usize) -> u64 {
    match r {
        0 => u64::from(v.gpu),
        1 => u64::from(v.cpu),
        _ => v.ram_mb,
    }
}

/// The minimum demand of resource `r` across the catalog's families — the
/// least the item can consume in any placement.
fn min_family_demand(item: &Item, catalog: &Catalog, r: usize) -> u64 {
    catalog
        .types()
        .map(|t| component(&t.demand_of(&item.demand), r))
        .min()
        .unwrap_or(component(&item.demand.default, r))
}

/// A provisioning solution.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Instances used: type plus assigned item ids.
    pub bins: Vec<(InstanceTypeId, Vec<usize>)>,
    /// Total hourly cost in dollars.
    pub cost_dollars: f64,
    /// Whether the solver proved this solution optimal.
    pub proven_optimal: bool,
    /// Item ids that could not be placed on any type.
    pub unplaced: Vec<usize>,
    /// Search nodes explored (0 for pure heuristics).
    pub nodes_explored: u64,
}

impl Solution {
    /// Validates the solution against the problem: every placed item
    /// appears exactly once and every bin respects its type's capacity.
    pub fn validate(&self, problem: &PackingProblem) -> Result<(), String> {
        let mut seen = std::collections::BTreeSet::new();
        for (ty_id, items) in &self.bins {
            let ty = problem
                .catalog
                .get(*ty_id)
                .ok_or_else(|| format!("unknown type {ty_id}"))?;
            let mut used = ResourceVector::ZERO;
            for id in items {
                if !seen.insert(*id) {
                    return Err(format!("item {id} placed twice"));
                }
                let item = problem
                    .items
                    .iter()
                    .find(|i| i.id == *id)
                    .ok_or_else(|| format!("unknown item {id}"))?;
                used += ty.demand_of(&item.demand);
            }
            if !used.fits_within(&ty.capacity) {
                return Err(format!(
                    "bin of {} overfull: {used} > {}",
                    ty.name, ty.capacity
                ));
            }
        }
        for item in &problem.items {
            let placed = seen.contains(&item.id);
            let unplaced = self.unplaced.contains(&item.id);
            if placed == unplaced {
                return Err(format!(
                    "item {} neither placed nor reported unplaced",
                    item.id
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(id: usize, gpu: u32, cpu: u32, ram_gb: u64) -> Item {
        Item {
            id,
            demand: DemandSpec::uniform(ResourceVector::with_ram_gb(gpu, cpu, ram_gb)),
        }
    }

    #[test]
    fn no_packing_cost_sums_reservation_prices() {
        let p = PackingProblem::new(
            vec![
                item(0, 2, 8, 24),
                item(1, 1, 4, 10),
                item(2, 0, 6, 20),
                item(3, 0, 4, 12),
            ],
            Catalog::table3_example(),
        );
        assert!((p.no_packing_cost().unwrap() - 16.2).abs() < 1e-9);
    }

    #[test]
    fn no_packing_cost_none_for_infeasible() {
        let p = PackingProblem::new(vec![item(0, 99, 4, 10)], Catalog::table3_example());
        assert!(p.no_packing_cost().is_none());
    }

    #[test]
    fn lower_bound_is_below_no_packing() {
        let p = PackingProblem::new(
            vec![
                item(0, 2, 8, 24),
                item(1, 1, 4, 10),
                item(2, 0, 6, 20),
                item(3, 0, 4, 12),
            ],
            Catalog::table3_example(),
        );
        let lb = p.lower_bound();
        assert!(lb > 0.0);
        assert!(lb <= p.no_packing_cost().unwrap() + 1e-9);
        // The known optimum is 12.8; the bound must not exceed it.
        assert!(lb <= 12.8 + 1e-9, "lb {lb}");
    }

    #[test]
    fn validate_catches_overfull_bins() {
        let catalog = Catalog::table3_example();
        let p = PackingProblem::new(vec![item(0, 1, 4, 10), item(1, 1, 4, 10)], catalog.clone());
        let it2 = catalog.by_name("it2").unwrap().id;
        let bad = Solution {
            bins: vec![(it2, vec![0, 1])], // it2 has only 1 GPU.
            cost_dollars: 3.0,
            proven_optimal: false,
            unplaced: vec![],
            nodes_explored: 0,
        };
        assert!(bad.validate(&p).is_err());
    }

    #[test]
    fn validate_catches_duplicates_and_omissions() {
        let catalog = Catalog::table3_example();
        let p = PackingProblem::new(vec![item(0, 0, 4, 12), item(1, 0, 4, 12)], catalog.clone());
        let it4 = catalog.by_name("it4").unwrap().id;
        let dup = Solution {
            bins: vec![(it4, vec![0]), (it4, vec![0])],
            cost_dollars: 0.8,
            proven_optimal: false,
            unplaced: vec![],
            nodes_explored: 0,
        };
        assert!(dup.validate(&p).is_err());
        let missing = Solution {
            bins: vec![(it4, vec![0])],
            cost_dollars: 0.4,
            proven_optimal: false,
            unplaced: vec![],
            nodes_explored: 0,
        };
        assert!(missing.validate(&p).is_err());
    }
}
