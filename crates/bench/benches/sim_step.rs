//! Criterion benchmarks for the simulator's event-loop hot path.
//!
//! * `cluster_sim/first_round` — build the world and step it through its
//!   first scheduling round (arrivals + one observe/plan/execute cycle):
//!   the per-round cost every sweep cell pays hundreds of times.
//! * `cluster_sim/run_to_completion` — a whole small-trace run, the unit
//!   the `SweepRunner` fans out across worker threads.
//! * `cluster_sim/build_100k` — world construction (arena interning of
//!   every job/task slot) for the 100,000-job stress tier: the fixed
//!   cost a huge cell pays before its first event.
//! * `cluster_sim/steady_churn` — 100 events through a *warm* sim (past
//!   its third round), where completions, reschedules, and incremental
//!   integral updates dominate instead of arrival setup. This is the
//!   regime the dirty-set O(changed) hot loop targets.
//! * `cluster_sim/ingest_retire` — a steady-state streaming run: jobs
//!   pulled one ingest ahead from the open-loop generator with
//!   `retire_completed` on, so every completion recycles arena slots.
//!   Reported per-run; divide by the job count for ns/job through the
//!   full ingest → schedule → complete → retire cycle of `eva serve`.

use criterion::{criterion_group, criterion_main, Criterion};

use eva_core::EvaConfig;
use eva_sim::{ClusterSim, SchedulerKind, SimConfig};
use eva_types::SimDuration;
use eva_workloads::{
    SyntheticSource, SyntheticTraceConfig, Trace, TraceHandle, UniformHours,
};

fn dense_trace(jobs: usize) -> Trace {
    SyntheticTraceConfig {
        num_jobs: jobs,
        mean_interarrival: SimDuration::from_mins(3),
        duration: UniformHours::new(0.5, 1.5),
        single_task_only: false,
    }
    .generate(17)
}

fn bench_first_round(c: &mut Criterion) {
    let cfg = SimConfig::new(dense_trace(60), SchedulerKind::Eva(EvaConfig::eva()));
    let mut group = c.benchmark_group("cluster_sim");
    group.sample_size(20);
    group.bench_function("first_round", |b| {
        b.iter(|| {
            let mut sim = ClusterSim::new(&cfg);
            while sim.rounds_executed() < 1 && sim.step() {}
            sim.rounds_executed()
        })
    });
    group.finish();
}

fn bench_run_to_completion(c: &mut Criterion) {
    let cfg = SimConfig::new(dense_trace(20), SchedulerKind::Eva(EvaConfig::eva()));
    let mut group = c.benchmark_group("cluster_sim");
    group.sample_size(10);
    group.bench_function("run_to_completion", |b| {
        b.iter(|| ClusterSim::new(&cfg).run().jobs_completed)
    });
    group.finish();
}

fn warm_churning_sim(cfg: &SimConfig) -> ClusterSim {
    let mut sim = ClusterSim::new(cfg);
    while sim.rounds_executed() < 3 && sim.step() {}
    sim
}

fn bench_steady_churn(c: &mut Criterion) {
    let cfg = SimConfig::new(dense_trace(60), SchedulerKind::Eva(EvaConfig::eva()));
    let mut group = c.benchmark_group("cluster_sim");
    group.sample_size(20);
    group.bench_function("steady_churn", |b| {
        // The warm sim lives in the closure and is re-warmed when a
        // sample drains it, so every iteration steps steady-state churn
        // rather than paying construction or arrival setup.
        let mut sim = warm_churning_sim(&cfg);
        b.iter(|| {
            let mut events = 0u32;
            for _ in 0..100 {
                if !sim.step() {
                    sim = warm_churning_sim(&cfg);
                }
                events += 1;
            }
            events
        })
    });
    group.finish();
}

fn bench_build_100k(c: &mut Criterion) {
    let trace = SyntheticTraceConfig::huge_100k().generate(42);
    let cfg = SimConfig::new(trace, SchedulerKind::Stratus);
    let mut group = c.benchmark_group("cluster_sim");
    group.sample_size(10);
    group.bench_function("build_100k", |b| {
        b.iter(|| ClusterSim::new(&cfg).rounds_executed())
    });
    group.finish();
}

fn bench_ingest_retire(c: &mut Criterion) {
    // 300 jobs at the dense 3-minute interarrival keeps a steady
    // in-flight window churning through slot recycling.
    let mut cfg = SimConfig::new(
        TraceHandle::new(Trace::new(Vec::new())),
        SchedulerKind::Stratus,
    );
    cfg.retire_completed = true;
    let src_cfg = SyntheticTraceConfig {
        num_jobs: 300,
        mean_interarrival: SimDuration::from_mins(3),
        duration: UniformHours::new(0.5, 1.5),
        single_task_only: false,
    };
    let mut group = c.benchmark_group("cluster_sim");
    group.sample_size(10);
    group.bench_function("ingest_retire", |b| {
        b.iter(|| {
            let source = Box::new(SyntheticSource::new(&src_cfg, 17));
            ClusterSim::from_source(&cfg, source).run().jobs_completed
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_first_round,
    bench_run_to_completion,
    bench_steady_churn,
    bench_build_100k,
    bench_ingest_retire
);
criterion_main!(benches);
