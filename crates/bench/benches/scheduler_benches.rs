//! Criterion benchmarks for the algorithm runtimes the paper reports.
//!
//! * `full_reconfiguration/200` reproduces the Table 4 runtime column
//!   (378 ms in the paper's Python; the Rust port is much faster).
//! * `full_reconfiguration/{1000,2000}` reproduces the Table 5 scaling
//!   shape (quadratic in the task count).
//! * `solvers/*` compare the exact branch-and-bound against FFD.
//! * `throughput_table/*` measure the co-location table's hot paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use eva_cloud::Catalog;
use eva_core::{full_reconfiguration, ReservationPrices, TaskSnapshot, TnrpEvaluator, UnitTput};
use eva_interference::ThroughputTable;
use eva_solver::{branch_and_bound, first_fit_decreasing, BnbConfig, Item, PackingProblem};
use eva_types::{JobId, SimDuration, TaskId, WorkloadKind};
use eva_workloads::WorkloadCatalog;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn sample_tasks(n: usize, seed: u64) -> Vec<TaskSnapshot> {
    let workloads = WorkloadCatalog::table7();
    let pool: Vec<_> = workloads.iter().collect();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let w = pool[rng.gen_range(0..pool.len())];
            TaskSnapshot {
                id: TaskId::new(JobId(i as u64), 0),
                workload: w.kind,
                demand: w.demand.clone(),
                checkpoint_delay: SimDuration::ZERO,
                launch_delay: SimDuration::ZERO,
                gang_size: 1,
                gang_coupled: false,
                assigned_to: None,
                remaining_hint: None,
            }
        })
        .collect()
}

fn bench_full_reconfiguration(c: &mut Criterion) {
    let catalog = Catalog::aws_eval_2025();
    let mut group = c.benchmark_group("full_reconfiguration");
    group.sample_size(10);
    for n in [200usize, 1000, 2000] {
        let tasks = sample_tasks(n, n as u64);
        let prices = ReservationPrices::compute(&catalog, tasks.iter());
        group.bench_with_input(BenchmarkId::from_parameter(n), &tasks, |b, tasks| {
            b.iter(|| {
                let eval = TnrpEvaluator::new(&UnitTput, &prices, true);
                full_reconfiguration(tasks, &catalog, &eval)
            })
        });
    }
    group.finish();
}

fn bench_solvers(c: &mut Criterion) {
    let catalog = Catalog::aws_eval_2025();
    let tasks = sample_tasks(40, 77);
    let items: Vec<Item> = tasks
        .iter()
        .enumerate()
        .map(|(i, t)| Item {
            id: i,
            demand: t.demand.clone(),
        })
        .collect();
    let problem = PackingProblem::new(items, catalog);
    let mut group = c.benchmark_group("solvers");
    group.sample_size(10);
    group.bench_function("ffd_40_tasks", |b| {
        b.iter(|| first_fit_decreasing(&problem))
    });
    group.bench_function("bnb_40_tasks_100ms", |b| {
        b.iter(|| {
            branch_and_bound(
                &problem,
                BnbConfig {
                    time_limit: std::time::Duration::from_millis(100),
                    ..Default::default()
                },
            )
        })
    });
    group.finish();
}

fn bench_throughput_table(c: &mut Criterion) {
    let mut table = ThroughputTable::new(0.95);
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..500 {
        let a = WorkloadKind(rng.gen_range(0..10));
        let others: Vec<WorkloadKind> = (0..rng.gen_range(1..5))
            .map(|_| WorkloadKind(rng.gen_range(0..10)))
            .collect();
        table.record(a, &others, rng.gen_range(0.5..1.0));
    }
    let mut group = c.benchmark_group("throughput_table");
    group.bench_function("estimate_group_of_4", |b| {
        b.iter(|| {
            table.estimate(
                WorkloadKind(3),
                &[
                    WorkloadKind(1),
                    WorkloadKind(4),
                    WorkloadKind(7),
                    WorkloadKind(2),
                ],
            )
        })
    });
    group.bench_function("record_pair", |b| {
        b.iter(|| table.record(WorkloadKind(0), &[WorkloadKind(1)], 0.9))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_full_reconfiguration,
    bench_solvers,
    bench_throughput_table
);
criterion_main!(benches);
