//! Table 4: provisioning-cost micro-benchmark.
//!
//! 30 trials of 200 tasks sampled from the Table 7 workloads. Compares the
//! No-Packing cost, the Full Reconfiguration heuristic, and the exact
//! branch-and-bound solver (Gurobi stand-in) under a time limit. Costs are
//! normalized to the solver's best solution per trial, as in the paper.
//!
//! Declared as a [`SolverSweep`]: one cell per trial, sharing the
//! harness's cell pool, persistent cache (`--no-cache` to re-measure
//! runtimes), and `results/table4.json` output convention.

use std::time::{Duration, Instant};

use eva_bench::is_full_scale;
use eva_bench::solver::{random_tasks, SolverSweep};
use eva_cloud::Catalog;
use eva_core::{full_reconfiguration, ReservationPrices, TnrpEvaluator, UnitTput};
use eva_solver::{branch_and_bound, BnbConfig, Item, PackingProblem};
use serde::{Deserialize, Serialize};

/// One trial's measurements (serialized into the cache and the artifact).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Table4Trial {
    trial: usize,
    np_ratio: f64,
    fr_ratio: f64,
    fr_runtime_ms: f64,
    solver_timed_out: bool,
    /// True when this row was replayed from the persistent cache: its
    /// runtime and time-limited solver outcome describe the build and
    /// machine that produced it, not this run. Stamped after the sweep —
    /// cached bytes always store `false`.
    from_cache: bool,
}

fn run_trial(trial: usize, tasks_per_trial: usize, time_limit: Duration) -> Table4Trial {
    let catalog = Catalog::aws_eval_2025();
    let tasks = random_tasks(1000 + trial as u64, tasks_per_trial);
    let prices = ReservationPrices::compute(&catalog, tasks.iter());
    let no_packing: f64 = tasks.iter().map(|t| prices.rp_dollars(t.id)).sum();

    let eval = TnrpEvaluator::new(&UnitTput, &prices, true);
    let t0 = Instant::now();
    let fr = full_reconfiguration(&tasks, &catalog, &eval);
    let fr_runtime_ms = t0.elapsed().as_secs_f64() * 1e3;

    let items: Vec<Item> = tasks
        .iter()
        .enumerate()
        .map(|(i, t)| Item {
            id: i,
            demand: t.demand.clone(),
        })
        .collect();
    let problem = PackingProblem::new(items, catalog.clone());
    let solution = branch_and_bound(
        &problem,
        BnbConfig {
            time_limit,
            ..Default::default()
        },
    );
    Table4Trial {
        trial,
        np_ratio: no_packing / solution.cost_dollars,
        fr_ratio: fr.total_cost_dollars() / solution.cost_dollars,
        fr_runtime_ms,
        solver_timed_out: !solution.proven_optimal,
        from_cache: false,
    }
}

fn main() {
    let trials = if is_full_scale() { 30 } else { 10 };
    let tasks_per_trial = 200;
    let time_limit = if is_full_scale() {
        Duration::from_secs(1800)
    } else {
        Duration::from_secs(10)
    };
    println!("== Table 4: cost minimization micro-benchmark ({trials} trials × {tasks_per_trial} tasks, solver limit {time_limit:?}) ==");

    let mut sweep = SolverSweep::new("table4").timing();
    for trial in 0..trials {
        sweep = sweep.cell(
            format!("trial:{trial}|tasks:{tasks_per_trial}|limit:{time_limit:?}"),
            move || run_trial(trial, tasks_per_trial, time_limit),
        );
    }
    let results: Vec<Table4Trial> = sweep
        .run_flagged()
        .into_iter()
        .map(|(mut row, cached)| {
            row.from_cache = cached;
            row
        })
        .collect();
    sweep.save(&results);

    let np_ratio: Vec<f64> = results.iter().map(|r| r.np_ratio).collect();
    let fr_ratio: Vec<f64> = results.iter().map(|r| r.fr_ratio).collect();
    let fr_runtime_ms: Vec<f64> = results.iter().map(|r| r.fr_runtime_ms).collect();
    let solver_timeouts = results.iter().filter(|r| r.solver_timed_out).count();

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let std = |v: &[f64]| {
        let m = mean(v);
        (v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / v.len() as f64).sqrt()
    };
    println!(
        "{:<16} {:>18} {:>12}",
        "Scheduler", "Provisioning Cost", "Runtime"
    );
    println!(
        "{:<16} {:>10.2} ± {:.2}x {:>10}",
        "No-Packing",
        mean(&np_ratio),
        std(&np_ratio),
        "—"
    );
    println!(
        "{:<16} {:>10.2} ± {:.2}x {:>9.0}ms",
        "Full Reconfig.",
        mean(&fr_ratio),
        std(&fr_ratio),
        mean(&fr_runtime_ms)
    );
    println!(
        "{:<16} {:>10}x {:>12} (timed out in {solver_timeouts}/{trials} trials)",
        "ILP (B&B)",
        "1.00",
        format!("≤{time_limit:?}")
    );
    eva_bench::finish();
}
