//! Table 4: provisioning-cost micro-benchmark.
//!
//! 30 trials of 200 tasks sampled from the Table 7 workloads. Compares the
//! No-Packing cost, the Full Reconfiguration heuristic, and the exact
//! branch-and-bound solver (Gurobi stand-in) under a time limit. Costs are
//! normalized to the solver's best solution per trial, as in the paper.

use std::time::{Duration, Instant};

use eva_bench::is_full_scale;
use eva_cloud::Catalog;
use eva_core::{full_reconfiguration, ReservationPrices, TaskSnapshot, TnrpEvaluator, UnitTput};
use eva_solver::{branch_and_bound, BnbConfig, Item, PackingProblem};
use eva_types::{JobId, SimDuration, TaskId};
use eva_workloads::WorkloadCatalog;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let trials = if is_full_scale() { 30 } else { 10 };
    let tasks_per_trial = 200;
    let time_limit = if is_full_scale() {
        Duration::from_secs(1800)
    } else {
        Duration::from_secs(10)
    };
    println!("== Table 4: cost minimization micro-benchmark ({trials} trials × {tasks_per_trial} tasks, solver limit {time_limit:?}) ==");

    let catalog = Catalog::aws_eval_2025();
    let workloads = WorkloadCatalog::table7();
    let pool: Vec<_> = workloads.iter().collect();

    let mut np_ratio = Vec::new();
    let mut fr_ratio = Vec::new();
    let mut fr_runtime_ms = Vec::new();
    let mut solver_timeouts = 0;
    for trial in 0..trials {
        let mut rng = StdRng::seed_from_u64(1000 + trial as u64);
        let tasks: Vec<TaskSnapshot> = (0..tasks_per_trial)
            .map(|i| {
                let w = pool[rng.gen_range(0..pool.len())];
                TaskSnapshot {
                    id: TaskId::new(JobId(i as u64), 0),
                    workload: w.kind,
                    demand: w.demand.clone(),
                    checkpoint_delay: SimDuration::ZERO,
                    launch_delay: SimDuration::ZERO,
                    gang_size: 1,
                    gang_coupled: false,
                    assigned_to: None,
                    remaining_hint: None,
                }
            })
            .collect();
        let prices = ReservationPrices::compute(&catalog, tasks.iter());
        let no_packing: f64 = tasks.iter().map(|t| prices.rp_dollars(t.id)).sum();

        let eval = TnrpEvaluator::new(&UnitTput, &prices, true);
        let t0 = Instant::now();
        let fr = full_reconfiguration(&tasks, &catalog, &eval);
        fr_runtime_ms.push(t0.elapsed().as_secs_f64() * 1e3);

        let items: Vec<Item> = tasks
            .iter()
            .enumerate()
            .map(|(i, t)| Item {
                id: i,
                demand: t.demand.clone(),
            })
            .collect();
        let problem = PackingProblem::new(items, catalog.clone());
        let solution = branch_and_bound(
            &problem,
            BnbConfig {
                time_limit,
                ..Default::default()
            },
        );
        if !solution.proven_optimal {
            solver_timeouts += 1;
        }
        np_ratio.push(no_packing / solution.cost_dollars);
        fr_ratio.push(fr.total_cost_dollars() / solution.cost_dollars);
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let std = |v: &[f64]| {
        let m = mean(v);
        (v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / v.len() as f64).sqrt()
    };
    println!(
        "{:<16} {:>18} {:>12}",
        "Scheduler", "Provisioning Cost", "Runtime"
    );
    println!(
        "{:<16} {:>10.2} ± {:.2}x {:>10}",
        "No-Packing",
        mean(&np_ratio),
        std(&np_ratio),
        "—"
    );
    println!(
        "{:<16} {:>10.2} ± {:.2}x {:>9.0}ms",
        "Full Reconfig.",
        mean(&fr_ratio),
        std(&fr_ratio),
        mean(&fr_runtime_ms)
    );
    println!(
        "{:<16} {:>10}x {:>12} (timed out in {solver_timeouts}/{trials} trials)",
        "ILP (B&B)",
        "1.00",
        format!("≤{time_limit:?}")
    );
}
