//! Figure 4: impact of co-location interference.
//!
//! Sweeps uniform pairwise co-location throughput over
//! {1.0, 0.95, 0.9, 0.85, 0.8} and compares No-Packing, Owl, Eva-RP
//! (interference-oblivious), and Eva-TNRP. Eva-RP's cost should blow up as
//! interference grows while Eva-TNRP stays below No-Packing.

use eva_bench::{is_full_scale, save_json};
use eva_core::EvaConfig;
use eva_sim::{run_simulation, InterferenceSpec, SchedulerKind, SimConfig};
use eva_workloads::{AlibabaTraceConfig, DurationModelChoice};

fn main() {
    println!("== Figure 4: interference sweep ==");
    let mut tc = AlibabaTraceConfig::full(DurationModelChoice::Alibaba);
    tc.num_jobs = if is_full_scale() { 6_274 } else { 1000 };
    let trace = tc.generate(4);
    let kinds: Vec<(&str, SchedulerKind)> = vec![
        ("No-Packing", SchedulerKind::NoPacking),
        ("Owl", SchedulerKind::Owl),
        ("Eva-RP", SchedulerKind::Eva(EvaConfig::eva_rp())),
        ("Eva-TNRP", SchedulerKind::Eva(EvaConfig::eva())),
    ];
    println!(
        "{:<8} {:<12} {:>12} {:>12} {:>10}",
        "tput", "scheduler", "norm cost", "norm tput", "JCT (h)"
    );
    let mut all = Vec::new();
    for tput in [1.0, 0.95, 0.9, 0.85, 0.8] {
        let mut baseline_cost = None;
        for (name, kind) in &kinds {
            let mut cfg = SimConfig::new(trace.clone(), kind.clone());
            cfg.interference = InterferenceSpec::Uniform(tput);
            let r = run_simulation(&cfg);
            let norm = match baseline_cost {
                None => {
                    baseline_cost = Some(r.total_cost_dollars);
                    1.0
                }
                Some(b) => r.total_cost_dollars / b,
            };
            println!(
                "{tput:<8} {name:<12} {:>11.1}% {:>12.2} {:>10.2}",
                100.0 * norm,
                r.avg_norm_tput,
                r.avg_jct_hours
            );
            all.push((tput, name.to_string(), r));
        }
    }
    save_json("fig4.json", &all);
}
