//! Figure 4: impact of co-location interference.
//!
//! Declares one sweep grid — uniform pairwise co-location throughput over
//! {1.0, 0.95, 0.9, 0.85, 0.8} × {No-Packing, Owl, Eva-RP, Eva-TNRP} —
//! and fans the 20 cells out across sweep workers. Eva-RP's cost should
//! blow up as interference grows while Eva-TNRP stays below No-Packing.

use eva_bench::{is_full_scale, run_grid, save_json};
use eva_core::EvaConfig;
use eva_sim::{InterferenceSpec, SchedulerKind, SweepGrid};
use eva_workloads::{AlibabaTraceConfig, DurationModelChoice};

fn main() {
    println!("== Figure 4: interference sweep ==");
    let mut tc = AlibabaTraceConfig::full(DurationModelChoice::Alibaba);
    tc.num_jobs = if is_full_scale() { 6_274 } else { 1000 };
    let trace = tc.generate(4);
    let tputs = [1.0, 0.95, 0.9, 0.85, 0.8];
    let grid = SweepGrid::new("alibaba", trace)
        .scheduler("No-Packing", SchedulerKind::NoPacking)
        .scheduler("Owl", SchedulerKind::Owl)
        .scheduler("Eva-RP", SchedulerKind::Eva(EvaConfig::eva_rp()))
        .scheduler("Eva-TNRP", SchedulerKind::Eva(EvaConfig::eva()))
        .interferences(
            tputs
                .iter()
                .map(|&t| InterferenceSpec::Uniform(t))
                .collect::<Vec<_>>(),
        );
    let art = run_grid(grid);
    println!(
        "{:<8} {:<12} {:>12} {:>12} {:>10}",
        "tput", "scheduler", "norm cost", "norm tput", "JCT (h)"
    );
    for (tput, block) in tputs.iter().zip(art.spliced.blocks()) {
        let baseline_cost = block[0].report.total_cost_dollars;
        for cell in block {
            let r = &cell.report;
            println!(
                "{tput:<8} {:<12} {:>11.1}% {:>12.2} {:>10.2}",
                cell.key.scheduler,
                100.0 * r.total_cost_dollars / baseline_cost,
                r.avg_norm_tput,
                r.avg_jct_hours
            );
        }
    }
    save_json("fig4.json", &art);
    eva_bench::finish();
}
