//! Perf trajectory snapshot: measures the simulator's hot-path numbers
//! and writes a committed `BENCH_<date>.json` at the repo root.
//!
//! Probes, in order:
//!
//! * `sim_step` — manual re-timings of the `sim_step` criterion
//!   targets (ns per first scheduling round, ns per small
//!   run-to-completion, ns per 100 steady-state events in a warm
//!   churning sim), so the committed snapshot and `cargo bench`
//!   measure the same thing.
//! * `sweep` — the paper-set sweep (small + large synthetic traces ×
//!   the five §6.1 schedulers × two seeds) through the multi-threaded
//!   [`SweepRunner`] with caching disabled: cells per second.
//! * `huge_100k` — the 100,000-job stress tier simulated end to end on
//!   one cell (Stratus): jobs per second. This is the CI release-smoke
//!   target. Runs in a spawned child process so its `VmHWM` is the
//!   probe's own high-water mark, not the parent's lifetime one.
//! * `huge_1m` (`--full`) — the million-job tier through the
//!   *streaming* path: jobs pulled from the seeded generator via
//!   [`ClusterSim::from_source`] with `retire_completed` on, so arena
//!   rows track the in-flight window. Also a child process; its peak
//!   RSS must come in *below* the batch 100k tier's despite 10× the
//!   jobs — that drop is the point of the streaming service mode.
//! * `serve` — the service loop end to end ([`eva_sim::serve()`] over an
//!   open-loop synthetic source, rolling metrics into a sink):
//!   sustained jobs per second and the RSS plateau of a long-lived
//!   scheduler process (child process, `VmHWM` in kB).
//! * `federated` — a cold ≥20-cell grid of light cells swept twice from
//!   scratch: once single-process, once under a two-process
//!   [`eva_sim::Federation`] (claim files over a throwaway cache dir),
//!   asserting the merged JSON is byte-identical and recording both
//!   throughputs.
//! * peak RSS (`VmHWM` from `/proc/self/status`) snapshotted after the
//!   sweep, plus the huge-100k child's own high-water mark.
//!
//! Flags:
//!
//! * `--out DIR` — write the snapshot into `DIR` (default: repo root);
//! * `--full` — also run the million-job tier (`huge_1m`);
//! * `--smoke SECS` — run *only* the huge-100k probe and exit non-zero
//!   if it exceeds the wall-clock budget (the CI smoke step);
//! * `--check FILE` — validate an existing snapshot's schema without
//!   simulating anything (the CI schema step); warns when the optional
//!   `huge_1m` tier was not run. When an older committed `BENCH_*.json`
//!   sits next to `FILE`, also prints per-metric deltas against the
//!   most recent one (informational — regressions warn, never fail)
//!   and flags any metric the previous snapshot had that the new one
//!   dropped (schema-drift guard).
//! * `--fed-worker DIR` — internal: what the federated probe's spawned
//!   worker runs; sweeps only the federated grid against cache `DIR`.
//! * `--huge-worker 100k|1m` / `--serve-worker` — internal: run one
//!   probe in a child process and print its JSON result, so `VmHWM`
//!   measures that probe alone.

use std::path::PathBuf;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use eva_core::EvaConfig;
use eva_sim::{
    join_workers, serve, ClusterSim, Federation, ReportCache, SchedulerKind, ServeConfig,
    SimConfig, SweepGrid, SweepRunner,
};
use eva_types::SimDuration;
use eva_workloads::{
    SyntheticSource, SyntheticTraceConfig, Trace, TraceHandle, UniformHours,
};

const SCHEMA: &str = "eva-perf-v4";

/// The committed snapshot format. `--check` round-trips a file through
/// this struct, so adding a field here is a schema change CI will catch.
#[derive(Debug, Serialize, Deserialize)]
struct BenchSnapshot {
    schema: String,
    date: String,
    sim_step: SimStepProbe,
    sweep: SweepProbe,
    huge_100k: HugeProbe,
    huge_1m: Option<HugeProbe>,
    serve: ServeProbe,
    federated: FederatedProbe,
    peak_rss_mb: RssProbe,
}

/// Median timings of the `sim_step` criterion targets.
#[derive(Debug, Serialize, Deserialize)]
struct SimStepProbe {
    first_round_ns: u64,
    run_to_completion_ns: u64,
    /// ns per 100 events through a *warm* sim (past its third round),
    /// where steady-state churn — not arrival and placement setup —
    /// dominates. This is the number the dirty-set hot loop moves.
    steady_churn_ns: u64,
}

/// Paper-set sweep throughput.
#[derive(Debug, Serialize, Deserialize)]
struct SweepProbe {
    cells: usize,
    wall_secs: f64,
    cells_per_sec: f64,
}

/// Cold multi-process sweep vs the same grid single-process. Both runs
/// start from empty throwaway cache dirs, and the probe asserts their
/// merged JSON is byte-identical before reporting throughput.
#[derive(Debug, Serialize, Deserialize)]
struct FederatedProbe {
    procs: usize,
    cells: usize,
    wall_secs: f64,
    cells_per_sec: f64,
    procs1_wall_secs: f64,
    procs1_cells_per_sec: f64,
}

/// One end-to-end run of a huge synthetic tier.
#[derive(Debug, Serialize, Deserialize)]
struct HugeProbe {
    jobs: usize,
    jobs_completed: usize,
    wall_secs: f64,
    jobs_per_sec: f64,
    /// Heap events pushed over the run — completion-rescheduling churn
    /// shows up here first (selective rescheduling exists to hold it
    /// down).
    events_scheduled: u64,
    /// Event-queue high-water mark (live events + tombstones).
    event_queue_peak: usize,
    /// `VmHWM` of the probe's own child process (MiB); 0 when run
    /// in-process (the `--smoke` path) or off Linux.
    peak_rss_mb: u64,
}

/// The long-lived service loop under sustained open-loop load.
#[derive(Debug, Serialize, Deserialize)]
struct ServeProbe {
    jobs: usize,
    wall_secs: f64,
    /// End-to-end throughput of `eva serve`: jobs retired per second of
    /// wall clock, rolling metrics emission included.
    sustained_jobs_per_sec: f64,
    /// Rolling metrics lines the run emitted.
    metrics_lines: usize,
    /// High-water mark of concurrently live arena job rows — the
    /// in-flight window retirement keeps the process down to.
    peak_job_rows: usize,
    /// `VmHWM` of the serve child process in kB — the memory plateau a
    /// long-lived scheduler settles at. 0 off Linux.
    rss_plateau_kb: u64,
}

/// `VmHWM` high-water marks (MiB); 0 where the kernel interface is
/// unavailable (non-Linux). `after_sweep` is the coordinating process's
/// own mark; `after_huge_100k` mirrors the huge-100k child's, kept here
/// so the v3 trajectory stays diffable.
#[derive(Debug, Serialize, Deserialize)]
struct RssProbe {
    after_sweep: u64,
    after_huge_100k: u64,
}

/// Same dense trace the `sim_step` criterion bench uses.
fn dense_trace(jobs: usize) -> Trace {
    SyntheticTraceConfig {
        num_jobs: jobs,
        mean_interarrival: SimDuration::from_mins(3),
        duration: UniformHours::new(0.5, 1.5),
        single_task_only: false,
    }
    .generate(17)
}

/// Median wall time of `iters` runs of `f`, in nanoseconds.
fn median_ns(iters: usize, mut f: impl FnMut()) -> u64 {
    let mut samples: Vec<u64> = (0..iters)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// A dense-trace sim warmed past its third round, where placement has
/// settled and the event mix is steady-state churn.
fn warm_churning_sim(cfg: &SimConfig) -> ClusterSim {
    let mut sim = ClusterSim::new(cfg);
    while sim.rounds_executed() < 3 && sim.step() {}
    sim
}

fn probe_sim_step() -> SimStepProbe {
    let first = SimConfig::new(dense_trace(60), SchedulerKind::Eva(EvaConfig::eva()));
    let first_round_ns = median_ns(20, || {
        let mut sim = ClusterSim::new(&first);
        while sim.rounds_executed() < 1 && sim.step() {}
    });
    let whole = SimConfig::new(dense_trace(20), SchedulerKind::Eva(EvaConfig::eva()));
    let run_to_completion_ns = median_ns(10, || {
        ClusterSim::new(&whole).run();
    });
    // Same shape as the `steady_churn` criterion target: time 100-event
    // batches against a warm sim, re-warming whenever one drains.
    let mut warm = warm_churning_sim(&first);
    let steady_churn_ns = median_ns(20, || {
        for _ in 0..100 {
            if !warm.step() {
                warm = warm_churning_sim(&first);
            }
        }
    });
    SimStepProbe {
        first_round_ns,
        run_to_completion_ns,
        steady_churn_ns,
    }
}

fn probe_sweep() -> SweepProbe {
    let grid = SweepGrid::new("small", SyntheticTraceConfig::small_scale().generate(42))
        .trace("large", SyntheticTraceConfig::large_scale().generate(42))
        .paper_schedulers()
        .seeds(vec![1, 2]);
    let runner = SweepRunner::new(eva_bench::default_threads());
    let start = Instant::now();
    let result = runner.run(&grid);
    let wall_secs = start.elapsed().as_secs_f64();
    SweepProbe {
        cells: result.cells.len(),
        wall_secs,
        cells_per_sec: result.cells.len() as f64 / wall_secs.max(1e-9),
    }
}

/// The federated probe's grid: 30 deliberately light cells (a short
/// dense trace × the five paper schedulers × six seeds) so claim/merge
/// overhead — not simulation time — dominates what the probe measures.
fn fed_grid() -> SweepGrid {
    SweepGrid::new("fed", dense_trace(30))
        .paper_schedulers()
        .seeds(vec![1, 2, 3, 4, 5, 6])
}

/// A throwaway cold cache dir for one half of the federated probe.
fn fed_probe_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("eva-perf-fed-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// What a spawned `--fed-worker DIR` process runs: only the federated
/// grid, claiming cells against the coordinator's cache dir.
fn run_fed_worker(dir: PathBuf) {
    let runner = SweepRunner::new(eva_bench::default_threads())
        .with_cache(ReportCache::new(dir))
        .with_federation(Federation::new(1));
    runner.run_with_stats(&fed_grid());
}

fn probe_federated(procs: usize) -> FederatedProbe {
    let grid = fed_grid();

    // Cold single-process baseline on its own cache dir.
    let base_dir = fed_probe_dir("base");
    let runner = SweepRunner::new(eva_bench::default_threads())
        .with_cache(ReportCache::new(base_dir.clone()));
    let start = Instant::now();
    let (baseline, _) = runner.run_with_stats(&grid);
    let procs1_wall_secs = start.elapsed().as_secs_f64();

    // Cold federated run: same grid, fresh dir, `procs - 1` spawned
    // workers claiming cells alongside the coordinator.
    let fed_dir = fed_probe_dir("run");
    let fed = Federation::new(procs).worker_args(vec![
        "--fed-worker".to_string(),
        fed_dir.display().to_string(),
    ]);
    let runner = SweepRunner::new(eva_bench::default_threads())
        .with_cache(ReportCache::new(fed_dir.clone()))
        .with_federation(fed);
    let start = Instant::now();
    let (federated, _) = runner.run_with_stats(&grid);
    let wall_secs = start.elapsed().as_secs_f64();
    join_workers();

    let same = serde_json::to_string(&federated).ok() == serde_json::to_string(&baseline).ok();
    let _ = std::fs::remove_dir_all(&base_dir);
    let _ = std::fs::remove_dir_all(&fed_dir);
    if !same {
        eprintln!("error: federated merge diverged from the single-process run");
        std::process::exit(1);
    }

    let cells = grid.cells().len();
    FederatedProbe {
        procs,
        cells,
        wall_secs,
        cells_per_sec: cells as f64 / wall_secs.max(1e-9),
        procs1_wall_secs,
        procs1_cells_per_sec: cells as f64 / procs1_wall_secs.max(1e-9),
    }
}

fn probe_huge(cfg: SyntheticTraceConfig) -> HugeProbe {
    let jobs = cfg.num_jobs;
    let trace = cfg.generate(42);
    let sim_cfg = SimConfig::new(trace, SchedulerKind::Stratus);
    let start = Instant::now();
    // Step to exhaustion by hand so the engine's scheduling counters can
    // be read before finalization consumes the sim.
    let mut sim = ClusterSim::new(&sim_cfg);
    while sim.step() {}
    let events_scheduled = sim.events_scheduled();
    let event_queue_peak = sim.event_queue_peak();
    let report = sim.run();
    let wall_secs = start.elapsed().as_secs_f64();
    HugeProbe {
        jobs,
        jobs_completed: report.jobs_completed,
        wall_secs,
        jobs_per_sec: report.jobs_completed as f64 / wall_secs.max(1e-9),
        events_scheduled,
        event_queue_peak,
        peak_rss_mb: 0,
    }
}

/// An empty-trace config for streaming worlds (jobs arrive via a
/// [`JobSource`](eva_workloads::JobSource), not the trace).
fn streaming_cfg() -> SimConfig {
    let mut cfg = SimConfig::new(
        TraceHandle::new(Trace::new(Vec::new())),
        SchedulerKind::Stratus,
    );
    cfg.retire_completed = true;
    cfg
}

/// The million-job tier through the streaming path: jobs pulled from
/// the seeded generator one ingest ahead, completed jobs retired, so
/// neither the trace nor the arena ever materializes a million rows.
fn probe_huge_streaming(cfg: SyntheticTraceConfig) -> HugeProbe {
    let jobs = cfg.num_jobs;
    let source = Box::new(SyntheticSource::new(&cfg, 42));
    let start = Instant::now();
    let mut sim = ClusterSim::from_source(&streaming_cfg(), source);
    while sim.step() {}
    // Growable-structure census on stderr: the first thing to read when
    // a streamed tier's RSS stops plateauing.
    eprintln!("   dims: {}", sim.arena_dims());
    let events_scheduled = sim.events_scheduled();
    let event_queue_peak = sim.event_queue_peak();
    let report = sim.run();
    let wall_secs = start.elapsed().as_secs_f64();
    HugeProbe {
        jobs,
        jobs_completed: report.jobs_completed,
        wall_secs,
        jobs_per_sec: report.jobs_completed as f64 / wall_secs.max(1e-9),
        events_scheduled,
        event_queue_peak,
        peak_rss_mb: peak_rss_mb(),
    }
}

/// The service-loop probe: `serve` over a sustained open-loop synthetic
/// stream (same 30-second mean interarrival as the huge tiers), rolling
/// metrics written to a sink. Run in a child process so `VmHWM` is the
/// plateau of a long-lived scheduler alone.
fn probe_serve() -> ServeProbe {
    const JOBS: usize = 20_000;
    let source = Box::new(SyntheticSource::open_loop(120.0, JOBS, 42));
    let opts = ServeConfig {
        metrics_every: SimDuration::from_hours(4),
        duration: None,
    };
    let start = Instant::now();
    let outcome = serve(&streaming_cfg(), source, &opts, &mut std::io::sink())
        .expect("serve probe runs");
    let wall_secs = start.elapsed().as_secs_f64();
    ServeProbe {
        jobs: JOBS,
        wall_secs,
        sustained_jobs_per_sec: outcome.report.jobs_completed as f64 / wall_secs.max(1e-9),
        metrics_lines: outcome.metrics_lines,
        peak_job_rows: outcome.peak_job_rows,
        rss_plateau_kb: peak_rss_kb(),
    }
}

/// Re-runs this binary with `flag` and parses the single JSON line the
/// worker prints, so the child's `VmHWM` covers exactly one probe.
fn spawn_probe<T: serde::de::DeserializeOwned>(flag: &[&str]) -> T {
    let exe = std::env::current_exe().expect("own binary path");
    let out = std::process::Command::new(exe)
        .args(flag)
        .output()
        .expect("spawn probe worker");
    if !out.status.success() {
        eprintln!(
            "error: probe worker {flag:?} failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        std::process::exit(1);
    }
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout
        .lines()
        .rev()
        .find(|l| !l.trim().is_empty())
        .unwrap_or("");
    match serde_json::from_str(line) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: probe worker {flag:?} emitted unparseable output: {e}\n{stdout}");
            std::process::exit(1);
        }
    }
}

/// `VmHWM` from `/proc/self/status` in kB; 0 when unavailable.
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|kb| kb.parse::<u64>().ok())
        .unwrap_or(0)
}

/// `VmHWM` in MiB; 0 when unavailable.
fn peak_rss_mb() -> u64 {
    peak_rss_kb() / 1024
}

/// UTC date as `YYYY-MM-DD` from the system clock (civil-from-days, no
/// calendar dependency).
fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let z = (secs / 86_400) as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = yoe + era * 400 + i64::from(m <= 2);
    format!("{y:04}-{m:02}-{d:02}")
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Numeric leaves of a JSON tree as `(dotted.path, value)` pairs, in
/// document order.
fn numeric_leaves(prefix: &str, value: &serde_json::Value, out: &mut Vec<(String, f64)>) {
    match value {
        serde_json::Value::Object(pairs) => {
            for (key, child) in pairs {
                let path = if prefix.is_empty() {
                    key.clone()
                } else {
                    format!("{prefix}.{key}")
                };
                numeric_leaves(&path, child, out);
            }
        }
        serde_json::Value::Number(n) => out.push((prefix.to_string(), n.as_f64())),
        _ => {}
    }
}

/// Dotted paths of numeric metrics present in `prev` but absent from
/// `cur` — the schema-drift guard: a metric silently vanishing from the
/// committed trajectory usually means a probe was dropped by accident.
fn missing_metrics(prev: &serde_json::Value, cur: &serde_json::Value) -> Vec<String> {
    let (mut old, mut new) = (Vec::new(), Vec::new());
    numeric_leaves("", prev, &mut old);
    numeric_leaves("", cur, &mut new);
    old.iter()
        .map(|(metric, _)| metric)
        .filter(|metric| !new.iter().any(|(m, _)| m == *metric))
        .cloned()
        .collect()
}

/// The most recent committed `BENCH_*.json` sorting strictly before
/// `path` in its own directory (dates are `YYYY-MM-DD`, so filename
/// order is date order).
fn previous_snapshot(path: &std::path::Path) -> Option<PathBuf> {
    let dir = path.parent()?;
    let name = path.file_name()?.to_str()?.to_string();
    std::fs::read_dir(dir)
        .ok()?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json") && *n < *name)
        })
        .max()
}

/// Prints per-metric deltas of `path` against the previous committed
/// snapshot next to it, if any. Purely informational: regressions warn,
/// nothing fails — the committed trajectory is allowed to move.
fn print_deltas(path: &std::path::Path) {
    let Some(prev_path) = previous_snapshot(path) else {
        println!("   (no earlier BENCH_*.json beside it to diff against)");
        return;
    };
    let parse = |p: &std::path::Path| {
        std::fs::read_to_string(p)
            .ok()
            .and_then(|s| serde_json::from_str_value(&s).ok())
    };
    let (Some(prev), Some(cur)) = (parse(&prev_path), parse(path)) else {
        println!("   warning: could not parse snapshots for the delta report");
        return;
    };
    println!("   deltas vs {}:", prev_path.display());
    let (mut old, mut new) = (Vec::new(), Vec::new());
    numeric_leaves("", &prev, &mut old);
    numeric_leaves("", &cur, &mut new);
    for (metric, now) in &new {
        let Some((_, before)) = old.iter().find(|(m, _)| m == metric) else {
            println!("      {metric}: {now} (new metric)");
            continue;
        };
        if *before == 0.0 {
            continue;
        }
        let pct = (now - before) / before * 100.0;
        // Time-like metrics improve downward, throughputs upward; the
        // reader knows which is which — just report the movement.
        println!("      {metric}: {before} -> {now} ({pct:+.1}%)");
    }
    for metric in missing_metrics(&prev, &cur) {
        println!(
            "   warning: {metric}: present in {} but missing here — \
             schema drift? (probes must not silently disappear)",
            prev_path.display()
        );
    }
}

fn check_snapshot(path: &str) -> Result<(), String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let snap: BenchSnapshot =
        serde_json::from_str(&json).map_err(|e| format!("parse {path}: {e}"))?;
    if snap.schema != SCHEMA {
        return Err(format!("schema `{}`, expected `{SCHEMA}`", snap.schema));
    }
    if snap.date.len() != 10 {
        return Err(format!("date `{}` is not YYYY-MM-DD", snap.date));
    }
    if snap.sim_step.first_round_ns == 0 || snap.sim_step.run_to_completion_ns == 0 {
        return Err("sim_step timings must be non-zero".to_string());
    }
    if snap.sim_step.steady_churn_ns == 0 {
        return Err("steady-state churn timing must be non-zero".to_string());
    }
    if snap.sweep.cells == 0 || snap.sweep.cells_per_sec <= 0.0 {
        return Err("sweep probe must report cells and throughput".to_string());
    }
    if snap.huge_100k.jobs != 100_000 || snap.huge_100k.jobs_per_sec <= 0.0 {
        return Err("huge_100k probe must cover 100,000 jobs".to_string());
    }
    if snap.huge_100k.events_scheduled == 0 || snap.huge_100k.event_queue_peak == 0 {
        return Err("huge_100k probe must report heap churn counters".to_string());
    }
    if let Some(huge_1m) = &snap.huge_1m {
        // The v4 million-job tier streams with retirement; its own
        // high-water mark must undercut the *batch* 100k tier's despite
        // 10× the jobs. Only checkable where /proc exists on both.
        if huge_1m.peak_rss_mb > 0
            && snap.huge_100k.peak_rss_mb > 0
            && huge_1m.peak_rss_mb >= snap.huge_100k.peak_rss_mb
        {
            return Err(format!(
                "huge_1m streamed {} MiB, not below the batch 100k tier's {} MiB — \
                 retirement is not bounding memory",
                huge_1m.peak_rss_mb, snap.huge_100k.peak_rss_mb
            ));
        }
    } else {
        println!("warning: huge_1m: tier not run (regenerate with --full to cover it)");
    }
    if snap.serve.jobs == 0 || snap.serve.sustained_jobs_per_sec <= 0.0 {
        return Err("serve probe must report sustained throughput".to_string());
    }
    if snap.serve.peak_job_rows == 0 || snap.serve.peak_job_rows >= snap.serve.jobs {
        return Err("serve probe must show arena rows bounded below total jobs".to_string());
    }
    if snap.federated.procs < 2 {
        return Err("federated probe must use at least two processes".to_string());
    }
    if snap.federated.cells < 20 {
        return Err("federated probe must cover at least 20 cells".to_string());
    }
    if snap.federated.cells_per_sec <= 0.0 || snap.federated.procs1_cells_per_sec <= 0.0 {
        return Err("federated probe must report both throughputs".to_string());
    }
    Ok(())
}

fn main() {
    let mut out: Option<PathBuf> = None;
    let mut full = false;
    let mut smoke: Option<f64> = None;
    let mut check: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fed-worker" => {
                let Some(dir) = args.next().map(PathBuf::from) else {
                    eprintln!("error: --fed-worker needs a cache dir");
                    std::process::exit(2);
                };
                run_fed_worker(dir);
                return;
            }
            "--huge-worker" => {
                let mut probe = match args.next().as_deref() {
                    Some("100k") => probe_huge(SyntheticTraceConfig::huge_100k()),
                    Some("1m") => probe_huge_streaming(SyntheticTraceConfig::huge_1m()),
                    // Diagnostic tier (not in the snapshot): the 100k
                    // config through the streaming path, for bisecting
                    // memory growth against the batch 100k probe.
                    Some("100k-stream") => probe_huge_streaming(SyntheticTraceConfig::huge_100k()),
                    other => {
                        eprintln!("error: --huge-worker needs 100k or 1m, got {other:?}");
                        std::process::exit(2);
                    }
                };
                probe.peak_rss_mb = peak_rss_mb();
                println!("{}", serde_json::to_string(&probe).expect("probe serializes"));
                return;
            }
            "--serve-worker" => {
                let probe = probe_serve();
                println!("{}", serde_json::to_string(&probe).expect("probe serializes"));
                return;
            }
            "--out" => out = args.next().map(PathBuf::from),
            "--full" => full = true,
            "--smoke" => {
                smoke = args.next().and_then(|v| v.parse().ok());
                if smoke.is_none() {
                    eprintln!("error: --smoke needs a wall-clock budget in seconds");
                    std::process::exit(2);
                }
            }
            "--check" => check = args.next(),
            other => {
                eprintln!("error: unknown flag `{other}`");
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = check {
        match check_snapshot(&path) {
            Ok(()) => {
                println!("ok: {path} matches {SCHEMA}");
                print_deltas(std::path::Path::new(&path));
                return;
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }

    if let Some(budget) = smoke {
        println!("== huge-100k release smoke (budget {budget:.0}s) ==");
        let probe = probe_huge(SyntheticTraceConfig::huge_100k());
        println!(
            "   {} / {} jobs in {:.1}s ({:.0} jobs/s)",
            probe.jobs_completed, probe.jobs, probe.wall_secs, probe.jobs_per_sec
        );
        if probe.jobs_completed != probe.jobs {
            eprintln!("error: smoke run left jobs unfinished");
            std::process::exit(1);
        }
        if probe.wall_secs > budget {
            eprintln!(
                "error: smoke run took {:.1}s, over the {budget:.0}s budget",
                probe.wall_secs
            );
            std::process::exit(1);
        }
        return;
    }

    println!("== perf trajectory snapshot ==");
    println!("   probing sim_step (criterion targets, median of 20/10/20)...");
    let sim_step = probe_sim_step();
    println!(
        "   first_round {} ns, run_to_completion {} ns, steady_churn {} ns/100 events",
        sim_step.first_round_ns, sim_step.run_to_completion_ns, sim_step.steady_churn_ns
    );

    println!("   probing paper-set sweep (uncached)...");
    let sweep = probe_sweep();
    println!(
        "   {} cells in {:.1}s ({:.2} cells/s)",
        sweep.cells, sweep.wall_secs, sweep.cells_per_sec
    );
    let after_sweep = peak_rss_mb();

    println!("   probing huge-100k (Stratus, single cell, child process)...");
    let huge_100k: HugeProbe = spawn_probe(&["--huge-worker", "100k"]);
    println!(
        "   {} jobs in {:.1}s ({:.0} jobs/s, {} events scheduled, queue peak {}, {} MiB peak)",
        huge_100k.jobs_completed,
        huge_100k.wall_secs,
        huge_100k.jobs_per_sec,
        huge_100k.events_scheduled,
        huge_100k.event_queue_peak,
        huge_100k.peak_rss_mb
    );
    let after_huge_100k = huge_100k.peak_rss_mb;

    println!("   probing serve loop (open-loop synthetic stream, child process)...");
    let serve_probe: ServeProbe = spawn_probe(&["--serve-worker"]);
    println!(
        "   {} jobs at {:.0} jobs/s sustained, {} rolling lines, peak {} arena rows, {} kB plateau",
        serve_probe.jobs,
        serve_probe.sustained_jobs_per_sec,
        serve_probe.metrics_lines,
        serve_probe.peak_job_rows,
        serve_probe.rss_plateau_kb
    );

    println!("   probing federated sweep (2 processes, cold claim-coordinated grid)...");
    let federated = probe_federated(2);
    println!(
        "   {} cells in {:.2}s ({:.1} cells/s federated, {:.1} cells/s single-process)",
        federated.cells, federated.wall_secs, federated.cells_per_sec,
        federated.procs1_cells_per_sec
    );

    let huge_1m = full.then(|| {
        println!("   probing huge-1m (Stratus, streaming + retirement, child process)...");
        let p: HugeProbe = spawn_probe(&["--huge-worker", "1m"]);
        println!(
            "   {} jobs in {:.1}s ({:.0} jobs/s, {} MiB peak vs {} MiB for batch 100k)",
            p.jobs_completed, p.wall_secs, p.jobs_per_sec, p.peak_rss_mb, after_huge_100k
        );
        if p.peak_rss_mb > 0 && after_huge_100k > 0 && p.peak_rss_mb >= after_huge_100k {
            eprintln!(
                "warning: streamed million-job tier did not undercut the batch \
                 100k tier's peak RSS — retirement is not bounding memory"
            );
        }
        p
    });

    let snapshot = BenchSnapshot {
        schema: SCHEMA.to_string(),
        date: today_utc(),
        sim_step,
        sweep,
        huge_100k,
        huge_1m,
        serve: serve_probe,
        federated,
        peak_rss_mb: RssProbe {
            after_sweep,
            after_huge_100k,
        },
    };

    let dir = out.unwrap_or_else(repo_root);
    let path = dir.join(format!("BENCH_{}.json", snapshot.date));
    match serde_json::to_string_pretty(&snapshot) {
        Ok(json) => match std::fs::write(&path, json + "\n") {
            Ok(()) => println!("   [saved {}]", path.display()),
            Err(e) => {
                eprintln!("error: could not write {}: {e}", path.display());
                std::process::exit(1);
            }
        },
        Err(e) => {
            eprintln!("error: serialization failed: {e}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(json: &str) -> serde_json::Value {
        serde_json::from_str_value(json).expect("valid test JSON")
    }

    #[test]
    fn missing_metrics_flags_dropped_numeric_leaves() {
        let prev = v(r#"{"a": 1, "nested": {"kept": 2.5, "dropped": 3}, "also_gone": 4}"#);
        let cur = v(r#"{"a": 9, "nested": {"kept": 0.5, "brand_new": 7}}"#);
        let mut missing = missing_metrics(&prev, &cur);
        missing.sort();
        assert_eq!(missing, vec!["also_gone", "nested.dropped"]);
    }

    #[test]
    fn missing_metrics_ignores_non_numeric_and_new_fields() {
        let prev = v(r#"{"schema": "eva-perf-v3", "x": 1}"#);
        let cur = v(r#"{"schema": "eva-perf-v4", "x": 2, "extra": 3}"#);
        // `schema` is a string leaf, `extra` only exists in the new
        // snapshot — neither is drift.
        assert!(missing_metrics(&prev, &cur).is_empty());
    }

    #[test]
    fn missing_metrics_clean_on_identical_schemas() {
        let snap = r#"{"huge_1m": {"jobs": 1, "rss": 2}, "serve": {"rate": 3.5}}"#;
        assert!(missing_metrics(&v(snap), &v(snap)).is_empty());
    }
}
