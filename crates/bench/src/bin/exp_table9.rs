//! Table 9: job-duration model quantiles.

use eva_workloads::{AlibabaDurations, DurationSampler, GavelDurations};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn row(name: &str, hours: &mut [f64], paper: [f64; 4]) {
    hours.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let q = |p: f64| hours[((hours.len() - 1) as f64 * p).round() as usize];
    let mean = hours.iter().sum::<f64>() / hours.len() as f64;
    println!(
        "{name:<10} mean {mean:>6.1}h (paper {:>5.1})  median {:>5.1} ({:>4.1})  P80 {:>5.1} ({:>4.1})  P95 {:>5.1} ({:>5.1})",
        paper[0],
        q(0.5),
        paper[1],
        q(0.8),
        paper[2],
        q(0.95),
        paper[3]
    );
}

fn main() {
    println!("== Table 9: job duration models ==");
    let n = 200_000;
    let mut rng = StdRng::seed_from_u64(9);
    let alibaba = AlibabaDurations::default();
    let mut a: Vec<f64> = (0..n)
        .map(|_| alibaba.sample(&mut rng).as_hours_f64())
        .collect();
    row("Alibaba", &mut a, [9.1, 0.2, 1.0, 5.2]);
    let mut g: Vec<f64> = (0..n)
        .map(|_| GavelDurations.sample(&mut rng).as_hours_f64())
        .collect();
    row("Gavel", &mut g, [16.7, 4.5, 16.4, 96.6]);
    eva_bench::finish();
}
