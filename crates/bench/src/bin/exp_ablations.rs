//! Design-choice ablations beyond the paper's figures.
//!
//! * **Partial refill** — Partial Reconfiguration placing reconsidered
//!   tasks into kept instances' spare capacity (this repo's default
//!   reading of §4.5) vs packing them exclusively into new instances.
//! * **Default pairwise throughput `t`** — the paper fixes `t = 0.95`;
//!   smaller values pack more conservatively (§4.3).
//! * **Decision estimators** — online λ/p estimation vs pessimistic and
//!   optimistic fixed priors.

use eva_bench::{is_full_scale, save_json};
use eva_core::EvaConfig;
use eva_sim::{run_simulation, SchedulerKind, SimConfig};
use eva_workloads::{AlibabaTraceConfig, DurationModelChoice};

fn main() {
    println!("== Ablations ==");
    let mut tc = AlibabaTraceConfig::full(DurationModelChoice::Alibaba);
    tc.num_jobs = if is_full_scale() { 6_274 } else { 1200 };
    let trace = tc.generate(99);
    let base = run_simulation(&SimConfig::new(trace.clone(), SchedulerKind::NoPacking));
    let norm = |cost: f64| 100.0 * cost / base.total_cost_dollars;

    let mut rows: Vec<(String, eva_sim::SimReport)> = Vec::new();
    let mut run = |label: &str, cfg: EvaConfig| {
        let r = run_simulation(&SimConfig::new(trace.clone(), SchedulerKind::Eva(cfg)));
        println!(
            "{label:<34} cost {:>6.1}%  t/i {:>4.2}  mig/task {:>4.2}  full {:>4.1}%",
            norm(r.total_cost_dollars),
            r.tasks_per_instance,
            r.migrations_per_task,
            100.0 * r.full_reconfig_rate
        );
        rows.push((label.to_string(), r));
    };

    println!("-- Partial Reconfiguration refill --");
    run("Eva (refill kept instances)", EvaConfig::eva());
    run(
        "Eva (new instances only, §4.5 text)",
        EvaConfig {
            refill_existing: false,
            ..EvaConfig::eva()
        },
    );

    println!("-- Default pairwise throughput t --");
    for t in [0.99, 0.95, 0.9, 0.8] {
        run(
            &format!("Eva (t = {t})"),
            EvaConfig {
                default_tput: t,
                ..EvaConfig::eva()
            },
        );
    }

    println!("-- Decision estimator priors --");
    run("Eva (online λ/p, defaults)", EvaConfig::eva());
    run(
        "Eva (long-horizon prior p = 0.01)",
        EvaConfig {
            initial_p: 0.01,
            ..EvaConfig::eva()
        },
    );
    run(
        "Eva (short-horizon prior p = 0.9)",
        EvaConfig {
            initial_p: 0.9,
            ..EvaConfig::eva()
        },
    );

    save_json("ablations.json", &rows);
}
