//! Design-choice ablations beyond the paper's figures.
//!
//! * **Partial refill** — Partial Reconfiguration placing reconsidered
//!   tasks into kept instances' spare capacity (this repo's default
//!   reading of §4.5) vs packing them exclusively into new instances.
//! * **Default pairwise throughput `t`** — the paper fixes `t = 0.95`;
//!   smaller values pack more conservatively (§4.3).
//! * **Decision estimators** — online λ/p estimation vs pessimistic and
//!   optimistic fixed priors.
//!
//! All variants are declared as one sweep grid (No-Packing first as the
//! normalization baseline) and run concurrently.

use eva_bench::{is_full_scale, run_grid, save_json};
use eva_core::EvaConfig;
use eva_sim::{SchedulerKind, SplicedResult, SweepGrid};
use eva_workloads::{AlibabaTraceConfig, DurationModelChoice};

fn main() {
    println!("== Ablations ==");
    let mut tc = AlibabaTraceConfig::full(DurationModelChoice::Alibaba);
    tc.num_jobs = if is_full_scale() { 6_274 } else { 1200 };
    let trace = tc.generate(99);

    let mut grid = SweepGrid::new("alibaba", trace).scheduler("No-Packing", SchedulerKind::NoPacking);
    let variants: Vec<(&str, EvaConfig)> = vec![
        ("Eva (refill kept instances)", EvaConfig::eva()),
        (
            "Eva (new instances only, §4.5 text)",
            EvaConfig {
                refill_existing: false,
                ..EvaConfig::eva()
            },
        ),
        (
            "Eva (t = 0.99)",
            EvaConfig {
                default_tput: 0.99,
                ..EvaConfig::eva()
            },
        ),
        (
            "Eva (t = 0.95)",
            EvaConfig {
                default_tput: 0.95,
                ..EvaConfig::eva()
            },
        ),
        (
            "Eva (t = 0.9)",
            EvaConfig {
                default_tput: 0.9,
                ..EvaConfig::eva()
            },
        ),
        (
            "Eva (t = 0.8)",
            EvaConfig {
                default_tput: 0.8,
                ..EvaConfig::eva()
            },
        ),
        (
            "Eva (long-horizon prior p = 0.01)",
            EvaConfig {
                initial_p: 0.01,
                ..EvaConfig::eva()
            },
        ),
        (
            "Eva (short-horizon prior p = 0.9)",
            EvaConfig {
                initial_p: 0.9,
                ..EvaConfig::eva()
            },
        ),
    ];
    for (label, cfg) in &variants {
        grid = grid.scheduler(*label, SchedulerKind::Eva(cfg.clone()));
    }
    let art = run_grid(grid);
    let base = art.spliced.cells[0].report.total_cost_dollars;

    // `shown` lets one cell appear under several section labels (the
    // defaults row is the same config as the refill row — run it once).
    let print_row_as = |view: &SplicedResult, label: &str, shown: &str| {
        let cell = view.first_for(label).expect("declared scheduler");
        let r = &cell.report;
        println!(
            "{shown:<34} cost {:>6.1}%  t/i {:>4.2}  mig/task {:>4.2}  full {:>4.1}%",
            100.0 * r.total_cost_dollars / base,
            r.tasks_per_instance,
            r.migrations_per_task,
            100.0 * r.full_reconfig_rate
        );
    };

    let print_row = |view: &SplicedResult, label: &str| print_row_as(view, label, label);

    println!("-- Partial Reconfiguration refill --");
    print_row(&art.spliced, "Eva (refill kept instances)");
    print_row(&art.spliced, "Eva (new instances only, §4.5 text)");

    println!("-- Default pairwise throughput t --");
    for t in ["0.99", "0.95", "0.9", "0.8"] {
        print_row(&art.spliced, &format!("Eva (t = {t})"));
    }

    println!("-- Decision estimator priors --");
    print_row_as(
        &art.spliced,
        "Eva (refill kept instances)",
        "Eva (online λ/p, defaults)",
    );
    print_row(&art.spliced, "Eva (long-horizon prior p = 0.01)");
    print_row(&art.spliced, "Eva (short-horizon prior p = 0.9)");

    save_json("ablations.json", &art);
    eva_bench::finish();
}
