//! Figure 6: impact of workload composition (multi-GPU proportion).
//!
//! Converts a growing share of single-GPU jobs into 2/4/8-GPU jobs
//! (ratio 5:4:1); each mix is one trace-axis value of a single sweep grid
//! comparing No-Packing, Stratus, Synergy, Eva w/o Full Reconfiguration,
//! and Eva.

use eva_bench::{is_full_scale, run_grid, save_json};
use eva_core::EvaConfig;
use eva_sim::{SchedulerKind, SweepGrid};
use eva_workloads::{AlibabaTraceConfig, DurationModelChoice, MultiGpuMix};

fn main() {
    println!("== Figure 6: multi-GPU job proportion sweep ==");
    let mut tc = AlibabaTraceConfig::full(DurationModelChoice::Alibaba);
    tc.num_jobs = if is_full_scale() { 6_274 } else { 1000 };
    let base_trace = tc.generate(6);
    let pcts = [0.0, 0.15, 0.3, 0.45, 0.6];
    let mut grid = SweepGrid::new(
        format!("multi-gpu {:.0}%", 100.0 * pcts[0]),
        MultiGpuMix::new(pcts[0]).apply(&base_trace, 60),
    );
    for &pct in &pcts[1..] {
        grid = grid.trace(
            format!("multi-gpu {:.0}%", 100.0 * pct),
            MultiGpuMix::new(pct).apply(&base_trace, 60 + (pct * 100.0) as u64),
        );
    }
    let grid = grid
        .scheduler("No-Packing", SchedulerKind::NoPacking)
        .scheduler("Stratus", SchedulerKind::Stratus)
        .scheduler("Synergy", SchedulerKind::Synergy)
        .scheduler("Eva w/o Full", SchedulerKind::Eva(EvaConfig::without_full()))
        .scheduler("Eva", SchedulerKind::Eva(EvaConfig::eva()));
    let art = run_grid(grid);
    println!(
        "{:<8} {:>10} {:>10} {:>12} {:>14} {:>8}",
        "multi%", "Stratus", "Synergy", "Eva w/o Full", "Eva", "(vs NP)"
    );
    for (pct, block) in pcts.iter().zip(art.spliced.blocks()) {
        let np = block[0].report.total_cost_dollars;
        let n = |i: usize| 100.0 * block[i].report.total_cost_dollars / np;
        println!(
            "{:<8.0} {:>9.1}% {:>9.1}% {:>11.1}% {:>13.1}%",
            100.0 * pct,
            n(1),
            n(2),
            n(3),
            n(4)
        );
    }
    save_json("fig6.json", &art);
    eva_bench::finish();
}
