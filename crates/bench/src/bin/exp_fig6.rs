//! Figure 6: impact of workload composition (multi-GPU proportion).
//!
//! Converts a growing share of single-GPU jobs into 2/4/8-GPU jobs
//! (ratio 5:4:1) and compares No-Packing, Stratus, Synergy, Eva w/o Full
//! Reconfiguration, and Eva.

use eva_bench::{is_full_scale, save_json};
use eva_core::EvaConfig;
use eva_sim::{run_simulation, SchedulerKind, SimConfig};
use eva_workloads::{AlibabaTraceConfig, DurationModelChoice, MultiGpuMix};

fn main() {
    println!("== Figure 6: multi-GPU job proportion sweep ==");
    let mut tc = AlibabaTraceConfig::full(DurationModelChoice::Alibaba);
    tc.num_jobs = if is_full_scale() { 6_274 } else { 1000 };
    let base_trace = tc.generate(6);
    println!(
        "{:<8} {:>10} {:>10} {:>12} {:>14} {:>8}",
        "multi%", "Stratus", "Synergy", "Eva w/o Full", "Eva", "(vs NP)"
    );
    let mut all = Vec::new();
    for pct in [0.0, 0.15, 0.3, 0.45, 0.6] {
        let trace = MultiGpuMix::new(pct).apply(&base_trace, 60 + (pct * 100.0) as u64);
        let run = |kind: SchedulerKind| run_simulation(&SimConfig::new(trace.clone(), kind));
        let np = run(SchedulerKind::NoPacking);
        let stratus = run(SchedulerKind::Stratus);
        let synergy = run(SchedulerKind::Synergy);
        let eva_nf = run(SchedulerKind::Eva(EvaConfig::without_full()));
        let eva = run(SchedulerKind::Eva(EvaConfig::eva()));
        let n = |r: &eva_sim::SimReport| 100.0 * r.total_cost_dollars / np.total_cost_dollars;
        println!(
            "{:<8.0} {:>9.1}% {:>9.1}% {:>11.1}% {:>13.1}%",
            100.0 * pct,
            n(&stratus),
            n(&synergy),
            n(&eva_nf),
            n(&eva)
        );
        all.push((pct, np, stratus, synergy, eva_nf, eva));
    }
    save_json("fig6.json", &all);
}
