//! Table 1: reconfiguration delays.
//!
//! Samples 126 instance provisionings from the Table 1 delay model and 120
//! job migrations from the Table 7 workloads, then prints range/average per
//! delay type — the same rows as the paper's Table 1.

use eva_cloud::{DelayModel, FidelityMode};
use eva_workloads::WorkloadCatalog;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn stats(label: &str, secs: &[f64]) {
    let min = secs.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = secs.iter().cloned().fold(0.0f64, f64::max);
    let mean = secs.iter().sum::<f64>() / secs.len() as f64;
    println!("{label:<22} {min:>5.0} – {max:<5.0}  avg {mean:>5.0} s");
}

fn main() {
    println!("== Table 1: reconfiguration delays ==");
    let model = DelayModel::table1(FidelityMode::Stochastic);
    let mut rng = StdRng::seed_from_u64(1);
    let mut acq = Vec::new();
    let mut setup = Vec::new();
    for _ in 0..126 {
        let s = model.sample(&mut rng);
        acq.push(s.acquisition.as_secs_f64());
        setup.push(s.setup.as_secs_f64());
    }
    stats("Instance Acquisition", &acq);
    stats("Instance Setup", &setup);

    let catalog = WorkloadCatalog::table7();
    let workloads: Vec<_> = catalog.iter().collect();
    let mut ckpt = Vec::new();
    let mut launch = Vec::new();
    for _ in 0..120 {
        let w = workloads[rng.gen_range(0..workloads.len())];
        ckpt.push(w.checkpoint_delay.as_secs_f64());
        launch.push(w.launch_delay.as_secs_f64());
    }
    stats("Job Checkpointing", &ckpt);
    stats("Job Launching", &launch);
    eva_bench::finish();
}
