//! Table 8: Alibaba trace composition by GPU demand.

use eva_workloads::{AlibabaTraceConfig, DurationModelChoice, TABLE8_GPU_MIX};

fn main() {
    println!("== Table 8: job composition by GPU demand ==");
    let mut cfg = AlibabaTraceConfig::full(DurationModelChoice::Alibaba);
    cfg.num_jobs = 50_000; // Large sample for tight percentages.
    let stats = cfg.generate(8).stats();
    println!("{:<12} {:>12} {:>12}", "GPU Demand", "Paper", "Generated");
    for (gpus, p) in TABLE8_GPU_MIX {
        println!(
            "{gpus:<12} {:>11.2}% {:>11.2}%",
            100.0 * p,
            100.0 * stats.gpu_fraction(gpus)
        );
    }
    eva_bench::finish();
}
