//! Table 10 + Figure 3: 120-job end-to-end experiment.
//!
//! The paper ran this on AWS EC2; here the same trace runs through the
//! validated simulator (Table 12 justifies the substitution). Prints the
//! Table 10 rows and the Figure 3 instance-uptime CDF deciles.

use eva_bench::{run_and_print, save_json};
use eva_core::EvaConfig;
use eva_sim::SchedulerKind;
use eva_workloads::SyntheticTraceConfig;

fn main() {
    let trace = SyntheticTraceConfig::large_scale().generate(10);
    let kinds = vec![
        SchedulerKind::NoPacking,
        SchedulerKind::Stratus,
        SchedulerKind::Eva(EvaConfig::eva()),
    ];
    let reports = run_and_print(&trace, kinds, "Table 10: 120-job end-to-end");
    println!(
        "\n{:<12} {:>10} {:>10}",
        "Scheduler", "Launched", "Mig/Task"
    );
    for r in &reports {
        println!(
            "{:<12} {:>10} {:>10.2}",
            r.scheduler, r.instances_launched, r.migrations_per_task
        );
    }
    println!("\n== Figure 3: instance uptime CDF (hours at density deciles) ==");
    print!("{:<12}", "density");
    for d in 1..=9 {
        print!("{:>7.0}%", d as f64 * 10.0);
    }
    println!();
    for r in &reports {
        print!("{:<12}", r.scheduler);
        for d in 1..=9 {
            let target = d as f64 / 10.0;
            let v = r
                .uptime_cdf
                .iter()
                .find(|p| p.density >= target)
                .map(|p| p.value)
                .unwrap_or(0.0);
            print!("{v:>8.2}");
        }
        println!();
    }
    save_json("table10_fig3.json", &reports);
    eva_bench::finish();
}
