//! Figure 7: impact of multi-task jobs.
//!
//! Converts a growing share of jobs into 2-/4-task gang-coupled jobs
//! (1:1) and compares the schedulers plus Eva-Single (no §4.4 extension).

use eva_bench::{is_full_scale, save_json};
use eva_core::EvaConfig;
use eva_sim::{run_simulation, SchedulerKind, SimConfig};
use eva_workloads::{AlibabaTraceConfig, DurationModelChoice, MultiTaskMix};

fn main() {
    println!("== Figure 7: multi-task job proportion sweep ==");
    let mut tc = AlibabaTraceConfig::full(DurationModelChoice::Alibaba);
    tc.num_jobs = if is_full_scale() { 6_274 } else { 800 };
    let base_trace = tc.generate(7);
    println!(
        "{:<8} {:>10} {:>10} {:>12} {:>10}",
        "multi%", "Stratus", "Synergy", "Eva-Single", "Eva"
    );
    let mut all = Vec::new();
    for pct in [0.0, 0.2, 0.4, 0.6] {
        let trace = MultiTaskMix::new(pct).apply(&base_trace, 70 + (pct * 100.0) as u64);
        let run = |kind: SchedulerKind| run_simulation(&SimConfig::new(trace.clone(), kind));
        let np = run(SchedulerKind::NoPacking);
        let stratus = run(SchedulerKind::Stratus);
        let synergy = run(SchedulerKind::Synergy);
        let eva_single = run(SchedulerKind::Eva(EvaConfig::eva_single()));
        let eva = run(SchedulerKind::Eva(EvaConfig::eva()));
        let n = |r: &eva_sim::SimReport| 100.0 * r.total_cost_dollars / np.total_cost_dollars;
        println!(
            "{:<8.0} {:>9.1}% {:>9.1}% {:>11.1}% {:>9.1}%",
            100.0 * pct,
            n(&stratus),
            n(&synergy),
            n(&eva_single),
            n(&eva)
        );
        all.push((pct, np, stratus, synergy, eva_single, eva));
    }
    save_json("fig7.json", &all);
}
