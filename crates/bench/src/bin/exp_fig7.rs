//! Figure 7: impact of multi-task jobs.
//!
//! Converts a growing share of jobs into 2-/4-task gang-coupled jobs
//! (1:1); each mix is one trace-axis value of a single sweep grid
//! comparing the schedulers plus Eva-Single (no §4.4 extension).

use eva_bench::{is_full_scale, run_grid, save_json};
use eva_core::EvaConfig;
use eva_sim::{SchedulerKind, SweepGrid};
use eva_workloads::{AlibabaTraceConfig, DurationModelChoice, MultiTaskMix};

fn main() {
    println!("== Figure 7: multi-task job proportion sweep ==");
    let mut tc = AlibabaTraceConfig::full(DurationModelChoice::Alibaba);
    tc.num_jobs = if is_full_scale() { 6_274 } else { 800 };
    let base_trace = tc.generate(7);
    let pcts = [0.0, 0.2, 0.4, 0.6];
    let mut grid = SweepGrid::new(
        format!("multi-task {:.0}%", 100.0 * pcts[0]),
        MultiTaskMix::new(pcts[0]).apply(&base_trace, 70),
    );
    for &pct in &pcts[1..] {
        grid = grid.trace(
            format!("multi-task {:.0}%", 100.0 * pct),
            MultiTaskMix::new(pct).apply(&base_trace, 70 + (pct * 100.0) as u64),
        );
    }
    let grid = grid
        .scheduler("No-Packing", SchedulerKind::NoPacking)
        .scheduler("Stratus", SchedulerKind::Stratus)
        .scheduler("Synergy", SchedulerKind::Synergy)
        .scheduler("Eva-Single", SchedulerKind::Eva(EvaConfig::eva_single()))
        .scheduler("Eva", SchedulerKind::Eva(EvaConfig::eva()));
    let art = run_grid(grid);
    println!(
        "{:<8} {:>10} {:>10} {:>12} {:>10}",
        "multi%", "Stratus", "Synergy", "Eva-Single", "Eva"
    );
    for (pct, block) in pcts.iter().zip(art.spliced.blocks()) {
        let np = block[0].report.total_cost_dollars;
        let n = |i: usize| 100.0 * block[i].report.total_cost_dollars / np;
        println!(
            "{:<8.0} {:>9.1}% {:>9.1}% {:>11.1}% {:>9.1}%",
            100.0 * pct,
            n(1),
            n(2),
            n(3),
            n(4)
        );
    }
    save_json("fig7.json", &art);
    eva_bench::finish();
}
