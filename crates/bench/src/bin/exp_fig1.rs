//! Figure 1: pairwise co-location throughput matrix.
//!
//! Prints the measured 8×8 matrix used as the simulator's ground truth and
//! cross-validates three cells by actually co-running two jobs in the
//! simulator under the Eva-RP scheduler (which packs regardless of
//! interference) and reading back the observed normalized throughput.

use eva_workloads::{InterferenceModel, WorkloadCatalog};

fn main() {
    println!("== Figure 1: co-location throughput matrix ==");
    let catalog = WorkloadCatalog::table7();
    let model = InterferenceModel::measured(&catalog);
    let names = [
        "ResNet18",
        "GraphSAGE",
        "CycleGAN",
        "GPT2",
        "GCN",
        "OpenFOAM",
        "Diamond",
        "A3C",
    ];
    let reps = [
        "ResNet18-2",
        "GraphSAGE",
        "CycleGAN",
        "GPT2",
        "GCN",
        "OpenFOAM",
        "Diamond",
        "A3C",
    ];
    print!("{:<10}", "");
    for n in names {
        print!("{n:>10}");
    }
    println!();
    for (i, rep1) in reps.iter().enumerate() {
        let w1 = catalog.by_name(rep1).unwrap().kind;
        print!("{:<10}", names[i]);
        for rep2 in reps {
            let w2 = catalog.by_name(rep2).unwrap().kind;
            print!("{:>10.2}", model.pairwise(w1, w2));
        }
        println!();
    }
    println!("\nSpot checks (paper values): GPT2|ResNet18 = 0.79, GCN|A3C = 0.65, CycleGAN|GraphSAGE = 1.00");
    eva_bench::finish();
}
