//! Table 6: multi-task job micro-benchmark.
//!
//! 10 trials, each scheduling 100 gang-coupled 4-task jobs (durations
//! 0.5–16 h) under No-Packing, Eva-Single (tasks treated independently),
//! and Eva-Multi (the §4.4 extension). Reports normalized total cost and
//! mean JCT — Eva-Multi should cost less *and* finish sooner than
//! Eva-Single.
//!
//! Declared as one [`SweepGrid`] whose trace axis is the trial traces —
//! the trials fan out across the shared runner's workers, land in the
//! persistent report cache, and save to `results/table6.json`.

use eva_bench::{is_full_scale, run_grid, save_json};
use eva_core::EvaConfig;
use eva_sim::{SchedulerKind, SweepGrid};
use eva_types::{JobId, SimDuration, SimTime};
use eva_workloads::DurationSampler;
use eva_workloads::{Trace, UniformHours, WorkloadCatalog};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn gang_trace(seed: u64, num_jobs: usize) -> Trace {
    let catalog = WorkloadCatalog::table7();
    let pool: Vec<_> = catalog.iter().filter(|w| w.num_tasks == 1).collect();
    let durations = UniformHours::new(0.5, 16.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut now = SimTime::ZERO;
    let jobs = (0..num_jobs)
        .map(|i| {
            now += SimDuration::from_hours_f64(-0.33 * (1.0f64 - rng.gen::<f64>()).ln());
            let w = pool[rng.gen_range(0..pool.len())];
            let mut job = w.job_spec(JobId(i as u64), now, durations.sample(&mut rng));
            // Duplicate into a 4-task gang-coupled job.
            let template = job.tasks[0].clone();
            job.tasks = (0..4)
                .map(|k| {
                    let mut t = template.clone();
                    t.id = eva_types::TaskId::new(job.id, k);
                    t
                })
                .collect();
            job.gang_coupled = true;
            job
        })
        .collect();
    Trace::new(jobs)
}

fn main() {
    let trials = if is_full_scale() { 10 } else { 4 };
    let jobs = if is_full_scale() { 100 } else { 60 };
    println!("== Table 6: multi-task job scheduling ({trials} trials × {jobs} 4-task jobs) ==");

    let mut grid = SweepGrid::new("trial0", gang_trace(7000, jobs))
        .scheduler("No-Packing", SchedulerKind::NoPacking)
        .scheduler("Eva-Single", SchedulerKind::Eva(EvaConfig::eva_single()))
        .scheduler("Eva-Multi", SchedulerKind::Eva(EvaConfig::eva()));
    for trial in 1..trials {
        grid = grid.trace(format!("trial{trial}"), gang_trace(7000 + trial as u64, jobs));
    }
    let art = run_grid(grid);
    save_json("table6.json", &art);

    // One comparison block per trial; the first entry is the baseline.
    let mut rows: Vec<(&str, Vec<f64>, Vec<f64>)> = vec![
        ("No-Packing", Vec::new(), Vec::new()),
        ("Eva-Single", Vec::new(), Vec::new()),
        ("Eva-Multi", Vec::new(), Vec::new()),
    ];
    for block in art.spliced.blocks() {
        let base = block[0].report.total_cost_dollars;
        for (row, cell) in rows.iter_mut().zip(block) {
            row.1.push(cell.report.total_cost_dollars / base);
            row.2.push(cell.report.avg_jct_hours);
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let std = |v: &[f64]| {
        let m = mean(v);
        (v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / v.len() as f64).sqrt()
    };
    println!(
        "{:<12} {:>20} {:>16}",
        "Scheduler", "Norm. Total Cost", "JCT (hours)"
    );
    for (name, costs, jcts) in rows {
        println!(
            "{name:<12} {:>11.1}% ± {:>4.1}% {:>8.2} ± {:.2}",
            100.0 * mean(&costs),
            100.0 * std(&costs),
            mean(&jcts),
            std(&jcts)
        );
    }
    eva_bench::finish();
}
