//! Table 14: full Alibaba-trace simulation (Gavel durations).

use eva_bench::{is_full_scale, run_and_print, save_json, scheduler_set};
use eva_workloads::{AlibabaTraceConfig, DurationModelChoice};

fn main() {
    let mut cfg = AlibabaTraceConfig::full(DurationModelChoice::Gavel);
    if !is_full_scale() {
        cfg.num_jobs = 1200;
    }
    let trace = cfg.generate(14);
    let reports = run_and_print(
        &trace,
        scheduler_set(),
        "Table 14: Alibaba trace, Gavel durations",
    );
    save_json("table14.json", &reports);
    eva_bench::finish();
}
