//! Table 11: 32-job end-to-end experiment with all five schedulers.

use eva_bench::{run_and_print, save_json, scheduler_set};
use eva_workloads::SyntheticTraceConfig;

fn main() {
    let trace = SyntheticTraceConfig::small_scale().generate(11);
    let reports = run_and_print(&trace, scheduler_set(), "Table 11: 32-job end-to-end");
    save_json("table11.json", &reports);
    eva_bench::finish();
}
