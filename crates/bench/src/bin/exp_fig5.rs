//! Figure 5: impact of migration overhead.
//!
//! Declares a sweep grid over the per-task migration-delay multiplier ×
//! {Eva, Eva w/o Partial, Stratus} and reports (a) Eva's Full
//! Reconfiguration adoption proportion and migrations per job, and
//! (b) total cost normalized against a No-Packing baseline cell.

use eva_bench::{is_full_scale, run_grid, save_json};
use eva_core::EvaConfig;
use eva_sim::{run_simulation, SchedulerKind, SimConfig, SweepGrid};
use eva_workloads::{AlibabaTraceConfig, DurationModelChoice};

fn main() {
    println!("== Figure 5: migration-delay sweep ==");
    let mut tc = AlibabaTraceConfig::full(DurationModelChoice::Alibaba);
    tc.num_jobs = if is_full_scale() { 6_274 } else { 1000 };
    let trace = tc.generate(5);
    // No-Packing never migrates, so its baseline is a single unscaled cell.
    let base = run_simulation(&SimConfig::new(trace.clone(), SchedulerKind::NoPacking));
    let scales = [1.0, 2.0, 4.0, 8.0];
    let grid = SweepGrid::new("alibaba", trace)
        .scheduler("Eva", SchedulerKind::Eva(EvaConfig::eva()))
        .scheduler("Eva w/o Partial", SchedulerKind::Eva(EvaConfig::without_partial()))
        .scheduler("Stratus", SchedulerKind::Stratus)
        .migration_scales(scales.to_vec());
    let art = run_grid(grid);
    println!("(a) Eva under scaled migration delays; (b) cost vs baselines");
    println!(
        "{:<7} {:>11} {:>10} | {:>10} {:>12} {:>10}",
        "scale", "full prop.", "mig/job", "Eva", "Eva w/o P.", "Stratus"
    );
    for (scale, block) in scales.iter().zip(art.spliced.blocks()) {
        let [eva, full_only, stratus] = [&block[0].report, &block[1].report, &block[2].report];
        println!(
            "{scale:<7} {:>10.1}% {:>10.2} | {:>9.1}% {:>11.1}% {:>9.1}%",
            100.0 * eva.full_reconfig_rate,
            eva.migrations_per_task,
            100.0 * eva.total_cost_dollars / base.total_cost_dollars,
            100.0 * full_only.total_cost_dollars / base.total_cost_dollars,
            100.0 * stratus.total_cost_dollars / base.total_cost_dollars,
        );
    }
    save_json("fig5.json", &(base, art));
    eva_bench::finish();
}
