//! Figure 5: impact of migration overhead.
//!
//! Sweeps the per-task migration delay multiplier and reports (a) Eva's
//! Full Reconfiguration adoption proportion and migrations per job, and
//! (b) total cost of Eva, Eva w/o Partial (Full only), and Stratus.

use eva_bench::{is_full_scale, save_json};
use eva_core::EvaConfig;
use eva_sim::{run_simulation, SchedulerKind, SimConfig};
use eva_workloads::{AlibabaTraceConfig, DurationModelChoice};

fn main() {
    println!("== Figure 5: migration-delay sweep ==");
    let mut tc = AlibabaTraceConfig::full(DurationModelChoice::Alibaba);
    tc.num_jobs = if is_full_scale() { 6_274 } else { 1000 };
    let trace = tc.generate(5);
    let base = run_simulation(&SimConfig::new(trace.clone(), SchedulerKind::NoPacking));
    println!("(a) Eva under scaled migration delays; (b) cost vs baselines");
    println!(
        "{:<7} {:>11} {:>10} | {:>10} {:>12} {:>10}",
        "scale", "full prop.", "mig/job", "Eva", "Eva w/o P.", "Stratus"
    );
    let mut all = Vec::new();
    for scale in [1.0, 2.0, 4.0, 8.0] {
        let run = |kind: SchedulerKind| {
            let mut cfg = SimConfig::new(trace.clone(), kind);
            cfg.migration_delay_scale = scale;
            run_simulation(&cfg)
        };
        let eva = run(SchedulerKind::Eva(EvaConfig::eva()));
        let full_only = run(SchedulerKind::Eva(EvaConfig::without_partial()));
        let stratus = run(SchedulerKind::Stratus);
        println!(
            "{scale:<7} {:>10.1}% {:>10.2} | {:>9.1}% {:>11.1}% {:>9.1}%",
            100.0 * eva.full_reconfig_rate,
            eva.migrations_per_task,
            100.0 * eva.total_cost_dollars / base.total_cost_dollars,
            100.0 * full_only.total_cost_dollars / base.total_cost_dollars,
            100.0 * stratus.total_cost_dollars / base.total_cost_dollars,
        );
        all.push((scale, eva, full_only, stratus));
    }
    save_json("fig5.json", &all);
}
