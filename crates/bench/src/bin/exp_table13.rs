//! Table 13: full Alibaba-trace simulation (Alibaba durations).

use eva_bench::{is_full_scale, run_and_print, save_json, scheduler_set};
use eva_workloads::{AlibabaTraceConfig, DurationModelChoice};

fn main() {
    let mut cfg = AlibabaTraceConfig::full(DurationModelChoice::Alibaba);
    if !is_full_scale() {
        cfg.num_jobs = 2000;
    }
    let trace = cfg.generate(13);
    let reports = run_and_print(
        &trace,
        scheduler_set(),
        "Table 13: Alibaba trace, Alibaba durations",
    );
    save_json("table13.json", &reports);
    eva_bench::finish();
}
