//! Figure 8: impact of job arrival rate.
//!
//! Sweeps the Poisson arrival rate over 0.5–3 jobs/hr — one trace-axis
//! value per rate in a single grid over the five §6.1 schedulers. Lower
//! rates mean fewer co-resident jobs and therefore smaller packing
//! benefits, but Eva should stay the cheapest packer throughout.

use eva_bench::{is_full_scale, run_grid, save_json};
use eva_sim::{SweepGrid};
use eva_workloads::{AlibabaTraceConfig, DurationModelChoice};

fn main() {
    println!("== Figure 8: arrival-rate sweep ==");
    let rates = [0.5, 1.0, 2.0, 3.0];
    let trace_for = |rate: f64| {
        let mut tc = AlibabaTraceConfig::full(DurationModelChoice::Alibaba);
        tc.arrival_rate_per_hour = rate;
        tc.num_jobs = if is_full_scale() { 6_274 } else { 700 };
        tc.generate(80 + (rate * 10.0) as u64)
    };
    let mut grid = SweepGrid::new(format!("{} jobs/hr", rates[0]), trace_for(rates[0]));
    for &rate in &rates[1..] {
        grid = grid.trace(format!("{rate} jobs/hr"), trace_for(rate));
    }
    let art = run_grid(grid.paper_schedulers());
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>10}",
        "jobs/hr", "Stratus", "Synergy", "Owl", "Eva"
    );
    for (rate, block) in rates.iter().zip(art.spliced.blocks()) {
        let np = block[0].report.total_cost_dollars;
        let n = |i: usize| 100.0 * block[i].report.total_cost_dollars / np;
        println!(
            "{rate:<10} {:>9.1}% {:>9.1}% {:>9.1}% {:>9.1}%",
            n(1),
            n(2),
            n(3),
            n(4),
        );
    }
    save_json("fig8.json", &art);
    eva_bench::finish();
}
