//! Figure 8: impact of job arrival rate.
//!
//! Sweeps the Poisson arrival rate over 0.5–3 jobs/hr. Lower rates mean
//! fewer co-resident jobs and therefore smaller packing benefits, but Eva
//! should stay the cheapest packer throughout.

use eva_bench::{is_full_scale, save_json, scheduler_set};
use eva_sim::{run_simulation, SimConfig};
use eva_workloads::{AlibabaTraceConfig, DurationModelChoice};

fn main() {
    println!("== Figure 8: arrival-rate sweep ==");
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>10}",
        "jobs/hr", "Stratus", "Synergy", "Owl", "Eva"
    );
    let mut all = Vec::new();
    for rate in [0.5, 1.0, 2.0, 3.0] {
        let mut tc = AlibabaTraceConfig::full(DurationModelChoice::Alibaba);
        tc.arrival_rate_per_hour = rate;
        tc.num_jobs = if is_full_scale() { 6_274 } else { 700 };
        let trace = tc.generate(80 + (rate * 10.0) as u64);
        let mut reports = Vec::new();
        for kind in scheduler_set() {
            reports.push(run_simulation(&SimConfig::new(trace.clone(), kind)));
        }
        let np = reports[0].total_cost_dollars;
        println!(
            "{rate:<10} {:>9.1}% {:>9.1}% {:>9.1}% {:>9.1}%",
            100.0 * reports[1].total_cost_dollars / np,
            100.0 * reports[2].total_cost_dollars / np,
            100.0 * reports[3].total_cost_dollars / np,
            100.0 * reports[4].total_cost_dollars / np,
        );
        all.push((rate, reports));
    }
    save_json("fig8.json", &all);
}
