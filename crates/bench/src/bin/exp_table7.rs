//! Table 7: workload inventory.

use eva_workloads::WorkloadCatalog;

fn main() {
    println!("== Table 7: evaluated workloads ==");
    println!(
        "{:<12} {:<28} {:>4} {:>9} {:>8} {:>6} {:>7} {:>6}",
        "Workload", "Domain", "GPU", "CPU(P3)", "CPU(c7i)", "RAM", "Ckpt", "Launch"
    );
    for w in WorkloadCatalog::table7().iter() {
        let d = &w.demand;
        println!(
            "{:<12} {:<28} {:>4} {:>9} {:>8} {:>4}GB {:>6.0}s {:>5.0}s   ({} task{}{})",
            w.name,
            w.domain,
            d.default.gpu,
            d.default.cpu,
            d.for_family("c7i").cpu,
            d.default.ram_mb / 1024,
            w.checkpoint_delay.as_secs_f64(),
            w.launch_delay.as_secs_f64(),
            w.num_tasks,
            if w.num_tasks > 1 { "s" } else { "" },
            if w.gang_coupled { ", gang-coupled" } else { "" },
        );
    }
    eva_bench::finish();
}
