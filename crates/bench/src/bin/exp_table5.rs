//! Table 5: Full Reconfiguration runtime scaling.
//!
//! Times Algorithm 1 over 1,000–8,000 tasks sampled from Table 7 (the
//! paper reports 0.4 s / 1.5 s / 5.5 s / 22 s in Python; the Rust port is
//! substantially faster, but the quadratic shape should hold).
//!
//! Declared as a [`SolverSweep`]: one cell per task count, run serially
//! for stable timings, cached under `results/cache/` (`--no-cache` to
//! re-measure), saved to `results/table5.json`.

use std::time::Instant;

use eva_bench::is_full_scale;
use eva_bench::solver::{random_tasks, SolverSweep};
use eva_cloud::Catalog;
use eva_core::{full_reconfiguration, ReservationPrices, TnrpEvaluator, UnitTput};
use serde::{Deserialize, Serialize};

/// One scaling point (serialized into the cache and the artifact).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Table5Row {
    num_tasks: usize,
    runtime_s: f64,
    instances: usize,
    /// True when this row's runtime was replayed from the persistent
    /// cache rather than measured this run. Stamped after the sweep —
    /// cached bytes always store `false`.
    from_cache: bool,
}

fn time_full_reconfiguration(n: usize) -> Table5Row {
    let catalog = Catalog::aws_eval_2025();
    let tasks = random_tasks(n as u64, n);
    let prices = ReservationPrices::compute(&catalog, tasks.iter());
    let eval = TnrpEvaluator::new(&UnitTput, &prices, true);
    let t0 = Instant::now();
    let config = full_reconfiguration(&tasks, &catalog, &eval);
    Table5Row {
        num_tasks: n,
        runtime_s: t0.elapsed().as_secs_f64(),
        instances: config.instances.len(),
        from_cache: false,
    }
}

fn main() {
    println!("== Table 5: Full Reconfiguration runtime ==");
    let sizes: &[usize] = if is_full_scale() {
        &[1000, 2000, 4000, 8000]
    } else {
        &[1000, 2000, 4000]
    };
    let mut sweep = SolverSweep::new("table5").timing();
    for &n in sizes {
        sweep = sweep.cell(format!("fr-runtime|n:{n}"), move || {
            time_full_reconfiguration(n)
        });
    }
    let results: Vec<Table5Row> = sweep
        .run_flagged()
        .into_iter()
        .map(|(mut row, cached)| {
            row.from_cache = cached;
            row
        })
        .collect();
    sweep.save(&results);
    println!("{:<12} {:>12}", "Num. Tasks", "Runtime (s)");
    for row in &results {
        println!(
            "{:<12} {:>12.3}   ({} instances){}",
            row.num_tasks,
            row.runtime_s,
            row.instances,
            if row.from_cache { "  [cached]" } else { "" }
        );
    }
    eva_bench::finish();
}
