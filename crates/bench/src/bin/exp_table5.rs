//! Table 5: Full Reconfiguration runtime scaling.
//!
//! Times Algorithm 1 over 1,000–8,000 tasks sampled from Table 7 (the
//! paper reports 0.4 s / 1.5 s / 5.5 s / 22 s in Python; the Rust port is
//! substantially faster, but the quadratic shape should hold).

use std::time::Instant;

use eva_bench::is_full_scale;
use eva_cloud::Catalog;
use eva_core::{full_reconfiguration, ReservationPrices, TaskSnapshot, TnrpEvaluator, UnitTput};
use eva_types::{JobId, SimDuration, TaskId};
use eva_workloads::WorkloadCatalog;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    println!("== Table 5: Full Reconfiguration runtime ==");
    let catalog = Catalog::aws_eval_2025();
    let workloads = WorkloadCatalog::table7();
    let pool: Vec<_> = workloads.iter().collect();
    let sizes: &[usize] = if is_full_scale() {
        &[1000, 2000, 4000, 8000]
    } else {
        &[1000, 2000, 4000]
    };
    println!("{:<12} {:>12}", "Num. Tasks", "Runtime (s)");
    for &n in sizes {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let tasks: Vec<TaskSnapshot> = (0..n)
            .map(|i| {
                let w = pool[rng.gen_range(0..pool.len())];
                TaskSnapshot {
                    id: TaskId::new(JobId(i as u64), 0),
                    workload: w.kind,
                    demand: w.demand.clone(),
                    checkpoint_delay: SimDuration::ZERO,
                    launch_delay: SimDuration::ZERO,
                    gang_size: 1,
                    gang_coupled: false,
                    assigned_to: None,
                    remaining_hint: None,
                }
            })
            .collect();
        let prices = ReservationPrices::compute(&catalog, tasks.iter());
        let eval = TnrpEvaluator::new(&UnitTput, &prices, true);
        let t0 = Instant::now();
        let config = full_reconfiguration(&tasks, &catalog, &eval);
        let dt = t0.elapsed().as_secs_f64();
        println!(
            "{n:<12} {dt:>12.3}   ({} instances)",
            config.instances.len()
        );
    }
}
