//! Table 12: simulator fidelity — simulated vs real execution.
//!
//! The paper validates the simulator by running the same workload on a
//! physical cluster and comparing costs (within 5%). Here the "real"
//! side is the in-process master/worker runtime: one grid declares a
//! two-value backend axis, the sim cells run the pure world model, and
//! the live cells replay the identical engine-ordered schedule through
//! real workers, containers, and checkpoint/restore cycles. The table
//! reports the per-scheduler deltas between what the schedule promised
//! and what the runtime actually executed — completed jobs, migrations
//! performed as live checkpoints, and executed iterations. Nonzero job
//! or iteration deltas would mean the control plane lost work.

use eva_bench::{apply_shard, print_stats, runner, save_json, spliced_view};
use eva_sim::{BackendKind, LiveBackend, SweepArtifact, SweepGrid};
use eva_workloads::SyntheticTraceConfig;

fn main() {
    println!("== Table 12: simulator fidelity (sim vs live master/worker execution) ==");
    let trace = SyntheticTraceConfig::small_scale().generate(12);
    let grid = SweepGrid::new("synthetic", trace)
        .paper_schedulers()
        .backends(vec![BackendKind::Sim, BackendKind::Live]);
    let grid = apply_shard(grid);
    let (result, stats) = runner().run_with_stats(&grid);
    print_stats(&stats);
    let view = spliced_view(&result);
    let blocks: Vec<_> = view.blocks().collect();
    let (sim, live) = (blocks[0], blocks[1]);
    println!(
        "{:<12} {:>12} {:>10} {:>10} {:>7} {:>11} {:>11} {:>7}",
        "Scheduler", "Cost ($)", "sim jobs", "live jobs", "Δjobs", "sim mig/t", "live mig/t", "Δmig"
    );
    for (s, l) in sim.iter().zip(live) {
        assert_eq!(s.key.scheduler, l.key.scheduler);
        println!(
            "{:<12} {:>12.2} {:>10} {:>10} {:>7} {:>11.3} {:>11.3} {:>6.3}",
            s.report.scheduler,
            s.report.total_cost_dollars,
            s.report.jobs_completed,
            l.report.jobs_completed,
            l.report.jobs_completed as i64 - s.report.jobs_completed as i64,
            s.report.migrations_per_task,
            l.report.migrations_per_task,
            l.report.migrations_per_task - s.report.migrations_per_task,
        );
    }

    // Deeper execution audit for the full Eva configuration: iteration
    // and state-digest parity of the live run.
    // Audit the first Eva sim cell of the raw (possibly sharded)
    // result, so the replayed schedule is exactly one grid cell's.
    let eva_cell = result
        .cells
        .iter()
        .find(|c| c.key.scheduler == "Eva" && c.key.backend == "sim")
        .expect("Eva is in the paper set");
    let cfg = grid.cell_config(
        &grid
            .cells()
            .into_iter()
            .find(|c| c.key == eva_cell.key)
            .expect("Eva sim cell exists"),
    );
    let outcome = LiveBackend
        .run_detailed(&cfg)
        .expect("live replay executes");
    println!(
        "\nEva execution audit: {}/{} jobs confirmed live, {}/{} iterations executed, {} live checkpoints, {} digest mismatches",
        outcome.completed_jobs.len(),
        outcome.expected_jobs.len(),
        outcome.live_iterations,
        outcome.expected_iterations,
        outcome.live_checkpoints,
        outcome.digest_mismatches,
    );
    assert_eq!(
        outcome.sim_report.total_cost_dollars, eva_cell.report.total_cost_dollars,
        "the audited schedule is the one the grid ran"
    );
    save_json(
        "table12.json",
        &SweepArtifact {
            sweep: result,
            spliced: view,
        },
    );
}
