//! Table 12: control-plane robustness — sim vs live under adversarial
//! faults.
//!
//! The paper validates the simulator by running the same workload on a
//! physical cluster and comparing outcomes (within 5%). This rebuild
//! turns that fidelity check into a *robustness report*: the same
//! deterministic fault schedule — compiled from `(seed, regime,
//! intensity)` before the run — is injected into both backends, and the
//! table reports per-(scheduler, regime) deltas between what the
//! faulted schedule promised and what the faulted runtime executed:
//!
//! * **Δjobs** — jobs confirmed live minus jobs the schedule completed;
//! * **Δmakespan** — live makespan (which charges re-executed work lost
//!   to confiscated/dropped checkpoints) minus simulated makespan;
//! * **Δmig** — checkpoints the runtime banked minus boundaries the
//!   schedule carried (each fault kill confiscates its rescue blob, so
//!   kills show up as −1 each).
//!
//! The fault-free row of every scheduler must be **exactly zero** in
//! all three columns — that column is the control experiment proving
//! nonzero deltas under a regime measure injected adversity, not noise.
//!
//! Regimes default to the adversarial trio (preempt-storm, ckpt-drop,
//! worker-crash); `--faults REGIME[:INTENSITY]` narrows the run to the
//! fault-free baseline plus that one regime. The fidelity grid honors
//! the shared `--shard` / cache flags like every other experiment.

use eva_bench::{apply_shard, faults_setting, print_stats, runner, save_json, spliced_view};
use eva_sim::{
    BackendKind, FaultRegime, FaultSpec, LiveBackend, PartitionAudit, SchedulerKind, SimConfig,
    SweepArtifact, SweepGrid,
};
use eva_workloads::SyntheticTraceConfig;
use serde::{Deserialize, Serialize};

/// One robustness measurement (serialized into the artifact).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct RobustnessRow {
    scheduler: String,
    regime: String,
    delta_jobs: i64,
    delta_makespan_hours: f64,
    delta_migrations: i64,
    re_executed: u64,
    live_kills: u64,
    dropped_checkpoints: u64,
    digest_mismatches: u64,
}

impl RobustnessRow {
    fn is_zero(&self) -> bool {
        self.delta_jobs == 0
            && self.delta_makespan_hours == 0.0
            && self.delta_migrations == 0
            && self.re_executed == 0
    }
}

fn main() {
    println!("== Table 12: control-plane robustness (sim vs live under adversarial faults) ==");
    let trace = SyntheticTraceConfig::small_scale().generate(12);

    // The fault-free control column plus either the `--faults` override
    // or the default adversarial trio.
    let regimes: Vec<FaultSpec> = match faults_setting() {
        Some(spec) if !spec.is_none() => vec![FaultSpec::none(), spec],
        _ => vec![
            FaultSpec::none(),
            FaultSpec::new(FaultRegime::PreemptStorm),
            FaultSpec::new(FaultRegime::CkptDrop),
            FaultSpec::new(FaultRegime::WorkerCrash),
        ],
    };

    // Fidelity grid across both backends and every regime, run through
    // the shared harness so sharding, caching, and fault-aware cell
    // fingerprints behave exactly as in any other experiment. (The
    // fault axis is set explicitly here — the regime list is this
    // experiment's subject, not a pass-through flag.)
    let grid = SweepGrid::new("synthetic", trace.clone())
        .paper_schedulers()
        .backends(vec![BackendKind::Sim, BackendKind::Live])
        .faults(regimes.clone());
    let grid = apply_shard(grid);
    let (result, stats) = runner().run_with_stats(&grid);
    print_stats(&stats);
    let view = spliced_view(&result);
    // The robustness claim rests on a clean trace partition; print the
    // audit even when unsharded (a single whole-trace window is
    // trivially clean).
    let audit = view.audit().unwrap_or_else(PartitionAudit::single);
    println!("   [partition audit: {}]", audit.summary());

    // Robustness table: replay each (scheduler, regime) cell through the
    // live master/worker runtime and measure its deltas.
    println!(
        "\n{:<12} {:<16} {:>6} {:>11} {:>5} {:>8} {:>6} {:>6}",
        "Scheduler", "Regime", "Δjobs", "Δmakespan", "Δmig", "re-exec", "kills", "drops"
    );
    let mut rows: Vec<RobustnessRow> = Vec::new();
    for kind in SchedulerKind::paper_set() {
        for &spec in &regimes {
            let mut cfg = SimConfig::new(trace.clone(), kind.clone());
            cfg.faults = spec;
            let outcome = LiveBackend
                .run_detailed(&cfg)
                .expect("live replay executes the faulted schedule");
            let row = RobustnessRow {
                scheduler: kind.label().to_string(),
                regime: spec.label(),
                delta_jobs: outcome.delta_jobs(),
                delta_makespan_hours: outcome.delta_makespan_hours(),
                delta_migrations: outcome.delta_migrations(),
                re_executed: outcome.re_executed(),
                live_kills: outcome.live_kills,
                dropped_checkpoints: outcome.dropped_checkpoints,
                digest_mismatches: outcome.digest_mismatches,
            };
            println!(
                "{:<12} {:<16} {:>6} {:>10.3}h {:>5} {:>8} {:>6} {:>6}",
                row.scheduler,
                row.regime,
                row.delta_jobs,
                row.delta_makespan_hours,
                row.delta_migrations,
                row.re_executed,
                row.live_kills,
                row.dropped_checkpoints,
            );
            // The control column: a fault-free replay must match its
            // schedule *exactly* — any drift here is a control-plane
            // bug, and would poison every faulted delta.
            if spec.is_none() {
                assert!(
                    row.is_zero() && row.live_kills == 0 && row.dropped_checkpoints == 0,
                    "fault-free deltas must be exactly zero: {row:?}"
                );
            }
            assert_eq!(row.digest_mismatches, 0, "state lost across restore: {row:?}");
            rows.push(row);
        }
    }
    let nonzero = rows.iter().filter(|r| !r.is_zero()).count();
    println!("\nnonzero-deltas: {nonzero} of {} (scheduler, regime) cells", rows.len());

    save_json(
        "table12.json",
        &SweepArtifact {
            sweep: result,
            spliced: view,
        },
    );
    save_json("table12_robustness.json", &rows);
    eva_bench::finish();
}
