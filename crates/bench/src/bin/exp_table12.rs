//! Table 12: simulator fidelity.
//!
//! The paper compares physical-cluster cost against simulated cost
//! (within 5%). Without hardware we compare the two fidelity levels the
//! simulator supports — stochastic delays (the "world") vs nominal mean
//! delays (the "model") — per scheduler; small deltas show scheduler
//! outcomes are robust to the modelled noise.

use eva_bench::{save_json, scheduler_set};
use eva_cloud::FidelityMode;
use eva_sim::{run_simulation, SimConfig};
use eva_workloads::SyntheticTraceConfig;

fn main() {
    println!("== Table 12: simulator fidelity (stochastic vs nominal delays) ==");
    let trace = SyntheticTraceConfig::small_scale().generate(12);
    println!(
        "{:<12} {:>16} {:>16} {:>12}",
        "Scheduler", "Stochastic ($)", "Nominal ($)", "Difference"
    );
    let mut rows = Vec::new();
    for kind in scheduler_set() {
        let mut stochastic_cfg = SimConfig::new(trace.clone(), kind.clone());
        stochastic_cfg.fidelity = FidelityMode::Stochastic;
        let mut nominal_cfg = SimConfig::new(trace.clone(), kind);
        nominal_cfg.fidelity = FidelityMode::Nominal;
        let a = run_simulation(&stochastic_cfg);
        let b = run_simulation(&nominal_cfg);
        let diff = (b.total_cost_dollars - a.total_cost_dollars) / a.total_cost_dollars;
        println!(
            "{:<12} {:>16.2} {:>16.2} {:>11.1}%",
            a.scheduler,
            a.total_cost_dollars,
            b.total_cost_dollars,
            100.0 * diff
        );
        rows.push((a, b));
    }
    save_json("table12.json", &rows);
}
