//! Table 12: simulator fidelity.
//!
//! The paper compares physical-cluster cost against simulated cost
//! (within 5%). Without hardware we compare the two fidelity levels the
//! simulator supports — stochastic delays (the "world") vs nominal mean
//! delays (the "model") — per scheduler, declared as one grid with a
//! two-value fidelity axis; small deltas show scheduler outcomes are
//! robust to the modelled noise.

use eva_bench::{default_threads, save_json};
use eva_cloud::FidelityMode;
use eva_sim::{SweepGrid, SweepRunner};
use eva_workloads::SyntheticTraceConfig;

fn main() {
    println!("== Table 12: simulator fidelity (stochastic vs nominal delays) ==");
    let trace = SyntheticTraceConfig::small_scale().generate(12);
    let grid = SweepGrid::new("synthetic", trace)
        .paper_schedulers()
        .fidelities(vec![FidelityMode::Stochastic, FidelityMode::Nominal]);
    let result = SweepRunner::new(default_threads()).run(&grid);
    let blocks: Vec<_> = result.blocks().collect();
    let (stochastic, nominal) = (blocks[0], blocks[1]);
    println!(
        "{:<12} {:>16} {:>16} {:>12}",
        "Scheduler", "Stochastic ($)", "Nominal ($)", "Difference"
    );
    for (a, b) in stochastic.iter().zip(nominal) {
        let diff = (b.report.total_cost_dollars - a.report.total_cost_dollars)
            / a.report.total_cost_dollars;
        println!(
            "{:<12} {:>16.2} {:>16.2} {:>11.1}%",
            a.report.scheduler,
            a.report.total_cost_dollars,
            b.report.total_cost_dollars,
            100.0 * diff
        );
    }
    save_json("table12.json", &result);
}
