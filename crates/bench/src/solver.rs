//! Solver-level micro-benchmark sweeps (tables 4–6's inner loops).
//!
//! The paper's table 4/5 micro-benchmarks time *solver* calls (Full
//! Reconfiguration, branch-and-bound) on synthetic task sets — there is
//! no simulated cluster, so they cannot be `SweepGrid` cells. A
//! [`SolverSweep`] gives them the same machinery anyway: cells are
//! declared once with a content key, run through the shared
//! [`CellPool`] (deduplication + stable merge order), consult the same
//! persistent [`ReportCache`] under the same `--cache`/`--no-cache`/
//! `--cache-dir` flags, and save through the same `results/*.json`
//! conventions.
//!
//! Cells run **serially by default**: these benchmarks report wall-clock
//! runtimes, and uncontended timing beats parallel speed here. Note that
//! a cache hit replays the *stored* result — including measured runtimes
//! and anything computed under a time limit — so [`SolverSweep::timing`]
//! sweeps print a staleness note on hits; pass `--no-cache` to
//! re-measure on the current build and machine.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use eva_core::TaskSnapshot;
use eva_sim::{CellPool, PoolStats, ReportCache};
use eva_types::{JobId, SimDuration, TaskId};
use eva_workloads::WorkloadCatalog;

use crate::{cache_setting, print_stats, save_json};

/// `n` single-task snapshots sampled uniformly from the Table 7
/// workload pool under a fixed seed — the shared task population of the
/// table 4/5 micro-benchmarks.
pub fn random_tasks(seed: u64, n: usize) -> Vec<TaskSnapshot> {
    let workloads = WorkloadCatalog::table7();
    let pool: Vec<_> = workloads.iter().collect();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let w = pool[rng.gen_range(0..pool.len())];
            TaskSnapshot {
                id: TaskId::new(JobId(i as u64), 0),
                workload: w.kind,
                demand: w.demand.clone(),
                checkpoint_delay: SimDuration::ZERO,
                launch_delay: SimDuration::ZERO,
                gang_size: 1,
                gang_coupled: false,
                assigned_to: None,
                remaining_hint: None,
            }
        })
        .collect()
}

/// One micro-benchmark cell: a content key plus the closure computing it.
pub struct SolverCell<R> {
    key: String,
    run: Box<dyn Fn() -> R + Send + Sync>,
}

/// A declarative sweep of solver-level cells sharing the experiment
/// harness conventions (pool, cache, JSON artifacts).
pub struct SolverSweep<R> {
    name: String,
    threads: usize,
    reports_timings: bool,
    cells: Vec<SolverCell<R>>,
}

impl<R> SolverSweep<R>
where
    R: Clone + Send + Serialize + Deserialize,
{
    /// An empty sweep filed under `name` (the cache namespace and the
    /// `results/<name>.json` artifact stem).
    pub fn new(name: impl Into<String>) -> Self {
        SolverSweep {
            name: name.into(),
            threads: 1,
            reports_timings: false,
            cells: Vec::new(),
        }
    }

    /// Marks the sweep's results as wall-clock-dependent — measured
    /// runtimes, or anything computed under a time limit (table 4's
    /// branch-and-bound ratios depend on how far the solver got before
    /// its deadline). Cache hits then print a visible staleness note,
    /// because stored results describe the build and machine that
    /// produced them, not this run.
    pub fn timing(mut self) -> Self {
        self.reports_timings = true;
        self
    }

    /// Overrides the serial default (only sensible for cells that do not
    /// report wall-clock timings).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Declares one cell. `key` must identify the cell's *content*
    /// (sizes, seeds, limits): it is the dedup fingerprint and the
    /// persistent cache key, so equal keys must mean equal results.
    pub fn cell(mut self, key: impl Into<String>, run: impl Fn() -> R + Send + Sync + 'static) -> Self {
        self.cells.push(SolverCell {
            key: key.into(),
            run: Box::new(run),
        });
        self
    }

    /// Number of declared cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when no cells are declared.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Runs every cell with the cache resolved from the process's shared
    /// cache flags, printing the standard stats line.
    pub fn run(&self) -> Vec<R> {
        self.run_flagged().into_iter().map(|(r, _)| r).collect()
    }

    /// [`SolverSweep::run`], additionally reporting **per cell** whether
    /// its result was replayed from the persistent cache. Binaries whose
    /// rows carry wall-clock measurements stamp this flag into their
    /// JSON artifacts (`from_cache`), so downstream plots can tell a
    /// stored timing from one measured on this build and machine.
    pub fn run_flagged(&self) -> Vec<(R, bool)> {
        let (results, stats) = self.run_with_flags(cache_setting().as_ref());
        print_stats(&stats);
        if self.reports_timings && stats.cache_hits > 0 {
            println!(
                "   [note: {} cell(s) replayed *stored* wall-clock-dependent results \
                 (timings, time-limited solver outcomes) from the cache; rows are \
                 stamped `from_cache`; pass --no-cache to re-measure on this build \
                 and machine]",
                stats.cache_hits
            );
        }
        results
    }

    /// Runs with an explicit cache binding (testable form).
    pub fn run_with(&self, cache: Option<&ReportCache>) -> (Vec<R>, PoolStats) {
        let (results, stats) = self.run_with_flags(cache);
        (results.into_iter().map(|(r, _)| r).collect(), stats)
    }

    /// [`SolverSweep::run_with`] with per-cell cache-replay flags.
    pub fn run_with_flags(&self, cache: Option<&ReportCache>) -> (Vec<(R, bool)>, PoolStats) {
        let (results, flags, stats) = CellPool::new(self.threads).run_flagged(
            self.cells.len(),
            &|i| format!("solver|{}|{}", self.name, self.cells[i].key),
            &|i| (self.cells.len() - i) as u64, // declaration order
            cache,
            &|i| (self.cells[i].run)(),
        );
        (results.into_iter().zip(flags).collect(), stats)
    }

    /// Writes the sweep's results to `results/<name>.json`.
    pub fn save(&self, results: &[R]) {
        save_json(&format!("{}.json", self.name), &results.to_vec());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn sweep(counter: &'static AtomicUsize) -> SolverSweep<u64> {
        SolverSweep::new("unit-test")
            .cell("n:1", move || {
                counter.fetch_add(1, Ordering::Relaxed);
                10
            })
            .cell("n:2", move || {
                counter.fetch_add(1, Ordering::Relaxed);
                20
            })
    }

    #[test]
    fn cells_run_in_declaration_order() {
        static RUNS: AtomicUsize = AtomicUsize::new(0);
        let s = sweep(&RUNS);
        assert_eq!(s.len(), 2);
        let (results, stats) = s.run_with(None);
        assert_eq!(results, vec![10, 20]);
        assert_eq!(stats.executed, 2);
        assert_eq!(RUNS.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn cache_round_trip_skips_execution_and_flags_replays() {
        static RUNS: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!("eva-solver-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ReportCache::new(&dir);
        let s = sweep(&RUNS);
        let (first, s1) = s.run_with_flags(Some(&cache));
        let (second, s2) = s.run_with_flags(Some(&cache));
        assert_eq!(first.iter().map(|(r, _)| *r).collect::<Vec<_>>(), vec![10, 20]);
        assert_eq!(first.iter().map(|(r, _)| *r).collect::<Vec<_>>(),
                   second.iter().map(|(r, _)| *r).collect::<Vec<_>>());
        // Fresh rows are unflagged; the warm rerun replays stored rows.
        assert!(first.iter().all(|(_, cached)| !cached));
        assert!(second.iter().all(|(_, cached)| *cached));
        assert_eq!(s1.executed, 2);
        assert!(s2.all_cached());
        assert_eq!(RUNS.load(Ordering::Relaxed), 2, "second run hit the cache");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn equal_keys_deduplicate() {
        let s = SolverSweep::<u64>::new("dedup")
            .cell("same", || 7)
            .cell("same", || unreachable!("duplicate key must not run"));
        let (results, stats) = s.run_with(None);
        assert_eq!(results, vec![7, 7]);
        assert_eq!(stats.unique, 1);
    }
}
