//! Experiment harness shared by every table/figure binary.
//!
//! Each `exp_*` binary in `src/bin/` regenerates one table or figure of
//! the paper (see the README's experiment index). Binaries declare their
//! `(scheduler × trace × seed × …)` cells as an [`eva_sim::SweepGrid`]
//! and run them through the multi-threaded [`eva_sim::SweepRunner`] —
//! results are deterministic and byte-identical for any worker count.
//! Binaries print the same rows/series the paper reports and write
//! machine-readable JSON to `results/`. Scales default to laptop-friendly
//! sizes; set `EVA_FULL=1` to run the paper-sized configurations (e.g.
//! the full 6,274-job trace), and `EVA_THREADS=N` to pin the sweep worker
//! count (default: all available cores).

use std::path::PathBuf;

use eva_sim::{SchedulerKind, SimReport, SweepGrid, SweepRunner};
use eva_workloads::Trace;

/// True when `EVA_FULL=1` requests paper-scale experiments.
pub fn is_full_scale() -> bool {
    std::env::var("EVA_FULL").map(|v| v == "1").unwrap_or(false)
}

/// Sweep worker count: `EVA_THREADS=N` if set, otherwise 0 (which
/// [`SweepRunner::new`] resolves to all available cores).
pub fn default_threads() -> usize {
    std::env::var("EVA_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// The five schedulers of §6.1 in the paper's reporting order.
pub fn scheduler_set() -> Vec<SchedulerKind> {
    SchedulerKind::paper_set()
}

/// Declares `kinds` on `grid` with unique names (duplicate report labels —
/// e.g. several Eva variants — get a positional suffix).
pub fn add_schedulers(mut grid: SweepGrid, kinds: Vec<SchedulerKind>) -> SweepGrid {
    let mut seen: Vec<String> = Vec::new();
    for kind in kinds {
        let base = kind.label().to_string();
        let name = if seen.contains(&base) {
            format!("{base}#{}", seen.iter().filter(|s| **s == base).count() + 1)
        } else {
            base.clone()
        };
        seen.push(base);
        grid = grid.scheduler(name, kind);
    }
    grid
}

/// Runs one trace under several schedulers — fanned out across sweep
/// workers — printing paper-style rows in declaration order (first
/// scheduler is the normalization baseline) and returning reports.
pub fn run_and_print(trace: &Trace, kinds: Vec<SchedulerKind>, header: &str) -> Vec<SimReport> {
    println!("== {header} ==");
    println!(
        "   trace: {} jobs, arrival span {:.1}h",
        trace.len(),
        trace.stats().arrival_span_hours
    );
    let grid = add_schedulers(SweepGrid::new("trace", trace.clone()), kinds);
    let result = SweepRunner::new(default_threads()).run(&grid);
    let reports: Vec<SimReport> = result.reports().cloned().collect();
    for (i, report) in reports.iter().enumerate() {
        let baseline = (i > 0).then(|| &reports[0]);
        println!("{}", report.table_row(baseline));
    }
    reports
}

/// The directory experiment outputs are written to.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results");
    std::fs::create_dir_all(&dir).ok();
    dir
}

/// Writes a JSON artifact into `results/`.
pub fn save_json<T: serde::Serialize>(name: &str, value: &T) {
    let path = results_dir().join(name);
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("   [saved {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: serialization failed for {name}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduler_set_matches_paper_order() {
        let kinds = scheduler_set();
        assert_eq!(kinds.len(), 5);
        assert_eq!(kinds[0].label(), "No-Packing");
        assert_eq!(kinds[4].label(), "Eva");
    }

    #[test]
    fn duplicate_scheduler_labels_get_unique_names() {
        use eva_core::EvaConfig;
        let grid = add_schedulers(
            SweepGrid::new("t", Trace::new(vec![])),
            vec![
                SchedulerKind::Eva(EvaConfig::eva()),
                SchedulerKind::Eva(EvaConfig::eva_rp()),
                SchedulerKind::NoPacking,
            ],
        );
        let names: Vec<String> = grid
            .cells()
            .iter()
            .map(|c| c.key.scheduler.clone())
            .collect();
        assert_eq!(names, vec!["Eva", "Eva#2", "No-Packing"]);
    }

    #[test]
    fn results_dir_is_creatable() {
        let dir = results_dir();
        assert!(dir.exists());
    }
}
