//! Experiment harness shared by every table/figure binary.
//!
//! Each `exp_*` binary in `src/bin/` regenerates one table or figure of
//! the paper (see the README's experiment index). Binaries print the same
//! rows/series the paper reports and write machine-readable JSON to
//! `results/`. Scales default to laptop-friendly sizes; set `EVA_FULL=1`
//! to run the paper-sized configurations (e.g. the full 6,274-job trace).

use std::path::PathBuf;

use eva_core::EvaConfig;
use eva_sim::{run_simulation, SchedulerKind, SimConfig, SimReport};
use eva_workloads::Trace;

/// True when `EVA_FULL=1` requests paper-scale experiments.
pub fn is_full_scale() -> bool {
    std::env::var("EVA_FULL").map(|v| v == "1").unwrap_or(false)
}

/// The five schedulers of §6.1 in the paper's reporting order.
pub fn scheduler_set() -> Vec<SchedulerKind> {
    vec![
        SchedulerKind::NoPacking,
        SchedulerKind::Stratus,
        SchedulerKind::Synergy,
        SchedulerKind::Owl,
        SchedulerKind::Eva(EvaConfig::eva()),
    ]
}

/// Runs one trace under several schedulers, printing paper-style rows
/// (first scheduler is the normalization baseline) and returning reports.
pub fn run_and_print(trace: &Trace, kinds: Vec<SchedulerKind>, header: &str) -> Vec<SimReport> {
    println!("== {header} ==");
    println!(
        "   trace: {} jobs, arrival span {:.1}h",
        trace.len(),
        trace.stats().arrival_span_hours
    );
    let mut reports = Vec::new();
    for kind in kinds {
        let cfg = SimConfig::new(trace.clone(), kind);
        let report = run_simulation(&cfg);
        let baseline = reports.first();
        println!("{}", report.table_row(baseline));
        reports.push(report);
    }
    reports
}

/// The directory experiment outputs are written to.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results");
    std::fs::create_dir_all(&dir).ok();
    dir
}

/// Writes a JSON artifact into `results/`.
pub fn save_json<T: serde::Serialize>(name: &str, value: &T) {
    let path = results_dir().join(name);
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("   [saved {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: serialization failed for {name}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduler_set_matches_paper_order() {
        let kinds = scheduler_set();
        assert_eq!(kinds.len(), 5);
        assert_eq!(kinds[0].label(), "No-Packing");
        assert_eq!(kinds[4].label(), "Eva");
    }

    #[test]
    fn results_dir_is_creatable() {
        let dir = results_dir();
        assert!(dir.exists());
    }
}
