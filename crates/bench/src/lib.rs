//! Experiment harness shared by every table/figure binary.
//!
//! Each `exp_*` binary in `src/bin/` regenerates one table or figure of
//! the paper (see the README's experiment index). Binaries declare their
//! `(scheduler × trace × seed × …)` cells as an [`eva_sim::SweepGrid`]
//! and run them through the multi-threaded [`eva_sim::SweepRunner`] —
//! results are deterministic and byte-identical for any worker count.
//! Binaries print the same rows/series the paper reports and write
//! machine-readable JSON to `results/`. Scales default to laptop-friendly
//! sizes; set `EVA_FULL=1` to run the paper-sized configurations (e.g.
//! the full 6,274-job trace), and `EVA_THREADS=N` to pin the sweep worker
//! count (default: all available cores).
//!
//! Every binary also shares the **persistent report cache** (see
//! [`eva_sim::ReportCache`]): finished cells land in `results/cache/`
//! keyed by content fingerprint, so rerunning an experiment — or another
//! experiment declaring overlapping cells — simulates only what is new.
//! Cache flags, accepted by all `exp_*` binaries:
//!
//! * `--no-cache` — simulate everything, touch no cache;
//! * `--cache` — explicit form of the default;
//! * `--cache-dir DIR` — use `DIR` instead of `results/cache`
//!   (`EVA_CACHE_DIR` is the env equivalent).
//!
//! Sweeps also **federate across processes**: `--procs N` (env
//! `EVA_PROCS`) makes any `exp_*` binary spawn `N - 1` worker copies of
//! itself that claim cells from the shared cache dir via atomic
//! `<fnv>.claim` files and publish results back — see
//! [`eva_sim::Federation`]. The coordinator merges in logical cell
//! order, so output stays byte-identical to `--procs 1`. Federation
//! requires the cache (it *is* the coordination substrate), so
//! combining `--procs N` with `--no-cache` is a flag error. Every
//! `exp_*` main ends with [`finish`], which joins spawned workers.
//!
//! The adversarial fault axis is likewise shared: every `exp_*` binary
//! accepts `--faults REGIME[:INTENSITY]` (env `EVA_FAULTS`) and runs its
//! whole grid under that injected regime — no per-experiment code, the
//! harness sets the grid's fault axis. Fault-plan fingerprints are part
//! of every cache key, so faulted and fault-free cells never alias.
//!
//! Solver-level micro-benchmarks (tables 4–6) share the same cell
//! machinery through [`solver::SolverSweep`].

use std::path::PathBuf;

use eva_sim::{
    join_workers, worker_role, FaultSpec, Federation, PoolStats, ReportCache, SchedulerKind,
    SimReport, SplicedResult, SweepArtifact, SweepGrid, SweepResult, SweepRunner,
};
use eva_workloads::{ShardMeta, ShardPolicy, Trace};

pub mod solver;

/// True when `EVA_FULL=1` requests paper-scale experiments.
pub fn is_full_scale() -> bool {
    std::env::var("EVA_FULL").map(|v| v == "1").unwrap_or(false)
}

/// Sweep worker count: `EVA_THREADS=N` if set, otherwise 0 (which
/// [`SweepRunner::new`] resolves to all available cores).
pub fn default_threads() -> usize {
    std::env::var("EVA_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// The default persistent cache location, `results/cache/`.
pub fn default_cache_dir() -> PathBuf {
    results_dir().join("cache")
}

/// Resolves the shared cache flags (`--cache`, `--no-cache`,
/// `--cache-dir DIR`, env `EVA_CACHE_DIR`) from this process's argument
/// list. Caching defaults to **on** under [`default_cache_dir`]; `None`
/// means `--no-cache` was passed.
pub fn cache_setting() -> Option<ReportCache> {
    cache_setting_from(std::env::args().skip(1))
}

/// [`cache_setting`] over an explicit argument list (testable form).
/// Unrecognized arguments are ignored — binaries with their own flags
/// keep working.
pub fn cache_setting_from(args: impl IntoIterator<Item = String>) -> Option<ReportCache> {
    let mut enabled = true;
    let mut dir: Option<PathBuf> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--no-cache" => enabled = false,
            "--cache" => enabled = true,
            "--cache-dir" => {
                dir = it.next().map(PathBuf::from);
                enabled = true;
            }
            _ => {}
        }
    }
    if dir.is_none() {
        if let Ok(env_dir) = std::env::var("EVA_CACHE_DIR") {
            dir = Some(PathBuf::from(env_dir));
        }
    }
    enabled.then(|| ReportCache::new(dir.unwrap_or_else(default_cache_dir)))
}

/// Resolves the shared `--procs N` flag (env equivalent `EVA_PROCS`)
/// from this process's argument list: the total process count of a
/// federated sweep, coordinator included. Defaults to 1 — an ordinary
/// single-process run. Invalid counts abort the binary with a
/// flag-style error.
pub fn procs_setting() -> usize {
    match procs_setting_from(std::env::args().skip(1)) {
        Ok(procs) => procs,
        Err(e) => {
            eprintln!("error: --procs: {e}");
            std::process::exit(2);
        }
    }
}

/// [`procs_setting`] over an explicit argument list (testable form).
/// Unrecognized arguments are ignored, like [`cache_setting_from`].
pub fn procs_setting_from(args: impl IntoIterator<Item = String>) -> Result<usize, String> {
    let mut value: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--procs" {
            value = Some(it.next().ok_or("the flag needs a value")?);
        }
    }
    if value.is_none() {
        if let Ok(env) = std::env::var("EVA_PROCS") {
            value = Some(env);
        }
    }
    match value {
        None => Ok(1),
        Some(v) => match v.parse::<usize>() {
            Ok(0) => Err("a federation needs at least one process".to_string()),
            Ok(n) => Ok(n),
            Err(_) => Err(format!("invalid process count '{v}'")),
        },
    }
}

/// The sweep runner every experiment binary shares: `EVA_THREADS`
/// workers plus the persistent report cache (unless `--no-cache`),
/// federated across `--procs`/`EVA_PROCS` processes when more than one
/// was requested (or when this process *is* a spawned worker).
pub fn runner() -> SweepRunner {
    let mut runner = SweepRunner::new(default_threads());
    let cache = cache_setting();
    let procs = procs_setting();
    if procs > 1 || worker_role() {
        if cache.is_none() {
            eprintln!(
                "error: --procs: federated sweeps coordinate through the cache dir; drop --no-cache"
            );
            std::process::exit(2);
        }
        runner = runner.with_federation(Federation::new(procs));
    }
    match cache {
        Some(cache) => runner.with_cache(cache),
        None => runner,
    }
}

/// Resolves the shared `--shard` flag (`--shard N` or
/// `--shard auto[:JOBS]`, env equivalent `EVA_SHARD`) from this
/// process's argument list. `None` means unsharded — the default.
/// Invalid values abort the binary with a flag-style error, like any
/// other bad experiment flag.
pub fn shard_setting() -> Option<ShardPolicy> {
    match shard_setting_from(std::env::args().skip(1)) {
        Ok(policy) => policy,
        Err(e) => {
            eprintln!("error: --shard: {e}");
            std::process::exit(2);
        }
    }
}

/// [`shard_setting`] over an explicit argument list (testable form).
/// Unrecognized arguments are ignored, like [`cache_setting_from`].
pub fn shard_setting_from(
    args: impl IntoIterator<Item = String>,
) -> Result<Option<ShardPolicy>, String> {
    let mut value: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--shard" {
            value = Some(it.next().ok_or("the flag needs a value")?);
        }
    }
    if value.is_none() {
        if let Ok(env) = std::env::var("EVA_SHARD") {
            value = Some(env);
        }
    }
    value.map(|v| ShardPolicy::parse(&v)).transpose()
}

/// Resolves the shared `--faults REGIME[:INTENSITY]` flag (env
/// equivalent `EVA_FAULTS`) from this process's argument list. `None`
/// means fault-free — the default. Invalid regimes or intensities abort
/// the binary with a flag-style error.
pub fn faults_setting() -> Option<FaultSpec> {
    match faults_setting_from(std::env::args().skip(1)) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("error: --faults: {e}");
            std::process::exit(2);
        }
    }
}

/// [`faults_setting`] over an explicit argument list (testable form).
/// Unrecognized arguments are ignored, like [`cache_setting_from`].
pub fn faults_setting_from(
    args: impl IntoIterator<Item = String>,
) -> Result<Option<FaultSpec>, String> {
    let mut value: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--faults" {
            value = Some(it.next().ok_or("the flag needs a value")?);
        }
    }
    if value.is_none() {
        if let Ok(env) = std::env::var("EVA_FAULTS") {
            value = Some(env);
        }
    }
    value.map(|v| FaultSpec::parse(&v)).transpose()
}

/// Applies the process's `--faults` setting to `grid` as the fault axis,
/// printing the injected regime whenever one was requested. A no-op
/// without `--faults` — the grid keeps its fault-free default axis.
pub fn apply_faults(grid: SweepGrid) -> SweepGrid {
    let Some(spec) = faults_setting() else {
        return grid;
    };
    if !spec.is_none() {
        println!("   [faults: {}]", spec.label());
    }
    grid.faults(vec![spec])
}

/// Applies the process's `--shard` setting to `grid`, printing what the
/// planner actually did (window count, jobs per window, boundary
/// straddlers) whenever sharding was requested. A no-op without
/// `--shard`.
pub fn apply_shard(grid: SweepGrid) -> SweepGrid {
    let Some(policy) = shard_setting() else {
        return grid;
    };
    let grid = grid.shards(policy);
    println!(
        "   [shard plan: {}]",
        ShardMeta::plan_summary(&grid.shard_metas())
    );
    grid
}

/// Runs a grid the standard experiment way, inheriting every shared
/// process flag: applies `--shard` (printing the plan), runs on the
/// shared [`runner`] (`EVA_THREADS` + cache flags), prints the stats
/// line and the partition audit, and returns the [`SweepArtifact`]
/// binaries should both report from (`artifact.spliced` — whole-trace
/// rows carrying the audit) and save. Without `--shard` the spliced
/// view is an exact pass-through, so `artifact.spliced.blocks()`
/// matches the unsharded grid's block structure either way.
pub fn run_grid(grid: SweepGrid) -> SweepArtifact {
    let grid = apply_shard(apply_faults(grid));
    let (result, stats) = runner().run_with_stats(&grid);
    print_stats(&stats);
    let spliced = spliced_view(&result);
    SweepArtifact {
        sweep: result,
        spliced,
    }
}

/// The whole-trace view an experiment should report: splices shard
/// cells back together and prints the partition-audit line whenever the
/// sweep was actually sharded. On an unsharded sweep this is an exact
/// pass-through of the per-cell reports, and nothing is printed.
pub fn spliced_view(result: &SweepResult) -> SplicedResult {
    let spliced = result.spliced();
    if spliced.cells.iter().any(|c| c.shards > 1) {
        if let Some(audit) = spliced.audit() {
            println!("   [partition audit: {}]", audit.summary());
        }
    }
    spliced
}

/// Prints the standard one-line cache/dedup summary after a sweep.
pub fn print_stats(stats: &PoolStats) {
    println!("   [cells: {}]", stats.summary());
}

/// The five schedulers of §6.1 in the paper's reporting order.
pub fn scheduler_set() -> Vec<SchedulerKind> {
    SchedulerKind::paper_set()
}

/// Declares `kinds` on `grid` with unique names (duplicate report labels —
/// e.g. several Eva variants — get a positional suffix).
pub fn add_schedulers(mut grid: SweepGrid, kinds: Vec<SchedulerKind>) -> SweepGrid {
    let mut seen: Vec<String> = Vec::new();
    for kind in kinds {
        let base = kind.label().to_string();
        let name = if seen.contains(&base) {
            format!("{base}#{}", seen.iter().filter(|s| **s == base).count() + 1)
        } else {
            base.clone()
        };
        seen.push(base);
        grid = grid.scheduler(name, kind);
    }
    grid
}

/// Runs one trace under several schedulers — fanned out across sweep
/// workers — printing paper-style rows in declaration order (first
/// scheduler is the normalization baseline) and returning reports.
///
/// Honors the shared `--shard` flag: a sharded run executes one cell
/// per (window × scheduler), prints the shard plan and partition audit,
/// and the returned reports are the spliced whole-trace rows (still one
/// per scheduler, in declaration order).
pub fn run_and_print(trace: &Trace, kinds: Vec<SchedulerKind>, header: &str) -> Vec<SimReport> {
    println!("== {header} ==");
    println!(
        "   trace: {} jobs, arrival span {:.1}h",
        trace.len(),
        trace.stats().arrival_span_hours
    );
    let grid = apply_shard(apply_faults(add_schedulers(
        SweepGrid::new("trace", trace.clone()),
        kinds,
    )));
    let (result, stats) = runner().run_with_stats(&grid);
    print_stats(&stats);
    let reports: Vec<SimReport> = spliced_view(&result)
        .cells
        .into_iter()
        .map(|c| c.report)
        .collect();
    for (i, report) in reports.iter().enumerate() {
        let baseline = (i > 0).then(|| &reports[0]);
        println!("{}", report.table_row(baseline));
    }
    reports
}

/// The directory experiment outputs are written to.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results");
    std::fs::create_dir_all(&dir).ok();
    dir
}

/// Experiment epilogue: waits for any federation workers this process
/// spawned (`--procs`/`EVA_PROCS`). Every `exp_*` main ends with this
/// so the binary never exits with children still holding claims; it is
/// a no-op in unfederated runs and inside workers.
pub fn finish() {
    join_workers();
}

/// Writes a JSON artifact into `results/`. Federation workers skip the
/// write — only the coordinator owns `results/` artifacts.
pub fn save_json<T: serde::Serialize>(name: &str, value: &T) {
    if worker_role() {
        return;
    }
    let path = results_dir().join(name);
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("   [saved {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: serialization failed for {name}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduler_set_matches_paper_order() {
        let kinds = scheduler_set();
        assert_eq!(kinds.len(), 5);
        assert_eq!(kinds[0].label(), "No-Packing");
        assert_eq!(kinds[4].label(), "Eva");
    }

    #[test]
    fn duplicate_scheduler_labels_get_unique_names() {
        use eva_core::EvaConfig;
        let grid = add_schedulers(
            SweepGrid::new("t", Trace::new(vec![])),
            vec![
                SchedulerKind::Eva(EvaConfig::eva()),
                SchedulerKind::Eva(EvaConfig::eva_rp()),
                SchedulerKind::NoPacking,
            ],
        );
        let names: Vec<String> = grid
            .cells()
            .iter()
            .map(|c| c.key.scheduler.clone())
            .collect();
        assert_eq!(names, vec!["Eva", "Eva#2", "No-Packing"]);
    }

    #[test]
    fn results_dir_is_creatable() {
        let dir = results_dir();
        assert!(dir.exists());
    }

    #[test]
    fn shard_flags_resolve() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<String>>();
        assert_eq!(
            shard_setting_from(args(&["--shard", "4"])).unwrap(),
            Some(ShardPolicy::Windows(4))
        );
        assert_eq!(
            shard_setting_from(args(&["--jobs", "5", "--shard", "auto:25"])).unwrap(),
            Some(ShardPolicy::auto_with_budget(25))
        );
        // 0/1 windows and a missing value are flag errors, not silent
        // unsharded runs.
        assert!(shard_setting_from(args(&["--shard", "1"])).is_err());
        assert!(shard_setting_from(args(&["--shard"])).is_err());
        if std::env::var("EVA_SHARD").is_err() {
            assert_eq!(shard_setting_from(args(&["--jobs", "5"])).unwrap(), None);
        }
    }

    #[test]
    fn fault_flags_resolve() {
        use eva_sim::FaultRegime;
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<String>>();
        let storm = faults_setting_from(args(&["--faults", "preempt-storm:2"]))
            .unwrap()
            .unwrap();
        assert_eq!(storm.regime, FaultRegime::PreemptStorm);
        assert_eq!(storm.intensity, 2.0);
        assert_eq!(
            faults_setting_from(args(&["--faults", "none"])).unwrap(),
            Some(FaultSpec::none())
        );
        // Bad regimes and a missing value are flag errors.
        assert!(faults_setting_from(args(&["--faults", "meteor"])).is_err());
        assert!(faults_setting_from(args(&["--faults"])).is_err());
        if std::env::var("EVA_FAULTS").is_err() {
            assert_eq!(faults_setting_from(args(&["--jobs", "5"])).unwrap(), None);
        }
    }

    #[test]
    fn procs_flags_resolve() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<String>>();
        assert_eq!(procs_setting_from(args(&["--procs", "4"])).unwrap(), 4);
        assert_eq!(procs_setting_from(args(&["--procs", "1"])).unwrap(), 1);
        // Zero processes, junk counts, and a missing value are flag
        // errors, not silent single-process runs.
        assert!(procs_setting_from(args(&["--procs", "0"])).is_err());
        assert!(procs_setting_from(args(&["--procs", "two"])).is_err());
        assert!(procs_setting_from(args(&["--procs"])).is_err());
        if std::env::var("EVA_PROCS").is_err() {
            assert_eq!(procs_setting_from(args(&["--jobs", "5"])).unwrap(), 1);
        }
    }

    #[test]
    fn cache_flags_resolve() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<String>>();
        assert!(cache_setting_from(args(&["--no-cache"])).is_none());
        let explicit = cache_setting_from(args(&["--cache-dir", "/tmp/eva-x"])).unwrap();
        assert_eq!(explicit.dir(), std::path::Path::new("/tmp/eva-x"));
        // --cache-dir re-enables caching even after --no-cache.
        assert!(cache_setting_from(args(&["--no-cache", "--cache-dir", "/tmp/y"])).is_some());
        if std::env::var("EVA_CACHE_DIR").is_err() {
            let default = cache_setting_from(args(&["--jobs", "5"])).unwrap();
            assert!(default.dir().ends_with("cache"), "{:?}", default.dir());
        }
    }
}
