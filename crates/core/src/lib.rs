//! The Eva scheduler — the paper's primary contribution (§4).
//!
//! Eva jointly optimizes task-to-instance assignment and instance
//! provisioning to minimize total cloud cost. The pieces:
//!
//! * **Reservation price** ([`reservation`]): the hourly cost of the
//!   cheapest instance type that can host a task standalone — the metric
//!   that generalizes the "largest ball first" VSBPP heuristic to
//!   multi-dimensional resources (§4.2).
//! * **Throughput-normalized reservation price** ([`reservation`]): the
//!   reservation price discounted by the throughput a task would retain
//!   under co-location interference, with the multi-task job extension of
//!   §4.4.
//! * **Full Reconfiguration** ([`packing`]): Algorithm 1 — pack all tasks
//!   into instances, iterating instance types by descending cost and tasks
//!   by descending marginal TNRP, committing an instance only when the
//!   assigned set's TNRP covers its cost.
//! * **Partial Reconfiguration** ([`partial`]): repack only new tasks and
//!   tasks on no-longer-cost-efficient instances, leaving the rest of the
//!   cluster untouched (§4.5).
//! * **The reconfiguration decision** ([`decision`]): the quantitative
//!   criterion `S_F·D̂ − M_F > S_P·D̂ − M_P` with the Poisson/geometric
//!   estimate `D̂ = −1/(λ·ln(1−p))` of the time to the next Full
//!   Reconfiguration (§4.5).
//! * **The scheduler** ([`scheduler`]): [`EvaScheduler`] combines all of
//!   the above behind the [`Scheduler`] trait that the simulator and the
//!   live runtime drive; the baseline schedulers implement the same trait.

pub mod config;
pub mod decision;
pub mod packing;
pub mod partial;
pub mod plan;
pub mod reservation;
pub mod scheduler;

pub use config::{EvaConfig, ReconfigMode};
pub use decision::{DecisionInputs, EventRateEstimator, ReconfigDecision};
pub use packing::{full_reconfiguration, PackedConfig, PackedInstance};
pub use partial::partial_reconfiguration;
pub use plan::{
    Assignment, InstanceSnapshot, JobObservation, Plan, PlannedInstance, Scheduler,
    SchedulerContext, TaskSnapshot,
};
pub use reservation::{
    reservation_price, ReservationPrices, TnrpEvaluator, TputEstimator, UnitTput,
};
pub use scheduler::EvaScheduler;
