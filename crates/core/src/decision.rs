//! The Full-vs-Partial reconfiguration decision (§4.5).
//!
//! Eva chooses Full Reconfiguration when
//!
//! ```text
//! S_F × D̂ − M_F  >  S_P × D̂ − M_P          (Equation 1)
//! ```
//!
//! where `S` is a configuration's instantaneous provisioning saving
//! (`Σ_i TNRP(T_i) − C_i`), `M` its migration cost, and `D̂` the estimated
//! time until the next Full Reconfiguration. Modelling job arrivals and
//! completions as a Poisson process with rate `λ` and the probability that
//! an event triggers a Full Reconfiguration as `p` (geometric), the mean
//! time to the next Full Reconfiguration is
//!
//! ```text
//! D̂ = ∫₀^∞ (1 − p)^{λx} dx = −1 / (λ · ln(1 − p))
//! ```
//!
//! Both `λ` and `p` are estimated online by [`EventRateEstimator`].

use eva_types::{SimDuration, SimTime};

/// Inputs to the Equation 1 comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionInputs {
    /// `S_F`: hourly saving of the Full configuration (dollars/hr).
    pub full_saving: f64,
    /// `M_F`: one-off migration cost of adopting Full (dollars).
    pub full_migration_cost: f64,
    /// `S_P`: hourly saving of the Partial configuration (dollars/hr).
    pub partial_saving: f64,
    /// `M_P`: one-off migration cost of adopting Partial (dollars).
    pub partial_migration_cost: f64,
    /// `D̂`: estimated configuration lifetime (hours).
    pub estimated_duration_hours: f64,
}

/// The decision result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconfigDecision {
    /// Adopt the Full Reconfiguration plan.
    Full,
    /// Adopt the Partial Reconfiguration plan.
    Partial,
}

impl DecisionInputs {
    /// Evaluates Equation 1.
    pub fn decide(&self) -> ReconfigDecision {
        let d = self.estimated_duration_hours.max(0.0);
        let full_value = self.full_saving * d - self.full_migration_cost;
        let partial_value = self.partial_saving * d - self.partial_migration_cost;
        if full_value > partial_value {
            ReconfigDecision::Full
        } else {
            ReconfigDecision::Partial
        }
    }
}

/// Online estimator of the event rate `λ` (arrivals + completions per
/// hour) and the trigger probability `p`, plus the resulting `D̂`.
///
/// # Examples
///
/// ```
/// use eva_core::EventRateEstimator;
/// use eva_types::SimTime;
///
/// let mut est = EventRateEstimator::new(1.0, 0.5);
/// // 10 events over 2 hours, 3 of which triggered Full Reconfiguration.
/// est.record_events(7, false, SimTime::from_hours_f64(1.0));
/// est.record_events(3, true, SimTime::from_hours_f64(2.0));
/// assert!(est.lambda_per_hour() > 1.0);
/// assert!(est.estimated_duration_hours() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EventRateEstimator {
    initial_lambda: f64,
    initial_p: f64,
    events: u64,
    full_triggers: u64,
    last_update: Option<SimTime>,
    start: Option<SimTime>,
}

impl EventRateEstimator {
    /// Builds an estimator with priors used until data accumulates.
    pub fn new(initial_lambda: f64, initial_p: f64) -> Self {
        EventRateEstimator {
            initial_lambda: initial_lambda.max(1e-6),
            initial_p: initial_p.clamp(1e-3, 1.0 - 1e-3),
            events: 0,
            full_triggers: 0,
            last_update: None,
            start: None,
        }
    }

    /// Records `count` events observed by time `now`; `triggered_full`
    /// marks whether this round's events led to a Full Reconfiguration.
    pub fn record_events(&mut self, count: u64, triggered_full: bool, now: SimTime) {
        if self.start.is_none() {
            self.start = Some(now);
        }
        self.events += count;
        if triggered_full && count > 0 {
            self.full_triggers += 1;
        }
        self.last_update = Some(now);
    }

    /// Total events recorded.
    pub fn event_count(&self) -> u64 {
        self.events
    }

    /// `λ̂`: events per hour. Uses the prior until at least one hour of
    /// data and a few events exist.
    pub fn lambda_per_hour(&self) -> f64 {
        match (self.start, self.last_update) {
            (Some(start), Some(last)) => {
                let hours = last.duration_since(start).as_hours_f64();
                if hours < 0.5 || self.events < 4 {
                    self.initial_lambda
                } else {
                    (self.events as f64 / hours).max(1e-6)
                }
            }
            _ => self.initial_lambda,
        }
    }

    /// `p̂`: probability an event triggers a Full Reconfiguration, clamped
    /// away from 0 and 1 so `D̂` stays finite.
    pub fn p_trigger(&self) -> f64 {
        if self.events < 4 {
            self.initial_p
        } else {
            (self.full_triggers as f64 / self.events as f64).clamp(1e-3, 1.0 - 1e-3)
        }
    }

    /// `D̂ = −1 / (λ ln(1−p))` in hours.
    pub fn estimated_duration_hours(&self) -> f64 {
        let lambda = self.lambda_per_hour();
        let p = self.p_trigger();
        -1.0 / (lambda * (1.0 - p).ln())
    }

    /// `D̂` as a simulated duration.
    pub fn estimated_duration(&self) -> SimDuration {
        SimDuration::from_hours_f64(self.estimated_duration_hours())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equation1_prefers_full_when_savings_dominate() {
        let d = DecisionInputs {
            full_saving: 10.0,
            full_migration_cost: 2.0,
            partial_saving: 5.0,
            partial_migration_cost: 0.5,
            estimated_duration_hours: 1.0,
        };
        // 10 − 2 = 8 > 5 − 0.5 = 4.5.
        assert_eq!(d.decide(), ReconfigDecision::Full);
    }

    #[test]
    fn equation1_prefers_partial_when_migration_dominates() {
        let d = DecisionInputs {
            full_saving: 10.0,
            full_migration_cost: 8.0,
            partial_saving: 9.0,
            partial_migration_cost: 0.1,
            estimated_duration_hours: 0.5,
        };
        // 5 − 8 = −3 < 4.5 − 0.1 = 4.4.
        assert_eq!(d.decide(), ReconfigDecision::Partial);
    }

    #[test]
    fn longer_horizons_amortize_migration() {
        let base = DecisionInputs {
            full_saving: 10.0,
            full_migration_cost: 8.0,
            partial_saving: 9.0,
            partial_migration_cost: 0.1,
            estimated_duration_hours: 0.5,
        };
        assert_eq!(base.decide(), ReconfigDecision::Partial);
        let long = DecisionInputs {
            estimated_duration_hours: 20.0,
            ..base
        };
        // (10−9)×20 = 20 > 8 − 0.1.
        assert_eq!(long.decide(), ReconfigDecision::Full);
    }

    #[test]
    fn ties_fall_to_partial() {
        let d = DecisionInputs {
            full_saving: 1.0,
            full_migration_cost: 0.0,
            partial_saving: 1.0,
            partial_migration_cost: 0.0,
            estimated_duration_hours: 1.0,
        };
        assert_eq!(d.decide(), ReconfigDecision::Partial);
    }

    #[test]
    fn dhat_formula_matches_closed_form() {
        // λ = 2/hr, p = 0.5: D̂ = −1/(2 ln 0.5) = 1/(2 ln 2) ≈ 0.721 h.
        let mut est = EventRateEstimator::new(2.0, 0.5);
        // Prior-only regime.
        let d = est.estimated_duration_hours();
        assert!((d - 1.0 / (2.0 * std::f64::consts::LN_2)).abs() < 1e-9);
        // After data: 8 events in 4 hours (λ=2), 4 triggers (p=0.5).
        for i in 1..=4u64 {
            est.record_events(2, i % 2 == 0, SimTime::from_hours_f64(i as f64));
        }
        // Events measured from first record at t=1h to t=4h: 8 events / 3h.
        let lambda = est.lambda_per_hour();
        assert!((lambda - 8.0 / 3.0).abs() < 1e-9);
        assert!((est.p_trigger() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn estimator_uses_priors_with_little_data() {
        let est = EventRateEstimator::new(1.5, 0.3);
        assert_eq!(est.lambda_per_hour(), 1.5);
        assert_eq!(est.p_trigger(), 0.3);
        assert!(est.estimated_duration_hours() > 0.0);
    }

    #[test]
    fn p_is_clamped_away_from_one() {
        let mut est = EventRateEstimator::new(1.0, 0.5);
        for i in 1..=10u64 {
            est.record_events(1, true, SimTime::from_hours_f64(i as f64));
        }
        assert!(est.p_trigger() < 1.0);
        assert!(est.estimated_duration_hours().is_finite());
        assert!(est.estimated_duration_hours() > 0.0);
    }

    #[test]
    fn higher_event_rates_shorten_dhat() {
        // With equal trigger probability p, a higher event rate λ means the
        // next Full Reconfiguration arrives sooner (D̂ = −1/(λ ln(1−p))).
        let slow = EventRateEstimator::new(1.0, 0.5);
        let fast = EventRateEstimator::new(10.0, 0.5);
        assert!(fast.estimated_duration_hours() < slow.estimated_duration_hours());
        assert!(
            (slow.estimated_duration_hours() / fast.estimated_duration_hours() - 10.0).abs() < 1e-9
        );
    }
}
