//! The Eva scheduler: ensemble of Full and Partial Reconfiguration.
//!
//! Each round the scheduler (1) updates its interference table from the
//! round's throughput observations, (2) computes both candidate
//! configurations, (3) *concretizes* them against the live cluster —
//! mapping abstract packed instances onto existing instances of the same
//! type with maximal task overlap so that unchanged assignments migrate
//! nothing — and (4) picks one via the Equation 1 criterion.

use std::collections::{BTreeMap, BTreeSet};

use eva_interference::ThroughputMonitor;
use eva_types::{InstanceId, InstanceTypeId, JobId, TaskId};

use crate::config::{EvaConfig, ReconfigMode};
use crate::decision::{DecisionInputs, EventRateEstimator, ReconfigDecision};
use crate::packing::{full_reconfiguration, PackedConfig};
use crate::partial::partial_reconfiguration;
use crate::plan::{Assignment, JobObservation, Plan, PlannedInstance, Scheduler, SchedulerContext};
use crate::reservation::{ReservationPrices, TnrpEvaluator, TputEstimator, UnitTput};

/// The Eva scheduler (§4).
///
/// # Examples
///
/// ```
/// use eva_cloud::Catalog;
/// use eva_core::{EvaConfig, EvaScheduler, Scheduler, SchedulerContext};
/// use eva_types::SimTime;
///
/// let mut eva = EvaScheduler::new(EvaConfig::eva());
/// let catalog = Catalog::aws_eval_2025();
/// let ctx = SchedulerContext { now: SimTime::ZERO, catalog: &catalog, tasks: &[], instances: &[] };
/// let plan = eva.plan(&ctx);
/// assert!(plan.assignments.is_empty());
/// ```
pub struct EvaScheduler {
    cfg: EvaConfig,
    monitor: ThroughputMonitor,
    estimator: EventRateEstimator,
    prev_jobs: BTreeSet<JobId>,
    full_adopted: u64,
    partial_adopted: u64,
}

impl EvaScheduler {
    /// Builds an Eva scheduler.
    pub fn new(cfg: EvaConfig) -> Self {
        let monitor = ThroughputMonitor::with_default_tput(cfg.default_tput);
        let estimator = EventRateEstimator::new(cfg.initial_lambda, cfg.initial_p);
        EvaScheduler {
            cfg,
            monitor,
            estimator,
            prev_jobs: BTreeSet::new(),
            full_adopted: 0,
            partial_adopted: 0,
        }
    }

    /// The learned co-location table (read access, e.g. for inspection).
    pub fn monitor(&self) -> &ThroughputMonitor {
        &self.monitor
    }

    /// `(full, partial)` adoption counts — Figure 5a's proportion metric.
    pub fn adoption_counts(&self) -> (u64, u64) {
        (self.full_adopted, self.partial_adopted)
    }

    /// Fraction of rounds that adopted Full Reconfiguration.
    pub fn full_adoption_rate(&self) -> f64 {
        let total = self.full_adopted + self.partial_adopted;
        if total == 0 {
            0.0
        } else {
            self.full_adopted as f64 / total as f64
        }
    }

    /// Turns an abstract packed configuration into a concrete plan by
    /// reusing existing instances: each packed instance grabs the unused
    /// live instance of the same type with the largest task overlap.
    fn concretize(
        packed: &PackedConfig,
        kept: Vec<(InstanceId, Vec<TaskId>)>,
        ctx: &SchedulerContext<'_>,
        reusable: &[InstanceId],
    ) -> Plan {
        let mut current_on: BTreeMap<InstanceId, BTreeSet<TaskId>> = BTreeMap::new();
        let mut type_of: BTreeMap<InstanceId, InstanceTypeId> = BTreeMap::new();
        for inst in ctx.instances {
            type_of.insert(inst.id, inst.type_id);
            current_on.entry(inst.id).or_default();
        }
        for t in ctx.tasks {
            if let Some(id) = t.assigned_to {
                current_on.entry(id).or_default().insert(t.id);
            }
        }
        let mut available: BTreeSet<InstanceId> = reusable.iter().copied().collect();
        let mut assignments: Vec<Assignment> = kept
            .into_iter()
            .map(|(id, tasks)| Assignment {
                instance: PlannedInstance::Existing(id),
                tasks,
            })
            .collect();

        for inst in &packed.instances {
            let want: BTreeSet<TaskId> = inst.tasks.iter().copied().collect();
            let best = available
                .iter()
                .filter(|id| type_of.get(id) == Some(&inst.type_id))
                .map(|id| {
                    let overlap = current_on
                        .get(id)
                        .map(|cur| cur.intersection(&want).count())
                        .unwrap_or(0);
                    (*id, overlap)
                })
                .max_by_key(|(id, overlap)| (*overlap, std::cmp::Reverse(*id)));
            let target = match best {
                Some((id, overlap)) if overlap > 0 => {
                    available.remove(&id);
                    PlannedInstance::Existing(id)
                }
                _ => PlannedInstance::New(inst.type_id),
            };
            assignments.push(Assignment {
                instance: target,
                tasks: inst.tasks.clone(),
            });
        }

        // Anything live and unclaimed is terminated once drained.
        let used: BTreeSet<InstanceId> = assignments
            .iter()
            .filter_map(|a| match a.instance {
                PlannedInstance::Existing(id) => Some(id),
                PlannedInstance::New(_) => None,
            })
            .collect();
        let terminate: Vec<InstanceId> = ctx
            .instances
            .iter()
            .map(|i| i.id)
            .filter(|id| !used.contains(id))
            .collect();

        Plan {
            assignments,
            terminate,
            full_reconfiguration: false,
        }
    }

    /// Migration cost `M` of adopting `plan` (dollars): each moved task's
    /// checkpoint+launch delay billed at the destination's hourly rate
    /// (the paper computes `M` from "task migration delays and the cost of
    /// the involved instances"). First placements cost the same under both
    /// candidate plans and are excluded.
    fn migration_cost_dollars(&self, plan: &Plan, ctx: &SchedulerContext<'_>) -> f64 {
        let type_cost = |instance: &PlannedInstance| -> f64 {
            let type_id = match instance {
                PlannedInstance::Existing(id) => ctx
                    .instances
                    .iter()
                    .find(|i| i.id == *id)
                    .map(|i| i.type_id),
                PlannedInstance::New(ty) => Some(*ty),
            };
            type_id
                .and_then(|ty| ctx.catalog.get(ty))
                .map(|t| t.hourly_cost.as_dollars())
                .unwrap_or(0.0)
        };
        let mut cost = 0.0;
        for a in &plan.assignments {
            let dest_cost = type_cost(&a.instance);
            for tid in &a.tasks {
                let Some(snap) = ctx.tasks.iter().find(|t| t.id == *tid) else {
                    continue;
                };
                let moved = match (&a.instance, snap.assigned_to) {
                    (PlannedInstance::Existing(target), Some(cur)) => *target != cur,
                    (PlannedInstance::New(_), Some(_)) => true,
                    (_, None) => false,
                };
                if moved {
                    cost += snap.migration_delay().as_hours_f64() * dest_cost;
                }
            }
        }
        cost
    }
}

impl Scheduler for EvaScheduler {
    fn name(&self) -> &'static str {
        match (self.cfg.use_tnrp, self.cfg.multi_task_aware, self.cfg.mode) {
            (false, _, _) => "Eva-RP",
            (true, false, _) => "Eva-Single",
            (true, true, ReconfigMode::FullOnly) => "Eva-FullOnly",
            (true, true, ReconfigMode::PartialOnly) => "Eva-PartialOnly",
            (true, true, ReconfigMode::Ensemble) => "Eva",
        }
    }

    fn plan(&mut self, ctx: &SchedulerContext<'_>) -> Plan {
        // Count job arrival/completion events since the last round.
        let jobs_now: BTreeSet<JobId> = ctx.tasks.iter().map(|t| t.id.job).collect();
        let arrivals = jobs_now.difference(&self.prev_jobs).count() as u64;
        let completions = self.prev_jobs.difference(&jobs_now).count() as u64;
        let events = arrivals + completions;
        self.prev_jobs = jobs_now;

        let prices = ReservationPrices::compute(ctx.catalog, ctx.tasks.iter());
        let unit = UnitTput;
        let tput: &dyn TputEstimator = if self.cfg.use_tnrp {
            self.monitor.table()
        } else {
            &unit
        };
        let eval = TnrpEvaluator::new(tput, &prices, self.cfg.multi_task_aware);

        // Candidate 1: Full Reconfiguration over every task.
        let full_packed = full_reconfiguration(ctx.tasks, ctx.catalog, &eval);
        let all_ids: Vec<InstanceId> = ctx.instances.iter().map(|i| i.id).collect();
        let mut full_plan = Self::concretize(&full_packed, Vec::new(), ctx, &all_ids);
        full_plan.full_reconfiguration = true;

        // Candidate 2: Partial Reconfiguration.
        let partial_out = partial_reconfiguration(
            ctx.tasks,
            ctx.instances,
            ctx.catalog,
            &eval,
            self.cfg.refill_existing,
        );
        let partial_plan = Self::concretize(
            &partial_out.packed,
            partial_out.kept.clone(),
            ctx,
            &partial_out.terminate,
        );

        // Savings and migration costs.
        let s_f = full_packed.total_saving_dollars();
        let instance_types: BTreeMap<InstanceId, InstanceTypeId> =
            ctx.instances.iter().map(|i| (i.id, i.type_id)).collect();
        let s_p = partial_out.total_saving_dollars(ctx.tasks, ctx.catalog, &eval, &instance_types);
        let m_f = self.migration_cost_dollars(&full_plan, ctx);
        let m_p = self.migration_cost_dollars(&partial_plan, ctx);

        let decision = match self.cfg.mode {
            ReconfigMode::FullOnly => ReconfigDecision::Full,
            ReconfigMode::PartialOnly => ReconfigDecision::Partial,
            ReconfigMode::Ensemble => DecisionInputs {
                full_saving: s_f,
                full_migration_cost: m_f,
                partial_saving: s_p,
                partial_migration_cost: m_p,
                estimated_duration_hours: self.estimator.estimated_duration_hours(),
            }
            .decide(),
        };
        if std::env::var_os("EVA_DEBUG_DECISION").is_some() {
            eprintln!(
                "t={:.2}h tasks={} S_F={s_f:.2} S_P={s_p:.2} M_F={m_f:.2} M_P={m_p:.2} D={:.2}h -> {decision:?}",
                ctx.now.as_hours_f64(),
                ctx.tasks.len(),
                self.estimator.estimated_duration_hours(),
            );
        }

        // A Full adoption that actually changes something counts as a
        // "triggered" event for the p estimator.
        let full_changes = !full_plan.migrations(ctx.tasks, false).is_empty()
            || full_plan.new_instance_count() > 0
            || !full_plan.terminate.is_empty();
        let triggered = decision == ReconfigDecision::Full && full_changes;
        self.estimator.record_events(events, triggered, ctx.now);

        match decision {
            ReconfigDecision::Full => {
                self.full_adopted += 1;
                full_plan
            }
            ReconfigDecision::Partial => {
                self.partial_adopted += 1;
                partial_plan
            }
        }
    }

    fn observe(&mut self, observations: &[JobObservation]) {
        for obs in observations {
            if obs.gang_coupled && obs.contexts.len() > 1 {
                self.monitor
                    .observe_multi_task(obs.job, &obs.contexts, obs.observed_tput);
            } else {
                for ctx in &obs.contexts {
                    self.monitor
                        .observe_single_task(ctx.clone(), obs.observed_tput);
                }
            }
        }
    }
}

/// Helper shared with tests and the simulator: collect the task ids per
/// planned instance from a plan.
pub fn plan_assignment_map(plan: &Plan) -> BTreeMap<TaskId, PlannedInstance> {
    let mut map = BTreeMap::new();
    for a in &plan.assignments {
        for t in &a.tasks {
            map.insert(*t, a.instance);
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{InstanceSnapshot, TaskSnapshot};
    use eva_cloud::Catalog;
    use eva_interference::TaskContext;
    use eva_types::{DemandSpec, ResourceVector, SimDuration, SimTime, WorkloadKind};

    fn task(job: u64, gpu: u32, cpu: u32, ram_gb: u64, assigned: Option<u64>) -> TaskSnapshot {
        TaskSnapshot {
            id: TaskId::new(JobId(job), 0),
            workload: WorkloadKind((job % 8) as u32),
            demand: DemandSpec::uniform(ResourceVector::with_ram_gb(gpu, cpu, ram_gb)),
            checkpoint_delay: SimDuration::from_secs(2),
            launch_delay: SimDuration::from_secs(10),
            gang_size: 1,
            gang_coupled: false,
            assigned_to: assigned.map(InstanceId),
            remaining_hint: None,
        }
    }

    fn ctx_with<'a>(
        catalog: &'a Catalog,
        tasks: &'a [TaskSnapshot],
        instances: &'a [InstanceSnapshot],
        now_hours: f64,
    ) -> SchedulerContext<'a> {
        SchedulerContext {
            now: SimTime::from_hours_f64(now_hours),
            catalog,
            tasks,
            instances,
        }
    }

    #[test]
    fn empty_cluster_produces_empty_plan() {
        let catalog = Catalog::aws_eval_2025();
        let mut eva = EvaScheduler::new(EvaConfig::eva());
        let plan = eva.plan(&ctx_with(&catalog, &[], &[], 0.0));
        assert!(plan.assignments.is_empty());
        assert!(plan.terminate.is_empty());
    }

    #[test]
    fn first_round_places_all_tasks() {
        let catalog = Catalog::table3_example();
        let tasks = vec![
            task(1, 2, 8, 24, None),
            task(2, 1, 4, 10, None),
            task(3, 0, 6, 20, None),
            task(4, 0, 4, 12, None),
        ];
        let mut eva = EvaScheduler::new(EvaConfig::eva());
        let plan = eva.plan(&ctx_with(&catalog, &tasks, &[], 0.0));
        let placed: usize = plan.assignments.iter().map(|a| a.tasks.len()).sum();
        assert_eq!(placed, 4);
        // All on new instances (no live cluster to reuse).
        assert_eq!(plan.new_instance_count(), plan.assignments.len());
    }

    #[test]
    fn stable_cluster_keeps_assignments() {
        // Once the cluster matches the packed shape, replanning the same
        // tasks should migrate nothing.
        let catalog = Catalog::table3_example();
        let tasks_round1 = vec![task(1, 2, 8, 24, None), task(2, 1, 4, 10, None)];
        let mut eva = EvaScheduler::new(EvaConfig::eva());
        let plan1 = eva.plan(&ctx_with(&catalog, &tasks_round1, &[], 0.0));
        assert_eq!(plan1.new_instance_count(), plan1.assignments.len());

        // Materialize the plan: both tasks ended up somewhere; mirror it.
        let mut tasks_round2 = tasks_round1.clone();
        let mut instances = Vec::new();
        for (idx, a) in plan1.assignments.iter().enumerate() {
            let id = InstanceId(idx as u64);
            let PlannedInstance::New(ty) = a.instance else {
                panic!()
            };
            instances.push(InstanceSnapshot { id, type_id: ty });
            for tid in &a.tasks {
                tasks_round2
                    .iter_mut()
                    .find(|t| t.id == *tid)
                    .unwrap()
                    .assigned_to = Some(id);
            }
        }
        let plan2 = eva.plan(&ctx_with(&catalog, &tasks_round2, &instances, 0.1));
        assert!(plan2.migrations(&tasks_round2, false).is_empty());
        assert!(plan2.terminate.is_empty());
        assert_eq!(plan2.new_instance_count(), 0);
    }

    #[test]
    fn job_completion_triggers_cleanup() {
        let catalog = Catalog::table3_example();
        // τ4 alone on an expensive it1 after its co-residents completed.
        let tasks = vec![task(4, 0, 4, 12, Some(0))];
        let instances = vec![InstanceSnapshot {
            id: InstanceId(0),
            type_id: catalog.by_name("it1").unwrap().id,
        }];
        let mut eva = EvaScheduler::new(EvaConfig::eva());
        let plan = eva.plan(&ctx_with(&catalog, &tasks, &instances, 1.0));
        // Whatever branch wins, τ4 must not stay alone on it1.
        let map = plan_assignment_map(&plan);
        let target = map.get(&TaskId::new(JobId(4), 0)).unwrap();
        match target {
            PlannedInstance::New(ty) => {
                assert_eq!(catalog.get(*ty).unwrap().name, "it4");
            }
            PlannedInstance::Existing(id) => panic!("should not stay on {id}"),
        }
        assert_eq!(plan.terminate, vec![InstanceId(0)]);
    }

    #[test]
    fn full_only_mode_always_full() {
        let catalog = Catalog::table3_example();
        let tasks = vec![task(1, 1, 4, 10, None)];
        let mut eva = EvaScheduler::new(EvaConfig::without_partial());
        let plan = eva.plan(&ctx_with(&catalog, &tasks, &[], 0.0));
        assert!(plan.full_reconfiguration);
        assert_eq!(eva.adoption_counts(), (1, 0));
    }

    #[test]
    fn partial_only_mode_never_full() {
        let catalog = Catalog::table3_example();
        let tasks = vec![task(1, 1, 4, 10, None)];
        let mut eva = EvaScheduler::new(EvaConfig::without_full());
        let plan = eva.plan(&ctx_with(&catalog, &tasks, &[], 0.0));
        assert!(!plan.full_reconfiguration);
        assert_eq!(eva.adoption_counts(), (0, 1));
        assert_eq!(eva.full_adoption_rate(), 0.0);
    }

    #[test]
    fn observations_feed_the_table() {
        let mut eva = EvaScheduler::new(EvaConfig::eva());
        let obs = JobObservation {
            job: JobId(1),
            gang_coupled: false,
            observed_tput: 0.8,
            contexts: vec![TaskContext::new(
                TaskId::new(JobId(1), 0),
                WorkloadKind(0),
                vec![WorkloadKind(1)],
            )],
        };
        eva.observe(&[obs]);
        assert_eq!(
            eva.monitor()
                .table()
                .recorded(WorkloadKind(0), &[WorkloadKind(1)]),
            Some(0.8)
        );
    }

    #[test]
    fn gang_observations_use_attribution() {
        let mut eva = EvaScheduler::new(EvaConfig::eva());
        let obs = JobObservation {
            job: JobId(1),
            gang_coupled: true,
            observed_tput: 0.7,
            contexts: vec![
                TaskContext::new(TaskId::new(JobId(1), 0), WorkloadKind(0), vec![]),
                TaskContext::new(
                    TaskId::new(JobId(1), 1),
                    WorkloadKind(0),
                    vec![WorkloadKind(2)],
                ),
            ],
        };
        eva.observe(&[obs]);
        // Attributed to the co-located task only.
        assert_eq!(
            eva.monitor()
                .table()
                .recorded(WorkloadKind(0), &[WorkloadKind(2)]),
            Some(0.7)
        );
    }

    #[test]
    fn severe_learned_interference_reverts_to_no_packing() {
        // §6.4: in extreme cases Eva refrains from co-locating entirely.
        let catalog = Catalog::table3_example();
        let mut eva = EvaScheduler::new(EvaConfig::eva());
        // Teach the table that everything destroys everything (tput 0.1).
        for a in 0..8u32 {
            for b in 0..8u32 {
                eva.monitor.observe_single_task(
                    TaskContext::new(
                        TaskId::new(JobId(99), a),
                        WorkloadKind(a),
                        vec![WorkloadKind(b)],
                    ),
                    0.1,
                );
            }
        }
        let tasks = vec![task(1, 1, 4, 10, None), task(2, 1, 4, 10, None)];
        let plan = eva.plan(&ctx_with(&catalog, &tasks, &[], 0.0));
        // Two singleton instances.
        assert_eq!(plan.assignments.len(), 2);
        for a in &plan.assignments {
            assert_eq!(a.tasks.len(), 1);
        }
    }

    #[test]
    fn eva_rp_ignores_learned_interference() {
        let catalog = Catalog::table3_example();
        let mut eva = EvaScheduler::new(EvaConfig::eva_rp());
        for a in 0..8u32 {
            for b in 0..8u32 {
                eva.monitor.observe_single_task(
                    TaskContext::new(
                        TaskId::new(JobId(99), a),
                        WorkloadKind(a),
                        vec![WorkloadKind(b)],
                    ),
                    0.1,
                );
            }
        }
        let tasks = vec![task(1, 2, 8, 24, None), task(2, 1, 4, 10, None)];
        let plan = eva.plan(&ctx_with(&catalog, &tasks, &[], 0.0));
        // RP-only packing still co-locates them on one it1.
        assert_eq!(plan.assignments.len(), 1);
        assert_eq!(plan.assignments[0].tasks.len(), 2);
        assert_eq!(eva.name(), "Eva-RP");
    }
}
