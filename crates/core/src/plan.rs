//! Scheduler inputs (cluster snapshots) and outputs (plans).
//!
//! The simulator and the live runtime describe the cluster to a scheduler
//! through [`SchedulerContext`] and receive back a [`Plan`]: the target
//! cluster configuration (which instances to keep or launch and which
//! tasks go where) plus the instances to terminate. Diffing the plan
//! against the current assignment yields the migrations.

use eva_interference::TaskContext;
use eva_types::{
    DemandSpec, InstanceId, InstanceTypeId, JobId, SimDuration, SimTime, TaskId, WorkloadKind,
};

use eva_cloud::Catalog;

/// A scheduler-visible view of one active task.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSnapshot {
    /// The task.
    pub id: TaskId,
    /// Its workload kind (indexes the co-location table).
    pub workload: WorkloadKind,
    /// Its resource demands.
    pub demand: DemandSpec,
    /// Checkpoint delay if migrated.
    pub checkpoint_delay: SimDuration,
    /// Launch delay on a (new) instance.
    pub launch_delay: SimDuration,
    /// Number of sibling tasks in its job (1 for single-task jobs).
    pub gang_size: u32,
    /// Whether the job's tasks are performance-interdependent (§4.4).
    pub gang_coupled: bool,
    /// Where the task currently runs, if anywhere.
    pub assigned_to: Option<InstanceId>,
    /// Estimated remaining runtime, when the workload supplies one. Eva
    /// ignores this; the Stratus baseline receives perfect estimates here
    /// (its best case, §6.1).
    pub remaining_hint: Option<SimDuration>,
}

impl TaskSnapshot {
    /// Total migration delay (checkpoint + launch).
    pub fn migration_delay(&self) -> SimDuration {
        self.checkpoint_delay + self.launch_delay
    }
}

/// A scheduler-visible view of one live instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstanceSnapshot {
    /// The instance.
    pub id: InstanceId,
    /// Its catalog type.
    pub type_id: InstanceTypeId,
}

/// Everything a scheduler sees at one scheduling round.
#[derive(Debug, Clone)]
pub struct SchedulerContext<'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// The instance-type catalog.
    pub catalog: &'a Catalog,
    /// All tasks currently in the system (running or pending).
    pub tasks: &'a [TaskSnapshot],
    /// All live instances.
    pub instances: &'a [InstanceSnapshot],
}

impl SchedulerContext<'_> {
    /// Tasks currently assigned to `instance`.
    pub fn tasks_on(&self, instance: InstanceId) -> Vec<&TaskSnapshot> {
        self.tasks
            .iter()
            .filter(|t| t.assigned_to == Some(instance))
            .collect()
    }

    /// Tasks not assigned anywhere yet.
    pub fn pending_tasks(&self) -> Vec<&TaskSnapshot> {
        self.tasks
            .iter()
            .filter(|t| t.assigned_to.is_none())
            .collect()
    }
}

/// The instance slot an assignment targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlannedInstance {
    /// An instance that already exists.
    Existing(InstanceId),
    /// A new instance of the given type to launch.
    New(InstanceTypeId),
}

/// One instance in the target configuration with its task set.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// Which instance hosts the tasks.
    pub instance: PlannedInstance,
    /// The tasks assigned to it.
    pub tasks: Vec<TaskId>,
}

/// A target cluster configuration.
///
/// Any live instance that appears neither in `assignments` nor is kept
/// implicitly must be listed in `terminate`; the executor drains and
/// terminates it.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Plan {
    /// Target assignments (existing and new instances).
    pub assignments: Vec<Assignment>,
    /// Instances to terminate once drained.
    pub terminate: Vec<InstanceId>,
    /// Whether this plan came from a Full Reconfiguration (telemetry for
    /// the Figure 5a proportion metric).
    pub full_reconfiguration: bool,
}

impl Plan {
    /// The no-op plan.
    pub fn empty() -> Self {
        Plan::default()
    }

    /// Tasks that change instance relative to `tasks`' current assignment
    /// (includes first-time placements onto new instances only when
    /// `count_initial` is set).
    pub fn migrations(&self, tasks: &[TaskSnapshot], count_initial: bool) -> Vec<TaskId> {
        let mut moved = Vec::new();
        for a in &self.assignments {
            for tid in &a.tasks {
                let Some(snap) = tasks.iter().find(|t| t.id == *tid) else {
                    continue;
                };
                match (&a.instance, snap.assigned_to) {
                    (PlannedInstance::Existing(target), Some(current)) => {
                        if *target != current {
                            moved.push(*tid);
                        }
                    }
                    (PlannedInstance::New(_), Some(_)) => moved.push(*tid),
                    (_, None) => {
                        if count_initial {
                            moved.push(*tid);
                        }
                    }
                }
            }
        }
        moved
    }

    /// Number of new instances the plan launches.
    pub fn new_instance_count(&self) -> usize {
        self.assignments
            .iter()
            .filter(|a| matches!(a.instance, PlannedInstance::New(_)))
            .count()
    }
}

/// A job-level throughput observation delivered to schedulers each round.
#[derive(Debug, Clone, PartialEq)]
pub struct JobObservation {
    /// The observed job.
    pub job: JobId,
    /// Whether its tasks are gang-coupled.
    pub gang_coupled: bool,
    /// Observed normalized throughput over the last window.
    pub observed_tput: f64,
    /// Per-task co-location contexts.
    pub contexts: Vec<TaskContext>,
}

/// The scheduling interface shared by Eva and every baseline.
pub trait Scheduler {
    /// Human-readable name used in experiment tables.
    fn name(&self) -> &'static str;

    /// Produces the target configuration for this round.
    fn plan(&mut self, ctx: &SchedulerContext<'_>) -> Plan;

    /// Delivers throughput observations (schedulers that do not learn
    /// ignore them).
    fn observe(&mut self, _observations: &[JobObservation]) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_types::ResourceVector;

    fn snap(job: u64, idx: u32, assigned: Option<u64>) -> TaskSnapshot {
        TaskSnapshot {
            id: TaskId::new(JobId(job), idx),
            workload: WorkloadKind(0),
            demand: DemandSpec::uniform(ResourceVector::new(1, 4, 1024)),
            checkpoint_delay: SimDuration::from_secs(2),
            launch_delay: SimDuration::from_secs(10),
            gang_size: 1,
            gang_coupled: false,
            assigned_to: assigned.map(InstanceId),
            remaining_hint: None,
        }
    }

    #[test]
    fn migrations_detect_moves_only() {
        let tasks = vec![snap(1, 0, Some(1)), snap(2, 0, Some(2)), snap(3, 0, None)];
        let plan = Plan {
            assignments: vec![
                Assignment {
                    instance: PlannedInstance::Existing(InstanceId(1)),
                    tasks: vec![TaskId::new(JobId(1), 0)], // Stays put.
                },
                Assignment {
                    instance: PlannedInstance::Existing(InstanceId(1)),
                    tasks: vec![TaskId::new(JobId(2), 0)], // Moves 2 → 1.
                },
                Assignment {
                    instance: PlannedInstance::New(InstanceTypeId(0)),
                    tasks: vec![TaskId::new(JobId(3), 0)], // Initial placement.
                },
            ],
            terminate: vec![InstanceId(2)],
            full_reconfiguration: false,
        };
        let moved = plan.migrations(&tasks, false);
        assert_eq!(moved, vec![TaskId::new(JobId(2), 0)]);
        let with_initial = plan.migrations(&tasks, true);
        assert_eq!(with_initial.len(), 2);
        assert_eq!(plan.new_instance_count(), 1);
    }

    #[test]
    fn moving_to_new_instance_counts_as_migration() {
        let tasks = vec![snap(1, 0, Some(5))];
        let plan = Plan {
            assignments: vec![Assignment {
                instance: PlannedInstance::New(InstanceTypeId(2)),
                tasks: vec![TaskId::new(JobId(1), 0)],
            }],
            ..Plan::empty()
        };
        assert_eq!(plan.migrations(&tasks, false).len(), 1);
    }

    #[test]
    fn context_filters_tasks() {
        let tasks = vec![snap(1, 0, Some(1)), snap(2, 0, Some(1)), snap(3, 0, None)];
        let instances = vec![InstanceSnapshot {
            id: InstanceId(1),
            type_id: InstanceTypeId(0),
        }];
        let catalog = Catalog::table3_example();
        let ctx = SchedulerContext {
            now: SimTime::ZERO,
            catalog: &catalog,
            tasks: &tasks,
            instances: &instances,
        };
        assert_eq!(ctx.tasks_on(InstanceId(1)).len(), 2);
        assert_eq!(ctx.pending_tasks().len(), 1);
    }
}
