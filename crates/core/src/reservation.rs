//! Reservation price and throughput-normalized reservation price (§4.2–4.4).

use std::collections::HashMap;

use eva_cloud::Catalog;
use eva_interference::ThroughputTable;
use eva_types::{Cost, DemandSpec, InstanceTypeId, TaskId, WorkloadKind};

use crate::plan::TaskSnapshot;

/// Estimates the normalized throughput of a workload co-located with a
/// multiset of other workloads. Implemented by Eva's learned
/// [`ThroughputTable`], by oracles wrapping ground-truth interference (for
/// the Owl baseline), and by [`UnitTput`] for interference-oblivious
/// scheduling (Eva-RP).
pub trait TputEstimator {
    /// `tput(τ, T)` — normalized throughput of `task` when co-located with
    /// `others` on the same instance.
    fn estimate(&self, task: WorkloadKind, others: &[WorkloadKind]) -> f64;
}

impl TputEstimator for ThroughputTable {
    fn estimate(&self, task: WorkloadKind, others: &[WorkloadKind]) -> f64 {
        ThroughputTable::estimate(self, task, others)
    }
}

/// An estimator that ignores interference entirely (always 1.0). Turns
/// TNRP back into plain RP — the Eva-RP ablation of §6.4.
#[derive(Debug, Clone, Copy, Default)]
pub struct UnitTput;

impl TputEstimator for UnitTput {
    fn estimate(&self, _task: WorkloadKind, _others: &[WorkloadKind]) -> f64 {
        1.0
    }
}

/// The reservation price of a demand: the hourly cost of the cheapest
/// instance type that can host it standalone (§4.2). Returns the type too.
///
/// # Examples
///
/// ```
/// use eva_cloud::Catalog;
/// use eva_core::reservation_price;
/// use eva_types::{DemandSpec, ResourceVector};
///
/// let catalog = Catalog::table3_example();
/// // Table 3's τ1 demands [2, 8, 24 GB]; only it1 ($12/hr) fits.
/// let d = DemandSpec::uniform(ResourceVector::with_ram_gb(2, 8, 24));
/// let (ty, rp) = reservation_price(&catalog, &d).unwrap();
/// assert_eq!(catalog.get(ty).unwrap().name, "it1");
/// assert_eq!(rp.as_dollars(), 12.0);
/// ```
pub fn reservation_price(catalog: &Catalog, demand: &DemandSpec) -> Option<(InstanceTypeId, Cost)> {
    catalog.cheapest_fit(demand).map(|t| (t.id, t.hourly_cost))
}

/// Precomputed reservation prices for a task set.
#[derive(Debug, Clone, Default)]
pub struct ReservationPrices {
    prices: HashMap<TaskId, Cost>,
    unschedulable: Vec<TaskId>,
}

impl ReservationPrices {
    /// Computes the reservation price of every task; tasks no instance
    /// type can host are collected separately.
    pub fn compute<'a>(
        catalog: &Catalog,
        tasks: impl IntoIterator<Item = &'a TaskSnapshot>,
    ) -> Self {
        let mut prices = HashMap::new();
        let mut unschedulable = Vec::new();
        for t in tasks {
            match reservation_price(catalog, &t.demand) {
                Some((_, rp)) => {
                    prices.insert(t.id, rp);
                }
                None => unschedulable.push(t.id),
            }
        }
        ReservationPrices {
            prices,
            unschedulable,
        }
    }

    /// `RP(τ)` in dollars (0.0 for unknown tasks).
    pub fn rp_dollars(&self, task: TaskId) -> f64 {
        self.prices
            .get(&task)
            .map(|c| c.as_dollars())
            .unwrap_or(0.0)
    }

    /// `RP(τ)` as exact money, if known.
    pub fn rp(&self, task: TaskId) -> Option<Cost> {
        self.prices.get(&task).copied()
    }

    /// Tasks that no instance type can host.
    pub fn unschedulable(&self) -> &[TaskId] {
        &self.unschedulable
    }

    /// Number of priced tasks.
    pub fn len(&self) -> usize {
        self.prices.len()
    }

    /// True when no task was priced.
    pub fn is_empty(&self) -> bool {
        self.prices.is_empty()
    }
}

/// Evaluates throughput-normalized reservation prices for task sets.
///
/// For a single-task job: `TNRP(τ, T) = tput(τ, T) × RP(τ)` (§4.3).
///
/// For a task of a gang-coupled job `j` (when `multi_task_aware`):
/// `TNRP(τ, T) = RP(τ) − Σ_{τ'∈j} (1 − tput(τ, T)) × RP(τ')` (§4.4) — the
/// whole job's degradation is charged at the instance causing it. With the
/// paper's identical-sibling jobs this is
/// `RP(τ) × (1 − gang_size × (1 − tput))`, which can go negative and
/// thereby veto the assignment in Algorithm 1's line 9 check.
pub struct TnrpEvaluator<'a> {
    tput: &'a dyn TputEstimator,
    prices: &'a ReservationPrices,
    multi_task_aware: bool,
}

impl<'a> TnrpEvaluator<'a> {
    /// Builds an evaluator.
    pub fn new(
        tput: &'a dyn TputEstimator,
        prices: &'a ReservationPrices,
        multi_task_aware: bool,
    ) -> Self {
        TnrpEvaluator {
            tput,
            prices,
            multi_task_aware,
        }
    }

    /// The throughput a task retains inside `set` (its co-located others
    /// are every *other* member of the set).
    pub fn tput_in_set(&self, task: &TaskSnapshot, set: &[&TaskSnapshot]) -> f64 {
        let others: Vec<WorkloadKind> = set
            .iter()
            .filter(|t| t.id != task.id)
            .map(|t| t.workload)
            .collect();
        self.tput.estimate(task.workload, &others)
    }

    /// `TNRP(τ, T)` in dollars (negative values allowed, §4.4).
    pub fn tnrp_task(&self, task: &TaskSnapshot, set: &[&TaskSnapshot]) -> f64 {
        let rp = self.prices.rp_dollars(task.id);
        let tput = self.tput_in_set(task, set);
        let gang = if self.multi_task_aware && task.gang_coupled {
            f64::from(task.gang_size)
        } else {
            1.0
        };
        rp * (1.0 - gang * (1.0 - tput))
    }

    /// `TNRP(T) = Σ_{τ∈T} TNRP(τ, T)` in dollars.
    pub fn tnrp_set(&self, set: &[&TaskSnapshot]) -> f64 {
        set.iter().map(|t| self.tnrp_task(t, set)).sum()
    }

    /// Whether assigning `set` to an instance of hourly cost `cost` is
    /// cost-efficient: `TNRP(T) ≥ C` (with a small epsilon so exact-cover
    /// assignments like the paper's `it3` example pass).
    pub fn is_cost_efficient(&self, set: &[&TaskSnapshot], cost: Cost) -> bool {
        self.tnrp_set(set) + 1e-9 >= cost.as_dollars()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_types::{JobId, ResourceVector, SimDuration};

    fn task(job: u64, demand: ResourceVector, workload: u32) -> TaskSnapshot {
        task_gang(job, demand, workload, 1, false)
    }

    fn task_gang(
        job: u64,
        demand: ResourceVector,
        workload: u32,
        gang_size: u32,
        gang_coupled: bool,
    ) -> TaskSnapshot {
        TaskSnapshot {
            id: TaskId::new(JobId(job), 0),
            workload: WorkloadKind(workload),
            demand: DemandSpec::uniform(demand),
            checkpoint_delay: SimDuration::from_secs(2),
            launch_delay: SimDuration::from_secs(10),
            gang_size,
            gang_coupled,
            assigned_to: None,
            remaining_hint: None,
        }
    }

    fn table3_tasks() -> Vec<TaskSnapshot> {
        vec![
            task(1, ResourceVector::with_ram_gb(2, 8, 24), 0),
            task(2, ResourceVector::with_ram_gb(1, 4, 10), 1),
            task(3, ResourceVector::with_ram_gb(0, 6, 20), 2),
            task(4, ResourceVector::with_ram_gb(0, 4, 12), 3),
        ]
    }

    #[test]
    fn table3_reservation_prices() {
        let catalog = Catalog::table3_example();
        let tasks = table3_tasks();
        let prices = ReservationPrices::compute(&catalog, tasks.iter());
        let expect = [12.0, 3.0, 0.8, 0.4];
        for (t, rp) in tasks.iter().zip(expect) {
            assert_eq!(prices.rp_dollars(t.id), rp);
        }
        assert!(prices.unschedulable().is_empty());
    }

    #[test]
    fn unschedulable_tasks_are_reported() {
        let catalog = Catalog::table3_example();
        let huge = task(9, ResourceVector::with_ram_gb(8, 64, 999), 0);
        let prices = ReservationPrices::compute(&catalog, std::iter::once(&huge));
        assert_eq!(prices.unschedulable(), &[huge.id]);
        assert_eq!(prices.rp_dollars(huge.id), 0.0);
    }

    #[test]
    fn paper_tnrp_example_cost_efficient_case() {
        // §4.3: co-locating τ1 (tput 0.8) and τ2 (tput 0.9) on it1:
        // 12×0.8 + 3×0.9 = 12.3 > 12 → cost-efficient.
        let catalog = Catalog::table3_example();
        let tasks = table3_tasks();
        let prices = ReservationPrices::compute(&catalog, tasks.iter());
        let mut table = ThroughputTable::new(0.95);
        table.record(WorkloadKind(0), &[WorkloadKind(1)], 0.8);
        table.record(WorkloadKind(1), &[WorkloadKind(0)], 0.9);
        let eval = TnrpEvaluator::new(&table, &prices, true);
        let set = [&tasks[0], &tasks[1]];
        assert!((eval.tnrp_set(&set) - 12.3).abs() < 1e-9);
        assert!(eval.is_cost_efficient(&set, Cost::from_dollars(12.0)));
    }

    #[test]
    fn paper_tnrp_example_inefficient_case() {
        // §4.3: tputs 0.7/0.8 give 12×0.7 + 3×0.8 = 10.8 < 12.
        let catalog = Catalog::table3_example();
        let tasks = table3_tasks();
        let prices = ReservationPrices::compute(&catalog, tasks.iter());
        let mut table = ThroughputTable::new(0.95);
        table.record(WorkloadKind(0), &[WorkloadKind(1)], 0.7);
        table.record(WorkloadKind(1), &[WorkloadKind(0)], 0.8);
        let eval = TnrpEvaluator::new(&table, &prices, true);
        let set = [&tasks[0], &tasks[1]];
        assert!((eval.tnrp_set(&set) - 10.8).abs() < 1e-9);
        assert!(!eval.is_cost_efficient(&set, Cost::from_dollars(12.0)));
    }

    #[test]
    fn exact_cover_passes_cost_efficiency() {
        // The paper's it3 walkthrough: RP equals the instance cost exactly.
        let catalog = Catalog::table3_example();
        let tasks = table3_tasks();
        let prices = ReservationPrices::compute(&catalog, tasks.iter());
        let table = ThroughputTable::new(0.95);
        let eval = TnrpEvaluator::new(&table, &prices, true);
        let set = [&tasks[2]];
        assert!(eval.is_cost_efficient(&set, Cost::from_dollars(0.8)));
    }

    #[test]
    fn gang_coupling_multiplies_penalty() {
        let catalog = Catalog::table3_example();
        let solo = task_gang(1, ResourceVector::with_ram_gb(1, 4, 10), 0, 1, false);
        let gang = task_gang(2, ResourceVector::with_ram_gb(1, 4, 10), 0, 4, true);
        let other = task(3, ResourceVector::with_ram_gb(1, 4, 10), 1);
        let all = [solo.clone(), gang.clone(), other.clone()];
        let prices = ReservationPrices::compute(&catalog, all.iter());
        let mut table = ThroughputTable::new(0.95);
        table.record(WorkloadKind(0), &[WorkloadKind(1)], 0.9);
        let eval = TnrpEvaluator::new(&table, &prices, true);
        // Independent task: 3 × 0.9 = 2.7.
        assert!((eval.tnrp_task(&solo, &[&solo, &other]) - 2.7).abs() < 1e-9);
        // Gang of 4: 3 × (1 − 4×0.1) = 1.8 — whole-job damage charged here.
        assert!((eval.tnrp_task(&gang, &[&gang, &other]) - 1.8).abs() < 1e-9);
    }

    #[test]
    fn gang_penalty_can_go_negative() {
        let catalog = Catalog::table3_example();
        let gang = task_gang(1, ResourceVector::with_ram_gb(1, 4, 10), 0, 4, true);
        let other = task(2, ResourceVector::with_ram_gb(1, 4, 10), 1);
        let all = [gang.clone(), other.clone()];
        let prices = ReservationPrices::compute(&catalog, all.iter());
        let mut table = ThroughputTable::new(0.95);
        table.record(WorkloadKind(0), &[WorkloadKind(1)], 0.6);
        let eval = TnrpEvaluator::new(&table, &prices, true);
        // 3 × (1 − 4×0.4) = −1.8.
        assert!(eval.tnrp_task(&gang, &[&gang, &other]) < 0.0);
    }

    #[test]
    fn eva_single_mode_ignores_gang_size() {
        let catalog = Catalog::table3_example();
        let gang = task_gang(1, ResourceVector::with_ram_gb(1, 4, 10), 0, 4, true);
        let other = task(2, ResourceVector::with_ram_gb(1, 4, 10), 1);
        let all = [gang.clone(), other.clone()];
        let prices = ReservationPrices::compute(&catalog, all.iter());
        let mut table = ThroughputTable::new(0.95);
        table.record(WorkloadKind(0), &[WorkloadKind(1)], 0.9);
        let eval = TnrpEvaluator::new(&table, &prices, false);
        assert!((eval.tnrp_task(&gang, &[&gang, &other]) - 2.7).abs() < 1e-9);
    }

    #[test]
    fn unit_tput_reduces_tnrp_to_rp() {
        let catalog = Catalog::table3_example();
        let tasks = table3_tasks();
        let prices = ReservationPrices::compute(&catalog, tasks.iter());
        let eval = TnrpEvaluator::new(&UnitTput, &prices, true);
        let set: Vec<&TaskSnapshot> = tasks.iter().collect();
        assert!((eval.tnrp_set(&set) - 16.2).abs() < 1e-9);
    }
}
