//! Partial Reconfiguration (§4.5).
//!
//! Instead of re-deriving the whole cluster, Partial Reconfiguration
//! reconsiders only:
//!
//! * tasks from recently submitted jobs not yet assigned anywhere, and
//! * tasks on instances that are no longer cost-efficient (the instance's
//!   set TNRP dropped below its hourly cost — job completions or newly
//!   learned interference can cause this),
//!
//! packing that subset with Algorithm 1 into *new* instances while the
//! rest of the cluster stays untouched. Instances left empty are
//! terminated. An optional `refill_existing` mode (ablation; off in the
//! faithful configuration) first tries to place subset tasks into spare
//! capacity on kept instances.

use std::collections::{BTreeMap, BTreeSet};

use eva_cloud::Catalog;
use eva_types::{InstanceId, ResourceVector, TaskId};

use crate::packing::{full_reconfiguration, PackedConfig};
use crate::plan::{InstanceSnapshot, TaskSnapshot};
use crate::reservation::TnrpEvaluator;

/// The outcome of Partial Reconfiguration.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PartialOutcome {
    /// Existing instances kept untouched, with their task ids.
    pub kept: Vec<(InstanceId, Vec<TaskId>)>,
    /// Newly packed instances for the reconsidered subset.
    pub packed: PackedConfig,
    /// Instances to terminate (now empty).
    pub terminate: Vec<InstanceId>,
    /// Tasks that were reconsidered (telemetry).
    pub reconsidered: Vec<TaskId>,
}

impl PartialOutcome {
    /// Instantaneous provisioning saving `S_P` in dollars: kept instances'
    /// `TNRP − C` plus the packed instances' savings.
    pub fn total_saving_dollars(
        &self,
        tasks: &[TaskSnapshot],
        catalog: &Catalog,
        eval: &TnrpEvaluator<'_>,
        instance_types: &BTreeMap<InstanceId, eva_types::InstanceTypeId>,
    ) -> f64 {
        let mut saving = self.packed.total_saving_dollars();
        for (id, task_ids) in &self.kept {
            let Some(type_id) = instance_types.get(id) else {
                continue;
            };
            let Some(ty) = catalog.get(*type_id) else {
                continue;
            };
            let set: Vec<&TaskSnapshot> = task_ids
                .iter()
                .filter_map(|tid| tasks.iter().find(|t| t.id == *tid))
                .collect();
            saving += eval.tnrp_set(&set) - ty.hourly_cost.as_dollars();
        }
        saving
    }
}

/// Runs Partial Reconfiguration.
///
/// `refill_existing` enables the ablation where subset tasks may also fill
/// spare capacity on kept instances (cheapest-instance-first) when doing so
/// keeps the instance cost-efficient.
pub fn partial_reconfiguration(
    tasks: &[TaskSnapshot],
    instances: &[InstanceSnapshot],
    catalog: &Catalog,
    eval: &TnrpEvaluator<'_>,
    refill_existing: bool,
) -> PartialOutcome {
    // Group current assignments.
    let mut on_instance: BTreeMap<InstanceId, Vec<&TaskSnapshot>> = BTreeMap::new();
    for inst in instances {
        on_instance.entry(inst.id).or_default();
    }
    let mut subset: Vec<&TaskSnapshot> = Vec::new();
    for t in tasks {
        match t.assigned_to {
            Some(id) if on_instance.contains_key(&id) => on_instance.get_mut(&id).unwrap().push(t),
            // Unassigned, or assigned to an instance the context no longer
            // lists (e.g. being drained): reconsider.
            _ => subset.push(t),
        }
    }

    // Instances that stopped being cost-efficient surrender their tasks.
    let mut kept: Vec<(InstanceId, Vec<&TaskSnapshot>)> = Vec::new();
    let mut terminate: Vec<InstanceId> = Vec::new();
    for inst in instances {
        let set = on_instance.remove(&inst.id).unwrap_or_default();
        if set.is_empty() {
            terminate.push(inst.id);
            continue;
        }
        let ty = match catalog.get(inst.type_id) {
            Some(ty) => ty,
            None => {
                // Unknown type: treat as inefficient so tasks escape.
                subset.extend(set);
                terminate.push(inst.id);
                continue;
            }
        };
        if eval.is_cost_efficient(&set, ty.hourly_cost) {
            kept.push((inst.id, set));
        } else {
            subset.extend(set);
            terminate.push(inst.id);
        }
    }

    let reconsidered: Vec<TaskId> = subset.iter().map(|t| t.id).collect();

    // Optional ablation: try to refill kept instances' spare capacity.
    let mut refilled: BTreeSet<TaskId> = BTreeSet::new();
    if refill_existing && !subset.is_empty() {
        // Visit kept instances by descending hourly cost, mirroring
        // Algorithm 1's type ordering.
        let mut order: Vec<usize> = (0..kept.len()).collect();
        order.sort_by(|a, b| {
            let ca = catalog
                .get(
                    instances
                        .iter()
                        .find(|i| i.id == kept[*a].0)
                        .unwrap()
                        .type_id,
                )
                .map(|t| t.hourly_cost)
                .unwrap_or_default();
            let cb = catalog
                .get(
                    instances
                        .iter()
                        .find(|i| i.id == kept[*b].0)
                        .unwrap()
                        .type_id,
                )
                .map(|t| t.hourly_cost)
                .unwrap_or_default();
            cb.cmp(&ca)
        });
        for slot in order {
            let (inst_id, set) = &mut kept[slot];
            let Some(snap) = instances.iter().find(|i| i.id == *inst_id) else {
                continue;
            };
            let Some(ty) = catalog.get(snap.type_id) else {
                continue;
            };
            let mut used = set
                .iter()
                .fold(ResourceVector::ZERO, |acc, t| acc + ty.demand_of(&t.demand));
            loop {
                // Pick the candidate maximizing the refilled set's TNRP.
                let mut best: Option<(usize, f64)> = None;
                for (idx, task) in subset.iter().enumerate() {
                    if refilled.contains(&task.id) {
                        continue;
                    }
                    let demand = ty.demand_of(&task.demand);
                    let Some(total) = used.checked_add(&demand) else {
                        continue;
                    };
                    if !total.fits_within(&ty.capacity) {
                        continue;
                    }
                    let mut candidate = set.clone();
                    candidate.push(task);
                    let tnrp = eval.tnrp_set(&candidate);
                    if tnrp >= eval.tnrp_set(set)
                        && tnrp + 1e-9 >= ty.hourly_cost.as_dollars()
                        && best.is_none_or(|(_, b)| tnrp > b)
                    {
                        best = Some((idx, tnrp));
                    }
                }
                let Some((idx, _)) = best else { break };
                let task = subset[idx];
                refilled.insert(task.id);
                used = used
                    .checked_add(&ty.demand_of(&task.demand))
                    .unwrap_or(used);
                set.push(task);
            }
        }
        subset.retain(|t| !refilled.contains(&t.id));
    }

    // Pack the remaining subset into new instances with Algorithm 1.
    let subset_owned: Vec<TaskSnapshot> = subset.iter().map(|t| (*t).clone()).collect();
    let packed = full_reconfiguration(&subset_owned, catalog, eval);

    PartialOutcome {
        kept: kept
            .into_iter()
            .map(|(id, set)| (id, set.iter().map(|t| t.id).collect()))
            .collect(),
        packed,
        terminate,
        reconsidered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reservation::{ReservationPrices, UnitTput};
    use eva_interference::ThroughputTable;
    use eva_types::{DemandSpec, InstanceTypeId, JobId, SimDuration, WorkloadKind};

    fn t(job: u64, gpu: u32, cpu: u32, ram_gb: u64, assigned: Option<u64>) -> TaskSnapshot {
        TaskSnapshot {
            id: TaskId::new(JobId(job), 0),
            workload: WorkloadKind((job % 8) as u32),
            demand: DemandSpec::uniform(ResourceVector::with_ram_gb(gpu, cpu, ram_gb)),
            checkpoint_delay: SimDuration::from_secs(2),
            launch_delay: SimDuration::from_secs(10),
            gang_size: 1,
            gang_coupled: false,
            assigned_to: assigned.map(InstanceId),
            remaining_hint: None,
        }
    }

    fn instance(id: u64, catalog: &Catalog, name: &str) -> InstanceSnapshot {
        InstanceSnapshot {
            id: InstanceId(id),
            type_id: catalog.by_name(name).unwrap().id,
        }
    }

    #[test]
    fn new_tasks_go_to_new_instances_only() {
        let catalog = Catalog::table3_example();
        // One efficient existing instance (τ1 on it1 has RP 12 ≥ 12).
        let tasks = vec![t(1, 2, 8, 24, Some(0)), t(2, 1, 4, 10, None)];
        let instances = vec![instance(0, &catalog, "it1")];
        let prices = ReservationPrices::compute(&catalog, tasks.iter());
        let eval = TnrpEvaluator::new(&UnitTput, &prices, true);
        let out = partial_reconfiguration(&tasks, &instances, &catalog, &eval, false);
        assert_eq!(
            out.kept,
            vec![(InstanceId(0), vec![TaskId::new(JobId(1), 0)])]
        );
        assert_eq!(out.reconsidered, vec![TaskId::new(JobId(2), 0)]);
        assert_eq!(out.packed.instances.len(), 1);
        assert_eq!(
            catalog.get(out.packed.instances[0].type_id).unwrap().name,
            "it2"
        );
        assert!(out.terminate.is_empty());
    }

    #[test]
    fn inefficient_instances_surrender_their_tasks() {
        let catalog = Catalog::table3_example();
        // τ4 (RP 0.4) alone on an it1 ($12): wildly inefficient.
        let tasks = vec![t(4, 0, 4, 12, Some(0))];
        let instances = vec![instance(0, &catalog, "it1")];
        let prices = ReservationPrices::compute(&catalog, tasks.iter());
        let eval = TnrpEvaluator::new(&UnitTput, &prices, true);
        let out = partial_reconfiguration(&tasks, &instances, &catalog, &eval, false);
        assert!(out.kept.is_empty());
        assert_eq!(out.terminate, vec![InstanceId(0)]);
        assert_eq!(out.reconsidered, vec![TaskId::new(JobId(4), 0)]);
        // Task repacked onto its reservation-price type.
        assert_eq!(
            catalog.get(out.packed.instances[0].type_id).unwrap().name,
            "it4"
        );
    }

    #[test]
    fn empty_instances_are_terminated() {
        let catalog = Catalog::table3_example();
        let tasks: Vec<TaskSnapshot> = vec![];
        let instances = vec![instance(0, &catalog, "it2")];
        let prices = ReservationPrices::compute(&catalog, tasks.iter());
        let eval = TnrpEvaluator::new(&UnitTput, &prices, true);
        let out = partial_reconfiguration(&tasks, &instances, &catalog, &eval, false);
        assert_eq!(out.terminate, vec![InstanceId(0)]);
        assert!(out.packed.instances.is_empty());
    }

    #[test]
    fn interference_drop_triggers_reconsideration() {
        let catalog = Catalog::table3_example();
        // Two $3-RP tasks packed on one it2-priced... it2 only fits one;
        // host both on it1 ($12): RP sum 6 < 12, but pretend they were
        // placed there by an earlier full reconfig along with others that
        // completed. Now the instance is inefficient.
        let tasks = vec![t(1, 1, 4, 10, Some(0)), t(2, 1, 4, 10, Some(0))];
        let instances = vec![instance(0, &catalog, "it1")];
        let prices = ReservationPrices::compute(&catalog, tasks.iter());
        let eval = TnrpEvaluator::new(&UnitTput, &prices, true);
        let out = partial_reconfiguration(&tasks, &instances, &catalog, &eval, false);
        assert_eq!(out.terminate, vec![InstanceId(0)]);
        assert_eq!(out.reconsidered.len(), 2);
        // Each lands on its own it2.
        assert_eq!(out.packed.instances.len(), 2);
    }

    #[test]
    fn refill_existing_uses_spare_capacity() {
        let catalog = Catalog::table3_example();
        // τ1 on it1 leaves 2 GPU / 8 CPU / 220 GB spare; a new τ2 fits.
        let tasks = vec![t(1, 2, 8, 24, Some(0)), t(2, 1, 4, 10, None)];
        let instances = vec![instance(0, &catalog, "it1")];
        let prices = ReservationPrices::compute(&catalog, tasks.iter());
        let eval = TnrpEvaluator::new(&UnitTput, &prices, true);
        let out = partial_reconfiguration(&tasks, &instances, &catalog, &eval, true);
        assert_eq!(
            out.kept,
            vec![(
                InstanceId(0),
                vec![TaskId::new(JobId(1), 0), TaskId::new(JobId(2), 0)]
            )]
        );
        assert!(out.packed.instances.is_empty());
    }

    #[test]
    fn refill_respects_capacity() {
        let catalog = Catalog::table3_example();
        // it2 (1 GPU, 4 CPU) fully used by τ1's clone; τ2 cannot refill.
        let tasks = vec![t(1, 1, 4, 10, Some(0)), t(2, 1, 4, 10, None)];
        let instances = vec![instance(0, &catalog, "it2")];
        let prices = ReservationPrices::compute(&catalog, tasks.iter());
        let eval = TnrpEvaluator::new(&UnitTput, &prices, true);
        let out = partial_reconfiguration(&tasks, &instances, &catalog, &eval, true);
        assert_eq!(out.kept[0].1.len(), 1);
        assert_eq!(out.packed.instances.len(), 1);
    }

    #[test]
    fn saving_accounts_kept_and_packed() {
        let catalog = Catalog::table3_example();
        let tasks = vec![
            t(1, 2, 8, 24, Some(0)),
            t(2, 1, 4, 10, Some(0)),
            t(3, 0, 6, 20, None),
        ];
        let instances = vec![instance(0, &catalog, "it1")];
        let prices = ReservationPrices::compute(&catalog, tasks.iter());
        let eval = TnrpEvaluator::new(&UnitTput, &prices, true);
        let out = partial_reconfiguration(&tasks, &instances, &catalog, &eval, false);
        let types: BTreeMap<InstanceId, InstanceTypeId> =
            instances.iter().map(|i| (i.id, i.type_id)).collect();
        // Kept it1 holds τ1 + τ2: RP 15 − 12 = 3; τ3 on it3: 0.8 − 0.8 = 0.
        let s = out.total_saving_dollars(&tasks, &catalog, &eval, &types);
        assert!((s - 3.0).abs() < 1e-9, "saving {s}");
    }

    #[test]
    fn gang_aware_eviction_with_learned_interference() {
        let catalog = Catalog::table3_example();
        let mut tasks = vec![t(1, 1, 4, 10, Some(0)), t(2, 1, 4, 10, Some(0))];
        tasks[0].workload = WorkloadKind(0);
        tasks[1].workload = WorkloadKind(1);
        let instances = vec![instance(0, &catalog, "it1")];
        let prices = ReservationPrices::compute(&catalog, tasks.iter());
        let mut table = ThroughputTable::new(0.95);
        // Terrible interference learned online → instance inefficient even
        // though RP sum (6) was already below it1's cost; with tput the set
        // TNRP drops further.
        table.record(WorkloadKind(0), &[WorkloadKind(1)], 0.5);
        table.record(WorkloadKind(1), &[WorkloadKind(0)], 0.5);
        let eval = TnrpEvaluator::new(&table, &prices, true);
        let out = partial_reconfiguration(&tasks, &instances, &catalog, &eval, false);
        assert_eq!(out.terminate, vec![InstanceId(0)]);
        assert_eq!(out.packed.instances.len(), 2);
    }
}
