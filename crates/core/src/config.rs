//! Eva scheduler configuration and ablation switches.

use eva_types::SimDuration;

/// Which reconfiguration algorithms are in play.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconfigMode {
    /// Run both and choose via Equation 1 (the full Eva design).
    Ensemble,
    /// Always adopt Full Reconfiguration ("Eva w/o Partial", Figure 5b).
    FullOnly,
    /// Always adopt Partial Reconfiguration ("Eva w/o Full", Figure 6).
    PartialOnly,
}

/// Configuration of [`crate::EvaScheduler`].
#[derive(Debug, Clone, PartialEq)]
pub struct EvaConfig {
    /// Use throughput-normalized reservation prices (`Eva-TNRP`); when
    /// false, plain reservation prices are used (`Eva-RP`, §6.4).
    pub use_tnrp: bool,
    /// Charge a gang-coupled job's whole degradation at the interfering
    /// instance (`Eva-Multi` vs `Eva-Single`, §4.4 / Table 6).
    pub multi_task_aware: bool,
    /// Which reconfiguration algorithms run.
    pub mode: ReconfigMode,
    /// Default pairwise throughput `t` for unseen pairs (0.95 in the
    /// paper's experiments).
    pub default_tput: f64,
    /// Partial Reconfiguration may place reconsidered tasks into spare
    /// capacity on kept instances when cost-efficient. §4.5 says the
    /// subset "updates a subset of tasks and instances"; with this off the
    /// subset goes exclusively to new instances. On by default; the
    /// new-instances-only reading is kept as an ablation.
    pub refill_existing: bool,
    /// Mean instance setup delay used when pricing new launches in `M`
    /// (Table 1's 190 s by default).
    pub mean_setup: SimDuration,
    /// Prior event rate `λ` (events/hour) before data accumulates.
    pub initial_lambda: f64,
    /// Prior trigger probability `p` before data accumulates.
    pub initial_p: f64,
}

impl Default for EvaConfig {
    fn default() -> Self {
        EvaConfig {
            use_tnrp: true,
            multi_task_aware: true,
            mode: ReconfigMode::Ensemble,
            default_tput: 0.95,
            refill_existing: true,
            mean_setup: SimDuration::from_secs(190),
            initial_lambda: 2.0,
            initial_p: 0.3,
        }
    }
}

impl EvaConfig {
    /// The paper's default configuration ("Eva").
    pub fn eva() -> Self {
        EvaConfig::default()
    }

    /// `Eva-RP`: interference-oblivious reservation prices (§6.4).
    pub fn eva_rp() -> Self {
        EvaConfig {
            use_tnrp: false,
            ..EvaConfig::default()
        }
    }

    /// `Eva-Single`: multi-task jobs treated as independent tasks (§4.4).
    pub fn eva_single() -> Self {
        EvaConfig {
            multi_task_aware: false,
            ..EvaConfig::default()
        }
    }

    /// Eva without Full Reconfiguration (Figure 6 ablation).
    pub fn without_full() -> Self {
        EvaConfig {
            mode: ReconfigMode::PartialOnly,
            ..EvaConfig::default()
        }
    }

    /// Eva without Partial Reconfiguration (Figure 5b ablation).
    pub fn without_partial() -> Self {
        EvaConfig {
            mode: ReconfigMode::FullOnly,
            ..EvaConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_settings() {
        let c = EvaConfig::default();
        assert!(c.use_tnrp);
        assert!(c.multi_task_aware);
        assert_eq!(c.mode, ReconfigMode::Ensemble);
        assert_eq!(c.default_tput, 0.95);
        assert!(c.refill_existing);
        assert_eq!(c.mean_setup, SimDuration::from_secs(190));
    }

    #[test]
    fn variants_flip_expected_switches() {
        assert!(!EvaConfig::eva_rp().use_tnrp);
        assert!(!EvaConfig::eva_single().multi_task_aware);
        assert_eq!(EvaConfig::without_full().mode, ReconfigMode::PartialOnly);
        assert_eq!(EvaConfig::without_partial().mode, ReconfigMode::FullOnly);
    }
}
