//! Full Reconfiguration — Algorithm 1 (§4.2), generalized with TNRP (§4.3).
//!
//! The algorithm adapts the classic variable-sized bin packing heuristic
//! ("largest bin type, largest ball first") to multi-dimensional cloud
//! resources by ranking instance types by hourly cost and tasks by the
//! marginal throughput-normalized reservation price they add to the
//! instance under construction. An instance is committed only when the
//! TNRP of its task set covers its hourly cost, which guarantees every
//! provisioned instance is cost-efficient relative to no-packing.

use eva_cloud::{Catalog, InstanceType};
use eva_types::{InstanceTypeId, ResourceVector, TaskId};

use crate::plan::TaskSnapshot;
use crate::reservation::TnrpEvaluator;

/// One packed instance: a type plus the task set assigned to it.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedInstance {
    /// Catalog type of the instance to provision.
    pub type_id: InstanceTypeId,
    /// Tasks assigned to it (order = assignment order).
    pub tasks: Vec<TaskId>,
    /// `TNRP(T)` of the set at packing time, in dollars.
    pub tnrp_dollars: f64,
    /// Hourly cost of the type, in dollars.
    pub cost_dollars: f64,
}

impl PackedInstance {
    /// Instantaneous saving versus hosting each task standalone
    /// (`TNRP(T) − C`, §4.5's per-instance term of `S`).
    pub fn saving_dollars(&self) -> f64 {
        self.tnrp_dollars - self.cost_dollars
    }
}

/// The output of Full Reconfiguration over a task set.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PackedConfig {
    /// The packed instances.
    pub instances: Vec<PackedInstance>,
    /// Tasks that could not be assigned (no instance type hosts them).
    pub unassigned: Vec<TaskId>,
}

impl PackedConfig {
    /// Total hourly provisioning cost of the configuration, in dollars.
    pub fn total_cost_dollars(&self) -> f64 {
        self.instances.iter().map(|i| i.cost_dollars).sum()
    }

    /// Instantaneous provisioning saving `S = Σ_i (TNRP(T_i) − C_i)`.
    pub fn total_saving_dollars(&self) -> f64 {
        self.instances.iter().map(|i| i.saving_dollars()).sum()
    }

    /// Total tasks assigned.
    pub fn assigned_count(&self) -> usize {
        self.instances.iter().map(|i| i.tasks.len()).sum()
    }
}

/// Runs Algorithm 1 over `tasks`.
///
/// Instance types are visited in descending cost; for each new instance
/// the unassigned task maximizing `TNRP(T ∪ {τ})` among those that still
/// fit is added until adding would *decrease* the set TNRP (possible under
/// severe interference, line 9) or nothing fits. The instance is kept only
/// if `TNRP(T) ≥ C_k`; otherwise the algorithm moves to the next cheaper
/// type.
///
/// Every task whose demand fits some catalog type is guaranteed to be
/// assigned: at its reservation-price type, the singleton set satisfies
/// `TNRP({τ}) = RP(τ) ≥ C_k` (a task alone has throughput 1).
///
/// # Examples
///
/// ```
/// use eva_cloud::Catalog;
/// use eva_core::{full_reconfiguration, ReservationPrices, TnrpEvaluator};
/// use eva_interference::ThroughputTable;
///
/// # use eva_core::TaskSnapshot;
/// # use eva_types::{DemandSpec, JobId, ResourceVector, SimDuration, TaskId, WorkloadKind};
/// # fn t(j: u64, g: u32, c: u32, r: u64) -> TaskSnapshot {
/// #     TaskSnapshot {
/// #         id: TaskId::new(JobId(j), 0), workload: WorkloadKind(j as u32),
/// #         demand: DemandSpec::uniform(ResourceVector::with_ram_gb(g, c, r)),
/// #         checkpoint_delay: SimDuration::ZERO, launch_delay: SimDuration::ZERO,
/// #         gang_size: 1, gang_coupled: false, assigned_to: None, remaining_hint: None,
/// #     }
/// # }
/// let catalog = Catalog::table3_example();
/// // The paper's §4.2 walkthrough: τ1..τ4 pack into one it1 and one it3,
/// // for $12.80/hr instead of $16.20/hr standalone.
/// let tasks = vec![
///     t(1, 2, 8, 24), t(2, 1, 4, 10), t(3, 0, 6, 20), t(4, 0, 4, 12),
/// ];
/// let prices = ReservationPrices::compute(&catalog, tasks.iter());
/// let table = ThroughputTable::new(1.0); // No interference.
/// let eval = TnrpEvaluator::new(&table, &prices, true);
/// let config = full_reconfiguration(&tasks, &catalog, &eval);
/// assert_eq!(config.instances.len(), 2);
/// assert!((config.total_cost_dollars() - 12.8).abs() < 1e-9);
/// ```
pub fn full_reconfiguration(
    tasks: &[TaskSnapshot],
    catalog: &Catalog,
    eval: &TnrpEvaluator<'_>,
) -> PackedConfig {
    let mut config = PackedConfig::default();
    // Tasks no type can host are unassignable regardless of packing.
    let mut remaining: Vec<&TaskSnapshot> = Vec::new();
    for t in tasks {
        if catalog.cheapest_fit(&t.demand).is_some() {
            remaining.push(t);
        } else {
            config.unassigned.push(t.id);
        }
    }

    for instance_type in catalog.types_by_cost_desc() {
        if remaining.is_empty() {
            break;
        }
        if instance_type.hourly_cost.is_zero() {
            // Ghost or free types would host everything vacuously.
            continue;
        }
        loop {
            let (set_indices, tnrp) = pack_one_instance(&remaining, instance_type, eval);
            if set_indices.is_empty() {
                break;
            }
            // Commit only when cost-efficient (Algorithm 1 line 14).
            if tnrp + 1e-9 >= instance_type.hourly_cost.as_dollars() {
                // Record ids in assignment order, then remove by descending
                // index so earlier indices stay valid.
                let task_ids: Vec<TaskId> =
                    set_indices.iter().map(|idx| remaining[*idx].id).collect();
                let mut sorted = set_indices.clone();
                sorted.sort_unstable_by(|a, b| b.cmp(a));
                for idx in &sorted {
                    remaining.remove(*idx);
                }
                config.instances.push(PackedInstance {
                    type_id: instance_type.id,
                    tasks: task_ids,
                    tnrp_dollars: tnrp,
                    cost_dollars: instance_type.hourly_cost.as_dollars(),
                });
            } else {
                // Move on to the next cheaper type (line 17).
                break;
            }
        }
    }

    // Anything left is unassignable (should not happen for feasible tasks).
    config.unassigned.extend(remaining.iter().map(|t| t.id));
    config
}

/// Greedily fills one instance of `instance_type` from `remaining`
/// (Algorithm 1 lines 5–13). Returns the selected indices (in assignment
/// order) and the final set TNRP.
fn pack_one_instance(
    remaining: &[&TaskSnapshot],
    instance_type: &InstanceType,
    eval: &TnrpEvaluator<'_>,
) -> (Vec<usize>, f64) {
    let mut selected: Vec<usize> = Vec::new();
    let mut set: Vec<&TaskSnapshot> = Vec::new();
    let mut used = ResourceVector::ZERO;
    let mut current_tnrp = 0.0;

    loop {
        let mut best: Option<(usize, f64)> = None;
        for (idx, task) in remaining.iter().enumerate() {
            if selected.contains(&idx) {
                continue;
            }
            let demand = instance_type.demand_of(&task.demand);
            let Some(total) = used.checked_add(&demand) else {
                continue;
            };
            if !total.fits_within(&instance_type.capacity) {
                continue;
            }
            set.push(task);
            let tnrp = eval.tnrp_set(&set);
            set.pop();
            // Strict improvement comparison with stable id tie-break keeps
            // the algorithm deterministic.
            let better = match best {
                None => true,
                Some((best_idx, best_tnrp)) => {
                    tnrp > best_tnrp + 1e-12
                        || ((tnrp - best_tnrp).abs() <= 1e-12
                            && remaining[idx].id < remaining[best_idx].id)
                }
            };
            if better {
                best = Some((idx, tnrp));
            }
        }
        let Some((idx, tnrp)) = best else { break };
        // Line 9: stop when the marginal addition lowers the set TNRP.
        if tnrp < current_tnrp {
            break;
        }
        selected.push(idx);
        set.push(remaining[idx]);
        used = used
            .checked_add(&instance_type.demand_of(&remaining[idx].demand))
            .unwrap_or(used);
        current_tnrp = tnrp;
    }

    (selected, current_tnrp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reservation::{ReservationPrices, UnitTput};
    use eva_interference::ThroughputTable;
    use eva_types::{DemandSpec, JobId, SimDuration, WorkloadKind};

    fn t(job: u64, gpu: u32, cpu: u32, ram_gb: u64, workload: u32) -> TaskSnapshot {
        TaskSnapshot {
            id: TaskId::new(JobId(job), 0),
            workload: WorkloadKind(workload),
            demand: DemandSpec::uniform(ResourceVector::with_ram_gb(gpu, cpu, ram_gb)),
            checkpoint_delay: SimDuration::from_secs(2),
            launch_delay: SimDuration::from_secs(10),
            gang_size: 1,
            gang_coupled: false,
            assigned_to: None,
            remaining_hint: None,
        }
    }

    fn table3_tasks() -> Vec<TaskSnapshot> {
        vec![
            t(1, 2, 8, 24, 0),
            t(2, 1, 4, 10, 1),
            t(3, 0, 6, 20, 2),
            t(4, 0, 4, 12, 3),
        ]
    }

    #[test]
    fn paper_walkthrough_packs_it1_and_it3() {
        // §4.2: τ1, τ2, τ4 → it1 ($15.4 RP vs $12); τ3 → it3 ($0.8 = $0.8).
        let catalog = Catalog::table3_example();
        let tasks = table3_tasks();
        let prices = ReservationPrices::compute(&catalog, tasks.iter());
        let eval = TnrpEvaluator::new(&UnitTput, &prices, true);
        let config = full_reconfiguration(&tasks, &catalog, &eval);

        assert_eq!(config.instances.len(), 2);
        let it1 = &config.instances[0];
        assert_eq!(catalog.get(it1.type_id).unwrap().name, "it1");
        assert_eq!(
            it1.tasks,
            vec![
                TaskId::new(JobId(1), 0),
                TaskId::new(JobId(2), 0),
                TaskId::new(JobId(4), 0)
            ]
        );
        assert!((it1.tnrp_dollars - 15.4).abs() < 1e-9);

        let it3 = &config.instances[1];
        assert_eq!(catalog.get(it3.type_id).unwrap().name, "it3");
        assert_eq!(it3.tasks, vec![TaskId::new(JobId(3), 0)]);

        assert!((config.total_cost_dollars() - 12.8).abs() < 1e-9);
        assert!(config.unassigned.is_empty());
    }

    #[test]
    fn every_feasible_task_is_assigned() {
        let catalog = Catalog::aws_eval_2025();
        let tasks: Vec<TaskSnapshot> = (0..40)
            .map(|i| match i % 4 {
                0 => t(i, 1, 4, 24, 0),
                1 => t(i, 0, 6, 8, 1),
                2 => t(i, 4, 4, 10, 2),
                _ => t(i, 0, 2, 16, 3),
            })
            .collect();
        let prices = ReservationPrices::compute(&catalog, tasks.iter());
        let table = ThroughputTable::new(0.95);
        let eval = TnrpEvaluator::new(&table, &prices, true);
        let config = full_reconfiguration(&tasks, &catalog, &eval);
        assert!(config.unassigned.is_empty());
        assert_eq!(config.assigned_count(), 40);
    }

    #[test]
    fn every_instance_is_cost_efficient() {
        let catalog = Catalog::aws_eval_2025();
        let tasks: Vec<TaskSnapshot> = (0..30)
            .map(|i| {
                t(
                    i,
                    (i % 3) as u32,
                    2 + (i % 8) as u32,
                    4 + (i % 40),
                    (i % 8) as u32,
                )
            })
            .collect();
        let prices = ReservationPrices::compute(&catalog, tasks.iter());
        let table = ThroughputTable::new(0.95);
        let eval = TnrpEvaluator::new(&table, &prices, true);
        let config = full_reconfiguration(&tasks, &catalog, &eval);
        for inst in &config.instances {
            assert!(
                inst.tnrp_dollars + 1e-9 >= inst.cost_dollars,
                "instance {:?} not cost-efficient",
                inst
            );
        }
    }

    #[test]
    fn capacity_never_exceeded() {
        let catalog = Catalog::aws_eval_2025();
        let tasks: Vec<TaskSnapshot> = (0..50).map(|i| t(i, 1, 8, 50, (i % 8) as u32)).collect();
        let prices = ReservationPrices::compute(&catalog, tasks.iter());
        let table = ThroughputTable::new(0.95);
        let eval = TnrpEvaluator::new(&table, &prices, true);
        let config = full_reconfiguration(&tasks, &catalog, &eval);
        for inst in &config.instances {
            let ty = catalog.get(inst.type_id).unwrap();
            let mut used = ResourceVector::ZERO;
            for tid in &inst.tasks {
                let task = tasks.iter().find(|t| t.id == *tid).unwrap();
                used += ty.demand_of(&task.demand);
            }
            assert!(used.fits_within(&ty.capacity), "{used} > {}", ty.capacity);
        }
    }

    #[test]
    fn infeasible_tasks_reported_unassigned() {
        let catalog = Catalog::table3_example();
        let tasks = vec![t(1, 8, 64, 999, 0), t(2, 1, 4, 10, 1)];
        let prices = ReservationPrices::compute(&catalog, tasks.iter());
        let eval = TnrpEvaluator::new(&UnitTput, &prices, true);
        let config = full_reconfiguration(&tasks, &catalog, &eval);
        assert_eq!(config.unassigned, vec![TaskId::new(JobId(1), 0)]);
        assert_eq!(config.assigned_count(), 1);
    }

    #[test]
    fn severe_interference_prevents_packing() {
        // With uniform pairwise throughput 0.5, packing two $3 tasks on one
        // instance yields TNRP = 3.0 < 3.0 cost? 2×3×0.5 = 3.0 — exactly
        // cost; use 0.4 to force a clear loss so Eva reduces to no-packing.
        let catalog = Catalog::table3_example();
        let tasks = vec![t(1, 1, 4, 10, 0), t(2, 1, 4, 10, 1)];
        let prices = ReservationPrices::compute(&catalog, tasks.iter());
        let mut table = ThroughputTable::new(0.4);
        // Make the pairwise estimates explicit.
        table.record(WorkloadKind(0), &[WorkloadKind(1)], 0.4);
        table.record(WorkloadKind(1), &[WorkloadKind(0)], 0.4);
        let eval = TnrpEvaluator::new(&table, &prices, true);
        let config = full_reconfiguration(&tasks, &catalog, &eval);
        // Each task gets its own reservation-price instance (it2 × 2).
        assert_eq!(config.instances.len(), 2);
        for inst in &config.instances {
            assert_eq!(inst.tasks.len(), 1);
            assert_eq!(catalog.get(inst.type_id).unwrap().name, "it2");
        }
    }

    #[test]
    fn line9_stops_adding_on_tnrp_decrease() {
        // Three tasks that fit a big instance, but the third interferes so
        // badly that adding it lowers the set TNRP.
        let catalog = Catalog::table3_example();
        let tasks = vec![t(1, 2, 8, 24, 0), t(2, 1, 4, 10, 1), t(3, 0, 4, 12, 2)];
        let prices = ReservationPrices::compute(&catalog, tasks.iter());
        let mut table = ThroughputTable::new(1.0);
        // τ3 wrecks τ1 (whose RP is 12): adding τ3 changes τ1's TNRP from
        // 12 to 12×0.3 = 3.6 while adding only 0.4 of its own RP.
        table.record(WorkloadKind(0), &[WorkloadKind(1), WorkloadKind(2)], 0.3);
        table.record(WorkloadKind(0), &[WorkloadKind(2)], 0.3);
        let eval = TnrpEvaluator::new(&table, &prices, true);
        let config = full_reconfiguration(&tasks, &catalog, &eval);
        let first = &config.instances[0];
        assert_eq!(catalog.get(first.type_id).unwrap().name, "it1");
        assert_eq!(
            first.tasks,
            vec![TaskId::new(JobId(1), 0), TaskId::new(JobId(2), 0)],
            "τ3 must be rejected by the line-9 check"
        );
        // τ3 still lands on its own cheap instance.
        assert_eq!(config.assigned_count(), 3);
    }

    #[test]
    fn empty_task_set_gives_empty_config() {
        let catalog = Catalog::aws_eval_2025();
        let prices = ReservationPrices::compute(&catalog, std::iter::empty());
        let eval = TnrpEvaluator::new(&UnitTput, &prices, true);
        let config = full_reconfiguration(&[], &catalog, &eval);
        assert!(config.instances.is_empty());
        assert!(config.unassigned.is_empty());
        assert_eq!(config.total_cost_dollars(), 0.0);
    }

    #[test]
    fn deterministic_output() {
        let catalog = Catalog::aws_eval_2025();
        let tasks: Vec<TaskSnapshot> = (0..25)
            .map(|i| t(i, (i % 2) as u32, 2 + (i % 6) as u32, 8, (i % 8) as u32))
            .collect();
        let prices = ReservationPrices::compute(&catalog, tasks.iter());
        let table = ThroughputTable::new(0.95);
        let eval = TnrpEvaluator::new(&table, &prices, true);
        let a = full_reconfiguration(&tasks, &catalog, &eval);
        let b = full_reconfiguration(&tasks, &catalog, &eval);
        assert_eq!(a, b);
    }

    #[test]
    fn packing_beats_no_packing_cost() {
        // AWS prices GPUs linearly, so savings come from CPU tasks riding
        // in GPU instances' spare CPU/RAM: pair each 1-GPU task with a
        // small CPU task on a p3.2xlarge.
        let catalog = Catalog::aws_eval_2025();
        let mut tasks: Vec<TaskSnapshot> =
            (0..10).map(|i| t(i, 1, 4, 24, (i % 8) as u32)).collect();
        tasks.extend((10..20).map(|i| t(i, 0, 4, 8, (i % 8) as u32)));
        let prices = ReservationPrices::compute(&catalog, tasks.iter());
        let table = ThroughputTable::new(0.95);
        let eval = TnrpEvaluator::new(&table, &prices, true);
        let config = full_reconfiguration(&tasks, &catalog, &eval);
        let no_packing: f64 = tasks.iter().map(|t| prices.rp_dollars(t.id)).sum();
        assert!(
            config.total_cost_dollars() <= no_packing + 1e-9,
            "packing ({}) must not exceed no-packing ({})",
            config.total_cost_dollars(),
            no_packing
        );
        // The CPU riders' standalone instances disappear entirely.
        assert!(config.total_cost_dollars() < no_packing * 0.99);
    }
}
