//! Baseline schedulers from the paper's evaluation (§6.1).
//!
//! All four baselines implement the same [`Scheduler`] trait as Eva so the
//! simulator can drive any of them interchangeably:
//!
//! * [`NoPackingScheduler`] — one reservation-price instance per task; the
//!   strategy of most existing cloud cluster managers and the paper's
//!   normalization baseline.
//! * [`StratusScheduler`] — runtime-binned packing that co-locates tasks
//!   with similar finish times and avoids migration (Stratus, SoCC '18),
//!   given perfect job-duration estimates as in the paper's comparison.
//! * [`SynergyScheduler`] — best-fit packing minimizing fragmentation,
//!   adapted to the cloud by launching the cheapest fitting type when
//!   nothing has room, and enhanced to be interference-aware through
//!   throughput-normalized reservation prices.
//! * [`OwlScheduler`] — pair-wise co-location driven by an offline
//!   interference profile (provided to it exclusively, as the paper does),
//!   extended to rank pairs by TNRP-to-cost ratio.

pub mod no_packing;
pub mod owl;
pub mod stratus;
pub mod synergy;

pub use no_packing::NoPackingScheduler;
pub use owl::{OracleProfile, OwlScheduler};
pub use stratus::StratusScheduler;
pub use synergy::SynergyScheduler;

pub use eva_core::Scheduler;
