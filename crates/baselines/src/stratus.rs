//! The Stratus baseline (SoCC '18), adapted as in §6.1.
//!
//! Stratus packs tasks with *similar finish times* onto the same instance
//! so instances empty out all at once and can be released promptly; it is
//! deliberately conservative about migration. Following the paper's
//! comparison setup, Stratus receives perfect job-duration estimates
//! (`TaskSnapshot::remaining_hint`).
//!
//! Tasks are bucketed into exponential runtime bins (bin *b* holds
//! remaining runtimes in `[2^b, 2^{b+1})` minutes). A pending task prefers
//! an existing instance whose residents share its bin and have capacity;
//! otherwise new instances are sized for whole same-bin groups. Running
//! tasks migrate only during scale-in consolidation (when leftovers of a
//! completed group no longer justify their instance); empty instances
//! terminate.

use std::collections::BTreeMap;

use eva_core::{
    reservation_price, Assignment, Plan, PlannedInstance, Scheduler, SchedulerContext, TaskSnapshot,
};
use eva_types::{InstanceId, ResourceVector, SimDuration};

/// See the module docs.
#[derive(Debug, Default)]
pub struct StratusScheduler;

impl StratusScheduler {
    /// Builds the scheduler.
    pub fn new() -> Self {
        StratusScheduler
    }

    /// Exponential runtime bin of a remaining duration.
    pub fn runtime_bin(remaining: SimDuration) -> i32 {
        let minutes = (remaining.as_secs_f64() / 60.0).max(1.0);
        minutes.log2().floor() as i32
    }
}

impl Scheduler for StratusScheduler {
    fn name(&self) -> &'static str {
        "Stratus"
    }

    fn plan(&mut self, ctx: &SchedulerContext<'_>) -> Plan {
        // Current usage and dominant runtime bin per instance.
        let mut used: BTreeMap<InstanceId, ResourceVector> = BTreeMap::new();
        let mut residents: BTreeMap<InstanceId, Vec<&TaskSnapshot>> = BTreeMap::new();
        for inst in ctx.instances {
            used.insert(inst.id, ResourceVector::ZERO);
            residents.insert(inst.id, Vec::new());
        }
        for t in ctx.tasks {
            if let Some(id) = t.assigned_to {
                if let Some(inst) = ctx.instances.iter().find(|i| i.id == id) {
                    if let Some(ty) = ctx.catalog.get(inst.type_id) {
                        *used.entry(id).or_default() += ty.demand_of(&t.demand);
                    }
                    residents.entry(id).or_default().push(t);
                }
            }
        }

        // Scale-in consolidation (the source of Stratus's rare
        // migrations): when a group has partially completed and the
        // leftovers' reservation prices no longer cover the instance, the
        // leftovers are re-placed and the instance released.
        let mut evicted: Vec<&TaskSnapshot> = Vec::new();
        for inst in ctx.instances {
            let Some(ty) = ctx.catalog.get(inst.type_id) else {
                continue;
            };
            let set = residents.get(&inst.id).cloned().unwrap_or_default();
            if set.is_empty() {
                continue;
            }
            let rp_sum: f64 = set
                .iter()
                .filter_map(|t| reservation_price(ctx.catalog, &t.demand))
                .map(|(_, c)| c.as_dollars())
                .sum();
            if rp_sum + 1e-9 < ty.hourly_cost.as_dollars() {
                evicted.extend(set);
                residents.insert(inst.id, Vec::new());
                used.insert(inst.id, ResourceVector::ZERO);
            }
        }

        let mut assignments: Vec<Assignment> = Vec::new();
        // Keep current placements.
        for inst in ctx.instances {
            let tasks: Vec<_> = residents
                .get(&inst.id)
                .map(|v| v.iter().map(|t| t.id).collect())
                .unwrap_or_default();
            if !tasks.is_empty() {
                assignments.push(Assignment {
                    instance: PlannedInstance::Existing(inst.id),
                    tasks,
                });
            }
        }

        // Place pending tasks bin-first.
        let mut extra_used: BTreeMap<InstanceId, ResourceVector> = BTreeMap::new();
        let mut leftover_by_bin: BTreeMap<Option<i32>, Vec<&TaskSnapshot>> = BTreeMap::new();
        let mut pool: Vec<&TaskSnapshot> = ctx.pending_tasks();
        pool.extend(evicted);
        for task in pool {
            let bin = task.remaining_hint.map(Self::runtime_bin);
            // Candidate instances: capacity for the task, ranked by
            // (same-bin residents desc, spare capacity asc).
            let mut best: Option<(InstanceId, usize)> = None;
            for inst in ctx.instances {
                let Some(ty) = ctx.catalog.get(inst.type_id) else {
                    continue;
                };
                let demand = ty.demand_of(&task.demand);
                let current = used.get(&inst.id).copied().unwrap_or(ResourceVector::ZERO)
                    + extra_used
                        .get(&inst.id)
                        .copied()
                        .unwrap_or(ResourceVector::ZERO);
                let Some(total) = current.checked_add(&demand) else {
                    continue;
                };
                if !total.fits_within(&ty.capacity) {
                    continue;
                }
                let same_bin = residents
                    .get(&inst.id)
                    .map(|v| {
                        v.iter()
                            .filter(|r| match (bin, r.remaining_hint.map(Self::runtime_bin)) {
                                (Some(a), Some(b)) => a == b,
                                _ => false,
                            })
                            .count()
                    })
                    .unwrap_or(0);
                // Stratus only co-locates when bins match (or the instance
                // is one it just opened this round for the same bin).
                let occupied = residents
                    .get(&inst.id)
                    .map(|v| !v.is_empty())
                    .unwrap_or(false);
                if occupied && same_bin == 0 {
                    continue;
                }
                // An empty instance is only worth reusing when it is no
                // more expensive than the task's reservation-price type —
                // tiny tasks must not keep idle big boxes alive.
                if !occupied {
                    let rp = reservation_price(ctx.catalog, &task.demand)
                        .map(|(_, c)| c)
                        .unwrap_or_default();
                    if ty.hourly_cost > rp {
                        continue;
                    }
                }
                if best.is_none_or(|(_, s)| same_bin > s) {
                    best = Some((inst.id, same_bin));
                }
            }
            match best {
                Some((id, _)) => {
                    // Append to the existing assignment for that instance.
                    if let Some(ty) = ctx
                        .instances
                        .iter()
                        .find(|i| i.id == id)
                        .and_then(|i| ctx.catalog.get(i.type_id))
                    {
                        *extra_used.entry(id).or_default() += ty.demand_of(&task.demand);
                    }
                    if let Some(a) = assignments
                        .iter_mut()
                        .find(|a| matches!(a.instance, PlannedInstance::Existing(i) if i == id))
                    {
                        a.tasks.push(task.id);
                    } else {
                        assignments.push(Assignment {
                            instance: PlannedInstance::Existing(id),
                            tasks: vec![task.id],
                        });
                    }
                }
                None => leftover_by_bin.entry(bin).or_default().push(task),
            }
        }

        // Scale-out: size new instances for whole same-bin groups rather
        // than per task — Stratus's group-aware acquisition. For each bin,
        // repeatedly pick the instance type minimizing cost per hosted
        // task and open one instance for as many group members as fit.
        for (_bin, mut group) in leftover_by_bin {
            group.sort_by_key(|a| a.id);
            while !group.is_empty() {
                let mut best: Option<(eva_types::InstanceTypeId, Vec<usize>, f64)> = None;
                for ty in ctx.catalog.types() {
                    if ty.hourly_cost.is_zero() {
                        continue;
                    }
                    let mut fill = ResourceVector::ZERO;
                    let mut members = Vec::new();
                    for (idx, task) in group.iter().enumerate() {
                        let d = ty.demand_of(&task.demand);
                        if let Some(total) = fill.checked_add(&d) {
                            if total.fits_within(&ty.capacity) {
                                fill = total;
                                members.push(idx);
                            }
                        }
                    }
                    if members.is_empty() {
                        continue;
                    }
                    let per_task = ty.hourly_cost.as_dollars() / members.len() as f64;
                    let better = match &best {
                        None => true,
                        Some((_, m, c)) => {
                            per_task < c - 1e-12
                                || ((per_task - c).abs() <= 1e-12 && members.len() > m.len())
                        }
                    };
                    if better {
                        best = Some((ty.id, members, per_task));
                    }
                }
                let Some((ty, members, _)) = best else { break };
                let ids: Vec<_> = members.iter().map(|i| group[*i].id).collect();
                let mut keep = members.clone();
                keep.sort_unstable_by(|a, b| b.cmp(a));
                for idx in keep {
                    group.remove(idx);
                }
                assignments.push(Assignment {
                    instance: PlannedInstance::New(ty),
                    tasks: ids,
                });
            }
        }

        let terminate = ctx
            .instances
            .iter()
            .map(|i| i.id)
            .filter(|id| {
                !assignments
                    .iter()
                    .any(|a| matches!(a.instance, PlannedInstance::Existing(i) if i == *id))
            })
            .collect();
        Plan {
            assignments,
            terminate,
            full_reconfiguration: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_cloud::Catalog;
    use eva_core::InstanceSnapshot;
    use eva_types::{DemandSpec, JobId, SimTime, TaskId, WorkloadKind};

    fn task(
        job: u64,
        gpu: u32,
        cpu: u32,
        ram_gb: u64,
        assigned: Option<u64>,
        remaining_mins: u64,
    ) -> TaskSnapshot {
        TaskSnapshot {
            id: TaskId::new(JobId(job), 0),
            workload: WorkloadKind(0),
            demand: DemandSpec::uniform(ResourceVector::with_ram_gb(gpu, cpu, ram_gb)),
            checkpoint_delay: SimDuration::from_secs(2),
            launch_delay: SimDuration::from_secs(10),
            gang_size: 1,
            gang_coupled: false,
            assigned_to: assigned.map(InstanceId),
            remaining_hint: Some(SimDuration::from_mins(remaining_mins)),
        }
    }

    #[test]
    fn runtime_bins_are_exponential() {
        let bin = |m: u64| StratusScheduler::runtime_bin(SimDuration::from_mins(m));
        assert_eq!(bin(1), 0);
        assert_eq!(bin(2), 1);
        assert_eq!(bin(3), 1);
        assert_eq!(bin(4), 2);
        assert_eq!(bin(60), 5);
        assert_eq!(bin(90), 6);
        assert_eq!(bin(120), 6);
    }

    #[test]
    fn same_bin_tasks_colocate() {
        let catalog = Catalog::aws_eval_2025();
        let ty = catalog.by_name("p3.8xlarge").unwrap().id;
        // An efficient resident (its 20-vCPU demand prices it at the
        // p3.8xlarge itself) with ~2h remaining; a pending task with ~1.7h
        // (same bin 6) should join it.
        let tasks = vec![
            task(1, 1, 20, 24, Some(0), 120),
            task(2, 1, 4, 24, None, 100),
        ];
        let instances = vec![InstanceSnapshot {
            id: InstanceId(0),
            type_id: ty,
        }];
        let ctx = SchedulerContext {
            now: SimTime::ZERO,
            catalog: &catalog,
            tasks: &tasks,
            instances: &instances,
        };
        let plan = StratusScheduler::new().plan(&ctx);
        let joint = plan
            .assignments
            .iter()
            .find(|a| matches!(a.instance, PlannedInstance::Existing(i) if i == InstanceId(0)))
            .unwrap();
        assert_eq!(joint.tasks.len(), 2);
        assert_eq!(plan.new_instance_count(), 0);
    }

    #[test]
    fn different_bin_tasks_do_not_colocate() {
        let catalog = Catalog::aws_eval_2025();
        let ty = catalog.by_name("p3.8xlarge").unwrap().id;
        // Resident has 8 minutes left (bin 3); pending has 8 hours (bin 8).
        let tasks = vec![task(1, 1, 20, 24, Some(0), 8), task(2, 1, 4, 24, None, 480)];
        let instances = vec![InstanceSnapshot {
            id: InstanceId(0),
            type_id: ty,
        }];
        let ctx = SchedulerContext {
            now: SimTime::ZERO,
            catalog: &catalog,
            tasks: &tasks,
            instances: &instances,
        };
        let plan = StratusScheduler::new().plan(&ctx);
        assert_eq!(plan.new_instance_count(), 1);
    }

    #[test]
    fn capacity_is_respected_when_joining() {
        let catalog = Catalog::aws_eval_2025();
        let ty = catalog.by_name("p3.2xlarge").unwrap().id; // 1 GPU only.
        let tasks = vec![task(1, 1, 4, 24, Some(0), 60), task(2, 1, 4, 24, None, 60)];
        let instances = vec![InstanceSnapshot {
            id: InstanceId(0),
            type_id: ty,
        }];
        let ctx = SchedulerContext {
            now: SimTime::ZERO,
            catalog: &catalog,
            tasks: &tasks,
            instances: &instances,
        };
        let plan = StratusScheduler::new().plan(&ctx);
        // No GPU room: must open a new instance despite matching bins.
        assert_eq!(plan.new_instance_count(), 1);
    }

    #[test]
    fn efficient_placements_never_migrate() {
        let catalog = Catalog::aws_eval_2025();
        let ty = catalog.by_name("p3.8xlarge").unwrap().id;
        let tasks = vec![
            task(1, 1, 20, 24, Some(0), 60),
            task(2, 1, 20, 24, Some(1), 60),
        ];
        let instances = vec![
            InstanceSnapshot {
                id: InstanceId(0),
                type_id: ty,
            },
            InstanceSnapshot {
                id: InstanceId(1),
                type_id: ty,
            },
        ];
        let ctx = SchedulerContext {
            now: SimTime::ZERO,
            catalog: &catalog,
            tasks: &tasks,
            instances: &instances,
        };
        let plan = StratusScheduler::new().plan(&ctx);
        assert!(plan.migrations(&tasks, false).is_empty());
    }

    #[test]
    fn scale_in_consolidates_underfilled_boxes() {
        let catalog = Catalog::aws_eval_2025();
        let ty = catalog.by_name("p3.8xlarge").unwrap().id;
        // A lone balanced 1-GPU task (RP $3.06) left on a $12.24 box after
        // its group finished: Stratus scales in, re-placing it cheaply.
        let tasks = vec![task(1, 1, 4, 24, Some(0), 60)];
        let instances = vec![InstanceSnapshot {
            id: InstanceId(0),
            type_id: ty,
        }];
        let ctx = SchedulerContext {
            now: SimTime::ZERO,
            catalog: &catalog,
            tasks: &tasks,
            instances: &instances,
        };
        let plan = StratusScheduler::new().plan(&ctx);
        assert_eq!(plan.terminate, vec![InstanceId(0)]);
        assert_eq!(plan.migrations(&tasks, false).len(), 1);
        let PlannedInstance::New(new_ty) = plan.assignments[0].instance else {
            panic!()
        };
        assert_eq!(catalog.get(new_ty).unwrap().name, "p3.2xlarge");
    }

    #[test]
    fn empty_instances_terminate() {
        let catalog = Catalog::aws_eval_2025();
        let ty = catalog.by_name("c7i.large").unwrap().id;
        let instances = vec![InstanceSnapshot {
            id: InstanceId(3),
            type_id: ty,
        }];
        let ctx = SchedulerContext {
            now: SimTime::ZERO,
            catalog: &catalog,
            tasks: &[],
            instances: &instances,
        };
        let plan = StratusScheduler::new().plan(&ctx);
        assert_eq!(plan.terminate, vec![InstanceId(3)]);
    }
}
