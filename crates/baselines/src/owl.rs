//! The Owl baseline (SoCC '22), adapted as in §6.1.
//!
//! Owl minimizes interference by co-locating only task *pairs* whose
//! profiled interference is low. It relies on an offline pairwise profile
//! — which the paper provides to Owl exclusively, and which this port
//! receives as an [`OracleProfile`]. Following the paper's extension, the
//! scheduler ranks candidate pairs by the ratio of their combined
//! throughput-normalized reservation price to the cost of the cheapest
//! instance type that fits both, pairing greedily while the ratio exceeds
//! 1 (cost-efficiency) and the profiled throughputs clear a floor.

use std::collections::{BTreeSet, HashMap};

use eva_core::{
    reservation_price, Assignment, Plan, PlannedInstance, ReservationPrices, Scheduler,
    SchedulerContext, TaskSnapshot, TputEstimator,
};
use eva_types::{TaskId, WorkloadKind};

/// An offline pairwise interference profile (the ground truth the paper
/// grants Owl).
#[derive(Debug, Clone, Default)]
pub struct OracleProfile {
    pairs: HashMap<(WorkloadKind, WorkloadKind), f64>,
}

impl OracleProfile {
    /// Builds an empty profile (all pairs assumed interference-free).
    pub fn new() -> Self {
        OracleProfile::default()
    }

    /// Sets the throughput of `a` when co-located with `b`.
    pub fn set(&mut self, a: WorkloadKind, b: WorkloadKind, tput: f64) {
        self.pairs.insert((a, b), tput.clamp(0.0, 1.0));
    }

    /// Builds a profile by probing a pairwise oracle function over a set
    /// of workload kinds.
    pub fn from_fn(kinds: &[WorkloadKind], f: impl Fn(WorkloadKind, WorkloadKind) -> f64) -> Self {
        let mut profile = OracleProfile::new();
        for &a in kinds {
            for &b in kinds {
                profile.set(a, b, f(a, b));
            }
        }
        profile
    }
}

impl TputEstimator for OracleProfile {
    fn estimate(&self, task: WorkloadKind, others: &[WorkloadKind]) -> f64 {
        others
            .iter()
            .map(|o| self.pairs.get(&(task, *o)).copied().unwrap_or(1.0))
            .product::<f64>()
            .clamp(0.0, 1.0)
    }
}

/// See the module docs.
pub struct OwlScheduler {
    profile: OracleProfile,
    /// Minimum profiled throughput for both members of a pair.
    tput_floor: f64,
}

impl OwlScheduler {
    /// Builds the scheduler with the paper-granted profile. The default
    /// throughput floor of 0.85 encodes "low interference only".
    pub fn new(profile: OracleProfile) -> Self {
        OwlScheduler {
            profile,
            tput_floor: 0.85,
        }
    }

    /// Overrides the pairing throughput floor.
    pub fn with_tput_floor(mut self, floor: f64) -> Self {
        self.tput_floor = floor.clamp(0.0, 1.0);
        self
    }
}

impl Scheduler for OwlScheduler {
    fn name(&self) -> &'static str {
        "Owl"
    }

    fn plan(&mut self, ctx: &SchedulerContext<'_>) -> Plan {
        let prices = ReservationPrices::compute(ctx.catalog, ctx.tasks.iter());

        let mut assignments: Vec<Assignment> = Vec::new();
        // Running tasks stay put unless their instance is no longer
        // cost-efficient under the oracle profile (e.g. a pair member
        // finished, stranding its partner on an oversized box) — such
        // tasks rejoin the pending pool for re-placement.
        let mut evicted: Vec<&TaskSnapshot> = Vec::new();
        for inst in ctx.instances {
            let residents = ctx.tasks_on(inst.id);
            if residents.is_empty() {
                continue;
            }
            let efficient = ctx.catalog.get(inst.type_id).is_some_and(|ty| {
                let tnrp: f64 = residents
                    .iter()
                    .map(|t| {
                        let others: Vec<_> = residents
                            .iter()
                            .filter(|o| o.id != t.id)
                            .map(|o| o.workload)
                            .collect();
                        prices.rp_dollars(t.id) * self.profile.estimate(t.workload, &others)
                    })
                    .sum();
                tnrp + 1e-9 >= ty.hourly_cost.as_dollars()
            });
            if efficient {
                assignments.push(Assignment {
                    instance: PlannedInstance::Existing(inst.id),
                    tasks: residents.iter().map(|t| t.id).collect(),
                });
            } else {
                evicted.extend(residents.iter().copied());
            }
        }

        // Join pending tasks onto instances currently hosting exactly one
        // running task, when the profiled pair interference is low and the
        // capacity allows — jobs arrive one at a time, so most of Owl's
        // pairs form against already-running solo tasks.
        let mut joined: BTreeSet<TaskId> = BTreeSet::new();
        {
            struct Join {
                task: TaskId,
                instance: eva_types::InstanceId,
                ratio: f64,
            }
            let mut joins: Vec<Join> = Vec::new();
            let mut pool: Vec<&TaskSnapshot> = ctx.pending_tasks();
            pool.extend(evicted.iter().copied());
            for task in &pool {
                for inst in ctx.instances {
                    // Only instances kept above (cost-efficient) can host
                    // a join; evicted ones are being drained.
                    if !assignments
                        .iter()
                        .any(|a| matches!(a.instance, PlannedInstance::Existing(i) if i == inst.id))
                    {
                        continue;
                    }
                    let residents = ctx.tasks_on(inst.id);
                    if residents.len() != 1 {
                        continue;
                    }
                    let resident = residents[0];
                    let tput_new = self.profile.estimate(task.workload, &[resident.workload]);
                    let tput_res = self.profile.estimate(resident.workload, &[task.workload]);
                    if tput_new < self.tput_floor || tput_res < self.tput_floor {
                        continue;
                    }
                    let Some(ty) = ctx.catalog.get(inst.type_id) else {
                        continue;
                    };
                    let total = ty.demand_of(&task.demand) + ty.demand_of(&resident.demand);
                    if !total.fits_within(&ty.capacity) {
                        continue;
                    }
                    let tnrp = prices.rp_dollars(task.id) * tput_new
                        + prices.rp_dollars(resident.id) * tput_res;
                    joins.push(Join {
                        task: task.id,
                        instance: inst.id,
                        ratio: tnrp / ty.hourly_cost.as_dollars().max(1e-9),
                    });
                }
            }
            joins.sort_by(|a, b| {
                b.ratio
                    .partial_cmp(&a.ratio)
                    .unwrap()
                    .then_with(|| (a.task, a.instance).cmp(&(b.task, b.instance)))
            });
            let mut used_instances: BTreeSet<eva_types::InstanceId> = BTreeSet::new();
            for j in joins {
                if joined.contains(&j.task) || used_instances.contains(&j.instance) {
                    continue;
                }
                joined.insert(j.task);
                used_instances.insert(j.instance);
                if let Some(a) = assignments
                    .iter_mut()
                    .find(|a| matches!(a.instance, PlannedInstance::Existing(i) if i == j.instance))
                {
                    a.tasks.push(j.task);
                }
            }
        }

        // Enumerate candidate pairs among the remaining pool tasks.
        let mut pending: Vec<&TaskSnapshot> = ctx.pending_tasks();
        pending.extend(evicted.iter().copied());
        pending.retain(|t| !joined.contains(&t.id));
        struct Candidate {
            a: usize,
            b: usize,
            ratio: f64,
            type_id: eva_types::InstanceTypeId,
        }
        let mut candidates: Vec<Candidate> = Vec::new();
        for i in 0..pending.len() {
            for j in (i + 1)..pending.len() {
                let (a, b) = (pending[i], pending[j]);
                let tput_a = self.profile.estimate(a.workload, &[b.workload]);
                let tput_b = self.profile.estimate(b.workload, &[a.workload]);
                if tput_a < self.tput_floor || tput_b < self.tput_floor {
                    continue;
                }
                let Some(ty) = ctx.catalog.cheapest_fit_all(&[&a.demand, &b.demand]) else {
                    continue;
                };
                let tnrp = prices.rp_dollars(a.id) * tput_a + prices.rp_dollars(b.id) * tput_b;
                let ratio = tnrp / ty.hourly_cost.as_dollars().max(1e-9);
                if ratio >= 1.0 {
                    candidates.push(Candidate {
                        a: i,
                        b: j,
                        ratio,
                        type_id: ty.id,
                    });
                }
            }
        }
        // Greedy matching by descending ratio.
        candidates.sort_by(|x, y| {
            y.ratio
                .partial_cmp(&x.ratio)
                .unwrap()
                .then_with(|| (x.a, x.b).cmp(&(y.a, y.b)))
        });
        let mut taken: BTreeSet<usize> = BTreeSet::new();
        let mut paired: Vec<(usize, usize, eva_types::InstanceTypeId)> = Vec::new();
        for c in candidates {
            if taken.contains(&c.a) || taken.contains(&c.b) {
                continue;
            }
            taken.insert(c.a);
            taken.insert(c.b);
            paired.push((c.a, c.b, c.type_id));
        }

        for (a, b, ty) in paired {
            assignments.push(Assignment {
                instance: PlannedInstance::New(ty),
                tasks: vec![pending[a].id, pending[b].id],
            });
        }
        for (idx, task) in pending.iter().enumerate() {
            if taken.contains(&idx) {
                continue;
            }
            if let Some((ty, _)) = reservation_price(ctx.catalog, &task.demand) {
                assignments.push(Assignment {
                    instance: PlannedInstance::New(ty),
                    tasks: vec![task.id],
                });
            }
        }

        let terminate = ctx
            .instances
            .iter()
            .map(|i| i.id)
            .filter(|id| ctx.tasks_on(*id).is_empty())
            .collect();
        Plan {
            assignments,
            terminate,
            full_reconfiguration: false,
        }
    }
}

/// Convenience: collect the planned co-resident task ids per assignment.
pub fn assignment_pairs(plan: &Plan) -> Vec<Vec<TaskId>> {
    plan.assignments.iter().map(|a| a.tasks.clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_cloud::Catalog;
    use eva_types::{DemandSpec, InstanceId, JobId, ResourceVector, SimDuration, SimTime};

    fn task(job: u64, gpu: u32, cpu: u32, ram_gb: u64, workload: u32) -> TaskSnapshot {
        TaskSnapshot {
            id: TaskId::new(JobId(job), 0),
            workload: WorkloadKind(workload),
            demand: DemandSpec::uniform(ResourceVector::with_ram_gb(gpu, cpu, ram_gb)),
            checkpoint_delay: SimDuration::from_secs(2),
            launch_delay: SimDuration::from_secs(10),
            gang_size: 1,
            gang_coupled: false,
            assigned_to: None,
            remaining_hint: None,
        }
    }

    fn friendly_profile() -> OracleProfile {
        OracleProfile::from_fn(&(0..8).map(WorkloadKind).collect::<Vec<_>>(), |_, _| 0.98)
    }

    #[test]
    fn low_interference_pairs_colocate() {
        let catalog = Catalog::aws_eval_2025();
        // A 1-GPU task + a small CPU task: pair fits p3.2xlarge and the
        // TNRP ratio exceeds 1.
        let tasks = vec![task(1, 1, 4, 24, 0), task(2, 0, 4, 8, 1)];
        let ctx = SchedulerContext {
            now: SimTime::ZERO,
            catalog: &catalog,
            tasks: &tasks,
            instances: &[],
        };
        let plan = OwlScheduler::new(friendly_profile()).plan(&ctx);
        assert_eq!(plan.assignments.len(), 1);
        assert_eq!(plan.assignments[0].tasks.len(), 2);
    }

    #[test]
    fn high_interference_pairs_stay_apart() {
        let catalog = Catalog::aws_eval_2025();
        let mut profile = friendly_profile();
        profile.set(WorkloadKind(0), WorkloadKind(1), 0.5);
        let tasks = vec![task(1, 1, 4, 24, 0), task(2, 0, 4, 8, 1)];
        let ctx = SchedulerContext {
            now: SimTime::ZERO,
            catalog: &catalog,
            tasks: &tasks,
            instances: &[],
        };
        let plan = OwlScheduler::new(profile).plan(&ctx);
        assert_eq!(plan.assignments.len(), 2);
        for a in &plan.assignments {
            assert_eq!(a.tasks.len(), 1);
        }
    }

    #[test]
    fn cost_inefficient_pairs_are_rejected() {
        let catalog = Catalog::aws_eval_2025();
        // Two tiny CPU tasks: cheapest joint type costs as much as two
        // singles (linear pricing), ratio < 1 → no pairing... unless the
        // joint type is the same cost; then ratio = (2×rp×0.98)/(2×rp) < 1.
        let tasks = vec![task(1, 0, 2, 4, 2), task(2, 0, 2, 4, 3)];
        let ctx = SchedulerContext {
            now: SimTime::ZERO,
            catalog: &catalog,
            tasks: &tasks,
            instances: &[],
        };
        let plan = OwlScheduler::new(friendly_profile()).plan(&ctx);
        assert_eq!(plan.assignments.len(), 2);
    }

    #[test]
    fn pairs_max_out_at_two_tasks() {
        let catalog = Catalog::aws_eval_2025();
        let tasks: Vec<TaskSnapshot> = (0..6)
            .map(|i| {
                if i % 2 == 0 {
                    task(i, 1, 4, 24, (i % 8) as u32)
                } else {
                    task(i, 0, 4, 8, (i % 8) as u32)
                }
            })
            .collect();
        let ctx = SchedulerContext {
            now: SimTime::ZERO,
            catalog: &catalog,
            tasks: &tasks,
            instances: &[],
        };
        let plan = OwlScheduler::new(friendly_profile()).plan(&ctx);
        for a in &plan.assignments {
            assert!(a.tasks.len() <= 2, "Owl co-locates pairs only");
        }
        // The three GPU+CPU pairs all form.
        let pairs = plan
            .assignments
            .iter()
            .filter(|a| a.tasks.len() == 2)
            .count();
        assert_eq!(pairs, 3);
    }

    #[test]
    fn running_tasks_are_untouched_and_empties_released() {
        let catalog = Catalog::aws_eval_2025();
        let ty = catalog.by_name("p3.2xlarge").unwrap().id;
        let mut running = task(1, 1, 4, 24, 0);
        running.assigned_to = Some(InstanceId(0));
        let tasks = vec![running];
        let instances = vec![
            eva_core::InstanceSnapshot {
                id: InstanceId(0),
                type_id: ty,
            },
            eva_core::InstanceSnapshot {
                id: InstanceId(1),
                type_id: ty,
            },
        ];
        let ctx = SchedulerContext {
            now: SimTime::ZERO,
            catalog: &catalog,
            tasks: &tasks,
            instances: &instances,
        };
        let plan = OwlScheduler::new(friendly_profile()).plan(&ctx);
        assert!(plan.migrations(&tasks, false).is_empty());
        assert_eq!(plan.terminate, vec![InstanceId(1)]);
    }

    #[test]
    fn oracle_profile_composes_multiplicatively() {
        let mut p = OracleProfile::new();
        p.set(WorkloadKind(0), WorkloadKind(1), 0.9);
        p.set(WorkloadKind(0), WorkloadKind(2), 0.8);
        let t = p.estimate(WorkloadKind(0), &[WorkloadKind(1), WorkloadKind(2)]);
        assert!((t - 0.72).abs() < 1e-12);
        // Unknown pairs default to 1.0.
        assert_eq!(p.estimate(WorkloadKind(5), &[WorkloadKind(6)]), 1.0);
    }
}
