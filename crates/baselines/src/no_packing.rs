//! The No-Packing scheduler: one instance per task.
//!
//! Every task runs alone on the cheapest instance type that hosts it (its
//! reservation-price type). No co-location means no interference and no
//! migration — but maximal instance count. This is the strategy most
//! existing cloud cluster managers use and the baseline all of the paper's
//! cost numbers are normalized against.

use eva_core::{reservation_price, Assignment, Plan, PlannedInstance, Scheduler, SchedulerContext};

/// See the module docs.
#[derive(Debug, Default)]
pub struct NoPackingScheduler;

impl NoPackingScheduler {
    /// Builds the scheduler.
    pub fn new() -> Self {
        NoPackingScheduler
    }
}

impl Scheduler for NoPackingScheduler {
    fn name(&self) -> &'static str {
        "No-Packing"
    }

    fn plan(&mut self, ctx: &SchedulerContext<'_>) -> Plan {
        let mut assignments = Vec::new();
        // Keep every running task where it is.
        for inst in ctx.instances {
            let tasks: Vec<_> = ctx.tasks_on(inst.id).iter().map(|t| t.id).collect();
            if !tasks.is_empty() {
                assignments.push(Assignment {
                    instance: PlannedInstance::Existing(inst.id),
                    tasks,
                });
            }
        }
        // New instances for pending tasks.
        for task in ctx.pending_tasks() {
            if let Some((ty, _)) = reservation_price(ctx.catalog, &task.demand) {
                assignments.push(Assignment {
                    instance: PlannedInstance::New(ty),
                    tasks: vec![task.id],
                });
            }
        }
        // Drop empty instances.
        let terminate = ctx
            .instances
            .iter()
            .map(|i| i.id)
            .filter(|id| ctx.tasks_on(*id).is_empty())
            .collect();
        Plan {
            assignments,
            terminate,
            full_reconfiguration: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_cloud::Catalog;
    use eva_core::{InstanceSnapshot, TaskSnapshot};
    use eva_types::{
        DemandSpec, InstanceId, JobId, ResourceVector, SimDuration, SimTime, TaskId, WorkloadKind,
    };

    fn task(job: u64, gpu: u32, cpu: u32, ram_gb: u64, assigned: Option<u64>) -> TaskSnapshot {
        TaskSnapshot {
            id: TaskId::new(JobId(job), 0),
            workload: WorkloadKind(0),
            demand: DemandSpec::uniform(ResourceVector::with_ram_gb(gpu, cpu, ram_gb)),
            checkpoint_delay: SimDuration::from_secs(2),
            launch_delay: SimDuration::from_secs(10),
            gang_size: 1,
            gang_coupled: false,
            assigned_to: assigned.map(InstanceId),
            remaining_hint: None,
        }
    }

    #[test]
    fn each_pending_task_gets_its_rp_instance() {
        let catalog = Catalog::aws_eval_2025();
        let tasks = vec![task(1, 1, 4, 24, None), task(2, 0, 4, 8, None)];
        let ctx = SchedulerContext {
            now: SimTime::ZERO,
            catalog: &catalog,
            tasks: &tasks,
            instances: &[],
        };
        let plan = NoPackingScheduler::new().plan(&ctx);
        assert_eq!(plan.assignments.len(), 2);
        let names: Vec<&str> = plan
            .assignments
            .iter()
            .map(|a| match a.instance {
                PlannedInstance::New(ty) => catalog.get(ty).unwrap().name.as_str(),
                _ => panic!("expected new instances"),
            })
            .collect();
        assert_eq!(names, vec!["p3.2xlarge", "c7i.xlarge"]);
        for a in &plan.assignments {
            assert_eq!(a.tasks.len(), 1);
        }
    }

    #[test]
    fn running_tasks_never_move() {
        let catalog = Catalog::aws_eval_2025();
        let ty = catalog.by_name("p3.2xlarge").unwrap().id;
        let tasks = vec![task(1, 1, 4, 24, Some(0))];
        let instances = vec![InstanceSnapshot {
            id: InstanceId(0),
            type_id: ty,
        }];
        let ctx = SchedulerContext {
            now: SimTime::ZERO,
            catalog: &catalog,
            tasks: &tasks,
            instances: &instances,
        };
        let plan = NoPackingScheduler::new().plan(&ctx);
        assert!(plan.migrations(&tasks, false).is_empty());
        assert!(plan.terminate.is_empty());
    }

    #[test]
    fn empty_instances_terminate() {
        let catalog = Catalog::aws_eval_2025();
        let ty = catalog.by_name("c7i.large").unwrap().id;
        let instances = vec![InstanceSnapshot {
            id: InstanceId(7),
            type_id: ty,
        }];
        let ctx = SchedulerContext {
            now: SimTime::ZERO,
            catalog: &catalog,
            tasks: &[],
            instances: &instances,
        };
        let plan = NoPackingScheduler::new().plan(&ctx);
        assert_eq!(plan.terminate, vec![InstanceId(7)]);
    }

    #[test]
    fn infeasible_tasks_are_skipped() {
        let catalog = Catalog::aws_eval_2025();
        let tasks = vec![task(1, 99, 4, 24, None)];
        let ctx = SchedulerContext {
            now: SimTime::ZERO,
            catalog: &catalog,
            tasks: &tasks,
            instances: &[],
        };
        let plan = NoPackingScheduler::new().plan(&ctx);
        assert!(plan.assignments.is_empty());
    }
}
