//! The Synergy baseline (OSDI '22), adapted as in §6.1.
//!
//! Synergy is a best-fit packing heuristic that minimizes resource
//! fragmentation and re-derives placements as jobs arrive and complete.
//! The paper adapts it to cloud-based clusters by launching the
//! lowest-cost instance type that can host a task when no existing
//! instance has room, and enhances it to be interference-aware through
//! throughput-normalized reservation prices. Unlike Eva it has no notion
//! of instance-type optimization or migration-cost trade-offs: every
//! round it simply (1) evicts tasks from instances whose set TNRP no
//! longer covers the instance cost, then (2) best-fit places evicted and
//! newly arrived tasks.

use std::collections::BTreeMap;

use eva_core::{
    reservation_price, Assignment, JobObservation, Plan, PlannedInstance, ReservationPrices,
    Scheduler, SchedulerContext, TaskSnapshot, TnrpEvaluator,
};
use eva_interference::ThroughputMonitor;
use eva_types::{InstanceId, ResourceVector};

/// See the module docs.
pub struct SynergyScheduler {
    monitor: ThroughputMonitor,
}

impl SynergyScheduler {
    /// Builds the scheduler with the paper's default pairwise throughput.
    pub fn new() -> Self {
        SynergyScheduler {
            monitor: ThroughputMonitor::with_default_tput(0.95),
        }
    }
}

impl Default for SynergyScheduler {
    fn default() -> Self {
        SynergyScheduler::new()
    }
}

impl Scheduler for SynergyScheduler {
    fn name(&self) -> &'static str {
        "Synergy"
    }

    fn plan(&mut self, ctx: &SchedulerContext<'_>) -> Plan {
        let prices = ReservationPrices::compute(ctx.catalog, ctx.tasks.iter());
        let eval = TnrpEvaluator::new(self.monitor.table(), &prices, false);

        let mut used: BTreeMap<InstanceId, ResourceVector> = BTreeMap::new();
        let mut residents: BTreeMap<InstanceId, Vec<&TaskSnapshot>> = BTreeMap::new();
        for inst in ctx.instances {
            used.insert(inst.id, ResourceVector::ZERO);
            residents.insert(inst.id, Vec::new());
        }
        for t in ctx.tasks {
            if let Some(id) = t.assigned_to {
                if let Some(inst) = ctx.instances.iter().find(|i| i.id == id) {
                    if let Some(ty) = ctx.catalog.get(inst.type_id) {
                        *used.entry(id).or_default() += ty.demand_of(&t.demand);
                    }
                    residents.entry(id).or_default().push(t);
                }
            }
        }

        // Phase 1: evict residents of no-longer-cost-efficient instances.
        let mut pool: Vec<&TaskSnapshot> = ctx.pending_tasks();
        for inst in ctx.instances {
            let Some(ty) = ctx.catalog.get(inst.type_id) else {
                continue;
            };
            let set = residents.get(&inst.id).cloned().unwrap_or_default();
            if !set.is_empty() && !eval.is_cost_efficient(&set, ty.hourly_cost) {
                pool.extend(set);
                residents.insert(inst.id, Vec::new());
                used.insert(inst.id, ResourceVector::ZERO);
            }
        }
        // Stable large-first placement order.
        pool.sort_by(|a, b| {
            prices
                .rp_dollars(b.id)
                .partial_cmp(&prices.rp_dollars(a.id))
                .unwrap()
                .then(a.id.cmp(&b.id))
        });

        // Phase 2: best-fit place the pool.
        for task in pool {
            let mut best: Option<(InstanceId, f64)> = None;
            for inst in ctx.instances {
                let Some(ty) = ctx.catalog.get(inst.type_id) else {
                    continue;
                };
                let demand = ty.demand_of(&task.demand);
                let current = used.get(&inst.id).copied().unwrap_or(ResourceVector::ZERO);
                let Some(total) = current.checked_add(&demand) else {
                    continue;
                };
                if !total.fits_within(&ty.capacity) {
                    continue;
                }
                let set = residents.get(&inst.id).cloned().unwrap_or_default();
                if set.is_empty() {
                    // An empty box is only worth keeping when it is no more
                    // expensive than the task's reservation-price type.
                    if ty.hourly_cost.as_dollars() > prices.rp_dollars(task.id) + 1e-9 {
                        continue;
                    }
                } else {
                    // Interference-aware admission: a running box is a sunk
                    // cost, but joining it must not destroy value.
                    let before = eval.tnrp_set(&set);
                    let mut joined = set.clone();
                    joined.push(task);
                    if eval.tnrp_set(&joined) < before {
                        continue;
                    }
                }
                let leftover = ty.capacity.saturating_sub(&total);
                let frag = f64::from(leftover.gpu) * 4.0
                    + f64::from(leftover.cpu) / 8.0
                    + leftover.ram_mb as f64 / (64.0 * 1024.0);
                if best.is_none_or(|(_, b)| frag < b) {
                    best = Some((inst.id, frag));
                }
            }
            match best {
                Some((id, _)) => {
                    if let Some(ty) = ctx
                        .instances
                        .iter()
                        .find(|i| i.id == id)
                        .and_then(|i| ctx.catalog.get(i.type_id))
                    {
                        *used.entry(id).or_default() += ty.demand_of(&task.demand);
                    }
                    residents.entry(id).or_default().push(task);
                }
                None => {
                    if reservation_price(ctx.catalog, &task.demand).is_some() {
                        // Defer to phase 3 — tracked by leaving the task
                        // out of `residents`; collected below.
                    }
                }
            }
        }

        // Phase 3: build assignments; unplaced pool tasks open their
        // reservation-price instance.
        let mut assignments: Vec<Assignment> = Vec::new();
        let mut placed: std::collections::BTreeSet<eva_types::TaskId> =
            std::collections::BTreeSet::new();
        for inst in ctx.instances {
            let set = residents.get(&inst.id).cloned().unwrap_or_default();
            if set.is_empty() {
                continue;
            }
            placed.extend(set.iter().map(|t| t.id));
            assignments.push(Assignment {
                instance: PlannedInstance::Existing(inst.id),
                tasks: set.iter().map(|t| t.id).collect(),
            });
        }
        for task in ctx.tasks {
            if placed.contains(&task.id) {
                continue;
            }
            if let Some((ty, _)) = reservation_price(ctx.catalog, &task.demand) {
                assignments.push(Assignment {
                    instance: PlannedInstance::New(ty),
                    tasks: vec![task.id],
                });
            }
        }

        let terminate = ctx
            .instances
            .iter()
            .map(|i| i.id)
            .filter(|id| {
                !assignments
                    .iter()
                    .any(|a| matches!(a.instance, PlannedInstance::Existing(i) if i == *id))
            })
            .collect();
        Plan {
            assignments,
            terminate,
            full_reconfiguration: false,
        }
    }

    fn observe(&mut self, observations: &[JobObservation]) {
        for obs in observations {
            if obs.gang_coupled && obs.contexts.len() > 1 {
                self.monitor
                    .observe_multi_task(obs.job, &obs.contexts, obs.observed_tput);
            } else {
                for ctx in &obs.contexts {
                    self.monitor
                        .observe_single_task(ctx.clone(), obs.observed_tput);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_cloud::Catalog;
    use eva_core::InstanceSnapshot;
    use eva_interference::TaskContext;
    use eva_types::{DemandSpec, JobId, SimDuration, SimTime, TaskId, WorkloadKind};

    fn task(job: u64, gpu: u32, cpu: u32, ram_gb: u64, assigned: Option<u64>) -> TaskSnapshot {
        TaskSnapshot {
            id: TaskId::new(JobId(job), 0),
            workload: WorkloadKind((job % 8) as u32),
            demand: DemandSpec::uniform(ResourceVector::with_ram_gb(gpu, cpu, ram_gb)),
            checkpoint_delay: SimDuration::from_secs(2),
            launch_delay: SimDuration::from_secs(10),
            gang_size: 1,
            gang_coupled: false,
            assigned_to: assigned.map(InstanceId),
            remaining_hint: None,
        }
    }

    #[test]
    fn best_fit_prefers_tightest_instance() {
        let catalog = Catalog::aws_eval_2025();
        let big = catalog.by_name("p3.8xlarge").unwrap().id;
        let small = catalog.by_name("p3.2xlarge").unwrap().id;
        let tasks = vec![task(1, 1, 4, 24, None)];
        let instances = vec![
            InstanceSnapshot {
                id: InstanceId(0),
                type_id: big,
            },
            InstanceSnapshot {
                id: InstanceId(1),
                type_id: small,
            },
        ];
        let ctx = SchedulerContext {
            now: SimTime::ZERO,
            catalog: &catalog,
            tasks: &tasks,
            instances: &instances,
        };
        let plan = SynergyScheduler::new().plan(&ctx);
        let a = plan
            .assignments
            .iter()
            .find(|a| a.tasks.contains(&TaskId::new(JobId(1), 0)))
            .unwrap();
        assert!(matches!(a.instance, PlannedInstance::Existing(i) if i == InstanceId(1)));
        assert_eq!(plan.terminate, vec![InstanceId(0)]);
    }

    #[test]
    fn small_tasks_do_not_keep_empty_big_boxes_alive() {
        let catalog = Catalog::aws_eval_2025();
        let big = catalog.by_name("p3.8xlarge").unwrap().id;
        let tasks = vec![task(1, 0, 2, 4, None)];
        let instances = vec![InstanceSnapshot {
            id: InstanceId(0),
            type_id: big,
        }];
        let ctx = SchedulerContext {
            now: SimTime::ZERO,
            catalog: &catalog,
            tasks: &tasks,
            instances: &instances,
        };
        let plan = SynergyScheduler::new().plan(&ctx);
        // The tiny task launches its cheap RP type; the big box dies.
        assert_eq!(plan.new_instance_count(), 1);
        assert_eq!(plan.terminate, vec![InstanceId(0)]);
    }

    #[test]
    fn stranded_riders_are_evicted_to_cheap_instances() {
        let catalog = Catalog::aws_eval_2025();
        let big = catalog.by_name("p3.8xlarge").unwrap().id;
        // A lone small CPU task left on a $12.24 box after its co-resident
        // finished: the set TNRP (≈ $0.18) no longer covers the cost, so
        // Synergy re-packs it onto its reservation-price type.
        let tasks = vec![task(1, 0, 4, 8, Some(0))];
        let instances = vec![InstanceSnapshot {
            id: InstanceId(0),
            type_id: big,
        }];
        let ctx = SchedulerContext {
            now: SimTime::ZERO,
            catalog: &catalog,
            tasks: &tasks,
            instances: &instances,
        };
        let plan = SynergyScheduler::new().plan(&ctx);
        assert_eq!(plan.terminate, vec![InstanceId(0)]);
        let PlannedInstance::New(ty) = plan.assignments[0].instance else {
            panic!("expected re-placement")
        };
        assert_eq!(catalog.get(ty).unwrap().name, "c7i.xlarge");
    }

    #[test]
    fn learned_interference_blocks_bad_joins() {
        let catalog = Catalog::aws_eval_2025();
        let ty = catalog.by_name("p3.8xlarge").unwrap().id;
        // Resident worth keeping (imbalanced task whose RP covers the box).
        let mut resident = task(0, 1, 32, 24, Some(0));
        resident.workload = WorkloadKind(0);
        let mut newcomer = task(1, 1, 4, 24, None);
        newcomer.workload = WorkloadKind(1);
        let tasks = vec![resident, newcomer];
        let instances = vec![InstanceSnapshot {
            id: InstanceId(0),
            type_id: ty,
        }];
        let mut sched = SynergyScheduler::new();
        // Joining would collapse the resident's throughput to 0.2: the set
        // TNRP would *drop*, so the join is rejected.
        sched.observe(&[JobObservation {
            job: JobId(9),
            gang_coupled: false,
            observed_tput: 0.2,
            contexts: vec![TaskContext::new(
                TaskId::new(JobId(9), 0),
                WorkloadKind(0),
                vec![WorkloadKind(1)],
            )],
        }]);
        let ctx = SchedulerContext {
            now: SimTime::ZERO,
            catalog: &catalog,
            tasks: &tasks,
            instances: &instances,
        };
        let plan = sched.plan(&ctx);
        let newcomer_assignment = plan
            .assignments
            .iter()
            .find(|a| a.tasks.contains(&TaskId::new(JobId(1), 0)))
            .unwrap();
        assert!(matches!(
            newcomer_assignment.instance,
            PlannedInstance::New(_)
        ));
    }

    #[test]
    fn falls_back_to_cheapest_new_type() {
        let catalog = Catalog::aws_eval_2025();
        let tasks = vec![task(1, 0, 6, 8, None)];
        let ctx = SchedulerContext {
            now: SimTime::ZERO,
            catalog: &catalog,
            tasks: &tasks,
            instances: &[],
        };
        let plan = SynergyScheduler::new().plan(&ctx);
        let PlannedInstance::New(ty) = plan.assignments[0].instance else {
            panic!()
        };
        assert_eq!(catalog.get(ty).unwrap().name, "c7i.2xlarge");
    }

    #[test]
    fn efficient_residents_stay_put() {
        let catalog = Catalog::aws_eval_2025();
        let ty = catalog.by_name("p3.2xlarge").unwrap().id;
        let tasks = vec![task(0, 1, 4, 24, Some(0))];
        let instances = vec![InstanceSnapshot {
            id: InstanceId(0),
            type_id: ty,
        }];
        let ctx = SchedulerContext {
            now: SimTime::ZERO,
            catalog: &catalog,
            tasks: &tasks,
            instances: &instances,
        };
        let plan = SynergyScheduler::new().plan(&ctx);
        assert!(plan.migrations(&tasks, false).is_empty());
        assert!(plan.terminate.is_empty());
    }
}
