//! Layer 2: the cluster world model.
//!
//! [`ClusterSim`] owns everything that exists in the simulated world —
//! provider, instances, jobs, task lifecycles, metric integrals — and
//! consumes events from the generic [`EventEngine`]. It drives the
//! scheduler through the round logic in the `observe` module but
//! contains no scheduling policy itself; report assembly lives in the
//! `report` module.
//!
//! World state lives in the slot-indexed SoA arenas of the private
//! `arena` module:
//! IDs intern to contiguous `u32` slots at construction, events carry
//! slots instead of IDs, and the per-event hot loops walk flat vectors.
//! Slot order is ID order, so every iteration (and therefore every float
//! accumulation) happens in exactly the sequence the former
//! `BTreeMap`-keyed world produced — reports are byte-identical.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};

use rand::rngs::StdRng;

use eva_baselines::{
    NoPackingScheduler, OracleProfile, OwlScheduler, StratusScheduler, SynergyScheduler,
};
use eva_cloud::{Catalog, CloudProvider, DelayModel};
use eva_core::{EvaScheduler, Scheduler};
use eva_types::{InstanceId, JobId, JobSpec, SimDuration, SimTime, TaskSpec, WorkloadKind};
use eva_workloads::{InterferenceModel, JobSource, Trace, TraceHandle, WorkloadCatalog};

use crate::arena::{WorldArena, NO_SLOT};
use crate::engine::{CancelToken, EventEngine, RngStreams, SimEvent, DELAY_STREAM};
use crate::faults::{FaultAction, FaultPlan};
use crate::metrics::{MetricsRegistry, MetricsSnapshot, SimReport};
use crate::runner::{InterferenceSpec, SchedulerKind, SimConfig};
use crate::script::{ExecAction, ExecActionKind, ExecScript};
use crate::state::TaskState;

/// Events the cluster world reacts to. Task/job events carry arena
/// slots, not IDs — dispatch is a direct index, never a lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Event {
    Arrival(usize),
    TaskReady { slot: u32, generation: u64 },
    JobDone { slot: u32, generation: u64 },
    Round,
    /// Injected fault striking (index into the compiled fault plan).
    Fault(usize),
    /// A windowed fault (capacity shock, straggler) lifting.
    FaultExpire(usize),
    /// The pending streamed job's arrival instant (streaming worlds
    /// pull one job ahead; the handler interns it and primes the next).
    Ingest,
}

impl SimEvent for Event {
    /// Same-timestamp dispatch priority: faults strike first (adversity
    /// never waits), then readiness and completions resolve before
    /// arrivals, arrivals before the round that schedules them.
    fn priority(&self) -> u8 {
        match self {
            Event::Fault(_) | Event::FaultExpire(_) => 0,
            Event::TaskReady { .. } => 0,
            Event::JobDone { .. } => 1,
            // An ingest *is* an arrival: same-time completions resolve
            // first, the round that schedules the newcomer fires after.
            Event::Arrival(_) | Event::Ingest => 2,
            Event::Round => 3,
        }
    }
}

/// Fraction of a job's completed work destroyed by one sim-side
/// checkpoint drop (the job's latest checkpoint is its recent work).
pub(crate) const CKPT_DROP_LOSS: f64 = 0.25;

/// A retired job's report contribution, folded out of the arena when
/// its slots are released (see [`SimConfig::retire_completed`]). Each
/// value is computed at the completion instant with the exact float
/// operations `report::finalize` would have applied to the frozen
/// lanes, so retirement never changes a report byte.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CompletedJob {
    pub id: JobId,
    pub jct_hours: f64,
    pub idle_hours: f64,
    pub mean_tput: f64,
}

/// The retired jobs' report contributions, folded incrementally.
///
/// `finalize` consumes completed jobs in ascending-id order (three
/// left-to-right float sums), so a naive log must hold every
/// [`CompletedJob`] until the end — the last O(total jobs) structure in
/// a streaming world. Instead the log folds its *closed prefix* as the
/// run progresses: once every id that can still complete is known to
/// exceed a pending entry's, that entry joins the running sums with the
/// identical addition `finalize` would have performed, and the entry is
/// dropped. Service-mode memory then tracks the in-flight window.
///
/// Folding is sound only while ids are strictly increasing in
/// ingestion order (otherwise a later, smaller id would have to fold
/// *before* already-folded entries). Batch worlds verify this over the
/// whole trace at construction; streaming worlds additionally require
/// the source's [`JobSource::ids_monotone`] promise, and a violation
/// (a lying source) stops further folding.
#[derive(Debug, Default)]
pub(crate) struct CompletedLog {
    /// Ids promised monotone and no violation observed.
    fold_ok: bool,
    /// Whether completed jobs' slots are being released (live-id
    /// tracking is only paid for when folding can actually happen).
    retire: bool,
    /// Largest id interned so far — the monotonicity detector.
    max_seen: Option<JobId>,
    /// Ids interned and not yet completed: the fold barrier.
    live: BTreeSet<JobId>,
    /// Completed entries awaiting a smaller live id to finish.
    pending: BTreeMap<JobId, CompletedJob>,
    /// Count and ascending-id left-fold sums of dropped entries.
    folded_count: usize,
    folded_jct: f64,
    folded_idle: f64,
    folded_tput: f64,
}

impl CompletedLog {
    pub(crate) fn new(retire: bool) -> Self {
        CompletedLog {
            fold_ok: true,
            retire,
            ..CompletedLog::default()
        }
    }

    /// Withdraws the folding permission (non-monotone batch trace, or
    /// a source that cannot promise monotone ids). Pending entries are
    /// then held until the end of the run.
    pub(crate) fn forbid_fold(&mut self) {
        self.fold_ok = false;
    }

    pub(crate) fn fold_ok(&self) -> bool {
        self.fold_ok
    }

    /// Notes a job entering the world. Detects id-order violations; in
    /// retire mode the id also joins the fold barrier.
    pub(crate) fn intern(&mut self, id: JobId) {
        if self.max_seen.is_some_and(|m| id <= m) {
            self.fold_ok = false;
        } else {
            self.max_seen = Some(id);
        }
        if self.retire {
            self.live.insert(id);
        }
    }

    /// Logs a retired job's frozen contribution, then folds every
    /// pending entry no live id can precede.
    pub(crate) fn complete(&mut self, c: CompletedJob) {
        self.live.remove(&c.id);
        self.pending.insert(c.id, c);
        if !self.fold_ok {
            return;
        }
        while let Some(entry) = self.pending.first_entry() {
            // A pending id never equals a live id (completion removed it).
            if self.live.first().is_some_and(|&min| *entry.key() > min) {
                break;
            }
            let c = entry.remove();
            self.folded_count += 1;
            self.folded_jct += c.jct_hours;
            self.folded_idle += c.idle_hours;
            self.folded_tput += c.mean_tput;
        }
    }

    /// Retired jobs logged so far, folded prefix included.
    pub(crate) fn len(&self) -> usize {
        self.folded_count + self.pending.len()
    }

    /// The folded prefix: `(count, jct sum, idle sum, tput sum)`.
    pub(crate) fn folded(&self) -> (usize, f64, f64, f64) {
        (
            self.folded_count,
            self.folded_jct,
            self.folded_idle,
            self.folded_tput,
        )
    }

    /// Entries not yet folded, in ascending id order.
    pub(crate) fn pending_rows(&self) -> impl Iterator<Item = (JobId, f64, f64, f64)> + '_ {
        self.pending
            .values()
            .map(|c| (c.id, c.jct_hours, c.idle_hours, c.mean_tput))
    }
}

/// A streaming world's connection to its [`JobSource`]: one job pulled
/// ahead (`pending`), scheduled as an [`Event::Ingest`] at its arrival
/// instant. Pulling ahead keeps the event heap's time horizon honest —
/// the engine always knows when the next external arrival lands.
pub(crate) struct StreamState {
    source: Box<dyn JobSource>,
    pending: Option<JobSpec>,
}

/// One instance's slice of the incremental integral rates, indexed by
/// `InstanceId` (provider IDs are sequential and never reused). All
/// components are integer-valued `f64`s, so adding and later
/// subtracting them leaves the running sums bit-identical to a
/// from-scratch scan in any order.
#[derive(Debug, Clone, Copy, Default)]
struct InstAcct {
    /// Whether the instance currently contributes to the rates: set at
    /// provision (if its type is cataloged), cleared once the clock
    /// reaches its termination time.
    counted: bool,
    cap: [f64; 3],
    alloc: [f64; 3],
    running: u32,
}

/// The simulated cluster: engine + world state + metric accumulators.
pub struct ClusterSim {
    pub(crate) cfg: SimConfig,
    pub(crate) catalog: Catalog,
    pub(crate) cloud: CloudProvider,
    pub(crate) rng: StdRng,
    pub(crate) interference: InterferenceModel,
    pub(crate) scheduler: Box<dyn Scheduler>,
    pub(crate) round_period: SimDuration,
    pub(crate) migration_delay_scale: f64,

    /// All job/task/instance state, slot-indexed (see [`crate::arena`]).
    pub(crate) world: WorldArena,
    pub(crate) draining: BTreeSet<InstanceId>,

    pub(crate) engine: EventEngine<Event>,
    pub(crate) round_pending: bool,
    pub(crate) arrivals_remaining: usize,
    pub(crate) recorder: Option<ExecScript>,

    // Streaming service state (batch worlds: `stream` is `None`, the
    // log stays empty unless retirement is on, and `first_arrival_seen`
    // stays `None` so reports keep reading the trace).
    pub(crate) stream: Option<StreamState>,
    pub(crate) retire_completed: bool,
    pub(crate) completed: CompletedLog,
    pub(crate) first_arrival_seen: Option<SimTime>,
    pub(crate) ingested_jobs: u64,
    pub(crate) metrics: MetricsRegistry,

    // Adversarial fault state.
    pub(crate) fault_plan: FaultPlan,
    pub(crate) fault_tokens: Vec<CancelToken>,
    pub(crate) active_stragglers: BTreeMap<usize, InstanceId>,
    pub(crate) preemption_log: Vec<(SimTime, InstanceId)>,
    pub(crate) worker_crashes: u64,
    pub(crate) dropped_checkpoints: u64,

    // Metric accumulators (time integrals in hours).
    pub(crate) task_running_hours: f64,
    pub(crate) alloc_integral: [f64; 3],
    pub(crate) capacity_integral: [f64; 3],
    pub(crate) migration_count: u64,
    pub(crate) total_tasks: usize,
    pub(crate) rounds: u64,
    pub(crate) full_rounds: u64,

    // Incremental-integral state (see the dirty-set invariants in
    // `crate::arena`): per-instance accounting plus the maintained
    // capacity/allocation/running-task rates `advance_to` integrates.
    inst_acct: Vec<InstAcct>,
    cap_rate: [f64; 3],
    alloc_rate: [f64; 3],
    running_rate: usize,
    /// Future-dated terminations (deadline, instance) whose capacity is
    /// still counted; `advance_to` retires them once the clock passes.
    cap_pending: BTreeSet<(SimTime, InstanceId)>,
    /// Debug-only eager reference semantics (see
    /// [`SimConfig::reference_full_scan`]).
    full_scan: bool,

    // Reusable hot-path scratch (per-event, allocation-free steady state).
    tput_buf: RefCell<Vec<WorkloadKind>>,
    term_scratch: Vec<InstanceId>,
    dirty_scratch: Vec<u32>,
}

impl ClusterSim {
    /// Builds the world for one experiment.
    ///
    /// Jobs whose tasks fit no catalog instance type are dropped up front
    /// with a warning (the paper likewise removes them from the trace,
    /// §6.1); otherwise they could never complete and the simulation would
    /// not terminate.
    pub fn new(cfg: &SimConfig) -> Self {
        // Compile the fault plan from the *caller's* trace handle, before
        // feasibility filtering — the live backend compiles from the same
        // handle, so both sides must hash the same horizon.
        let fault_plan = FaultPlan::for_trace(cfg.faults, cfg.seed, &cfg.trace);
        let catalog = Catalog::aws_eval_2025();
        let workloads = WorkloadCatalog::table7();
        let fits = |job: &eva_types::JobSpec| {
            job.tasks
                .iter()
                .all(|t| catalog.cheapest_fit(&t.demand).is_some())
        };
        // The common case drops nothing, so the world shares the caller's
        // trace by handle instead of cloning the job vector.
        let trace = if cfg.trace.jobs().iter().all(&fits) {
            cfg.trace.clone()
        } else {
            let feasible: Vec<_> = cfg
                .trace
                .jobs()
                .iter()
                .filter(|job| {
                    let ok = fits(job);
                    if !ok {
                        eprintln!("warning: dropping unschedulable {}", job.id);
                    }
                    ok
                })
                .cloned()
                .collect();
            TraceHandle::new(Trace::new(feasible))
        };
        let cfg = SimConfig {
            trace,
            ..cfg.clone()
        };
        let interference = match cfg.interference {
            InterferenceSpec::Measured => InterferenceModel::measured(&workloads),
            InterferenceSpec::Uniform(t) => InterferenceModel::uniform(&workloads, t),
        };
        let scheduler: Box<dyn Scheduler> = match &cfg.scheduler {
            SchedulerKind::NoPacking => Box::new(NoPackingScheduler::new()),
            SchedulerKind::Stratus => Box::new(StratusScheduler::new()),
            SchedulerKind::Synergy => Box::new(SynergyScheduler::new()),
            SchedulerKind::Owl => {
                // Owl receives the ground-truth pairwise profile exclusively.
                let kinds: Vec<WorkloadKind> = workloads.iter().map(|w| w.kind).collect();
                let model = interference.clone();
                let profile = OracleProfile::from_fn(&kinds, |a, b| model.pairwise(a, b));
                Box::new(OwlScheduler::new(profile))
            }
            SchedulerKind::Eva(eva_cfg) => Box::new(EvaScheduler::new(eva_cfg.clone())),
        };
        let delays = DelayModel::table1(cfg.fidelity);
        let cloud = CloudProvider::new(catalog.clone(), delays);
        let world = WorldArena::from_trace(cfg.trace.trace());

        let mut sim = ClusterSim {
            catalog,
            cloud,
            rng: RngStreams::new(cfg.seed).stream(DELAY_STREAM),
            interference,
            scheduler,
            round_period: cfg.round_period,
            migration_delay_scale: cfg.migration_delay_scale,
            world,
            draining: BTreeSet::new(),
            engine: EventEngine::new(),
            round_pending: false,
            arrivals_remaining: cfg.trace.len(),
            recorder: None,
            stream: None,
            retire_completed: cfg.retire_completed,
            completed: CompletedLog::new(cfg.retire_completed),
            first_arrival_seen: None,
            ingested_jobs: 0,
            metrics: MetricsRegistry::default(),
            fault_plan,
            fault_tokens: Vec::new(),
            active_stragglers: BTreeMap::new(),
            preemption_log: Vec::new(),
            worker_crashes: 0,
            dropped_checkpoints: 0,
            task_running_hours: 0.0,
            alloc_integral: [0.0; 3],
            capacity_integral: [0.0; 3],
            migration_count: 0,
            total_tasks: cfg.trace.jobs().iter().map(|j| j.num_tasks()).sum(),
            rounds: 0,
            full_rounds: 0,
            inst_acct: Vec::new(),
            cap_rate: [0.0; 3],
            alloc_rate: [0.0; 3],
            running_rate: 0,
            cap_pending: BTreeSet::new(),
            full_scan: cfg.reference_full_scan,
            tput_buf: RefCell::new(Vec::new()),
            term_scratch: Vec::new(),
            dirty_scratch: Vec::new(),
            cfg,
        };
        // Batch worlds know every id up front, so one pass both decides
        // fold legality (monotone ids) and seeds the fold barrier.
        for job in sim.cfg.trace.jobs() {
            sim.completed.intern(job.id);
        }
        for (idx, job) in sim.cfg.trace.jobs().iter().enumerate() {
            sim.engine.schedule(job.arrival, Event::Arrival(idx));
        }
        // Inject the fault plan. Price steps compile straight into the
        // provider's billing schedule (they change no control-plane
        // behaviour); everything else enters the event heap as
        // tombstone-cancelable events so a drained workload can retire
        // leftover faults without dragging the clock forward.
        let price_steps: Vec<(SimTime, f64)> = sim
            .fault_plan
            .events
            .iter()
            .filter_map(|e| match e.action {
                FaultAction::PriceStep { factor } => Some((e.at, factor)),
                _ => None,
            })
            .collect();
        if !price_steps.is_empty() {
            sim.cloud.set_price_schedule(price_steps);
        }
        for i in 0..sim.fault_plan.events.len() {
            let ev = sim.fault_plan.events[i];
            match ev.action {
                FaultAction::PriceStep { .. } => {}
                FaultAction::CapacityShock { until } | FaultAction::Straggler { until, .. } => {
                    let strike = sim.engine.schedule_cancelable(ev.at, Event::Fault(i));
                    let lift = sim.engine.schedule_cancelable(until, Event::FaultExpire(i));
                    sim.fault_tokens.push(strike);
                    sim.fault_tokens.push(lift);
                }
                _ => {
                    let strike = sim.engine.schedule_cancelable(ev.at, Event::Fault(i));
                    sim.fault_tokens.push(strike);
                }
            }
        }
        sim
    }

    /// Builds a streaming world fed by `source` instead of a trace.
    ///
    /// Arrivals are pulled lazily, one ahead of the clock, through
    /// `Event::Ingest` — the world never holds more than the in-flight
    /// window (plus, with [`SimConfig::retire_completed`] off, retired
    /// lanes). `cfg.trace` is ignored; fault plans compile over the
    /// empty-trace horizon, so streaming fault coverage comes from the
    /// batch-mode lockstep tests.
    pub fn from_source(cfg: &SimConfig, source: Box<dyn JobSource>) -> Self {
        let empty = SimConfig {
            trace: TraceHandle::new(Trace::new(Vec::new())),
            ..cfg.clone()
        };
        let mut sim = ClusterSim::new(&empty);
        sim.world.enable_streaming();
        // Streamed ids are unknown ahead of time: folding needs the
        // source's explicit promise, not just observed monotonicity.
        if !source.ids_monotone() {
            sim.completed.forbid_fold();
        }
        sim.stream = Some(StreamState {
            source,
            pending: None,
        });
        sim.prime_ingest();
        sim
    }

    /// Pulls the next feasible job off the stream and schedules its
    /// ingest. Infeasible jobs are dropped with the same warning as the
    /// batch constructor's trace filter.
    fn prime_ingest(&mut self) {
        let Some(mut stream) = self.stream.take() else {
            return;
        };
        debug_assert!(stream.pending.is_none(), "priming over a pending job");
        while let Some(job) = stream.source.next_job() {
            let feasible = job
                .tasks
                .iter()
                .all(|t| self.catalog.cheapest_fit(&t.demand).is_some());
            if !feasible {
                eprintln!("warning: dropping unschedulable {}", job.id);
                continue;
            }
            // A source that lags the clock still arrives causally.
            let at = job.arrival.max(self.now());
            stream.pending = Some(job);
            self.stream = Some(stream);
            self.push(at, Event::Ingest);
            return;
        }
        self.stream = Some(stream);
    }

    /// Interns the pending streamed job at its arrival instant, then
    /// pulls the next one.
    fn handle_ingest(&mut self) {
        let Some(job) = self.stream.as_mut().and_then(|s| s.pending.take()) else {
            return;
        };
        self.ingested_jobs += 1;
        self.total_tasks += job.num_tasks();
        if self.first_arrival_seen.is_none() {
            self.first_arrival_seen = Some(job.arrival);
        }
        self.metrics.record_arrival();
        self.completed.intern(job.id);
        let slot = self.world.intern_job(job);
        self.world.jobs.activate(slot);
        self.schedule_round(self.now());
        self.prime_ingest();
    }

    /// True when no streamed job is waiting to be ingested (batch
    /// worlds: always).
    pub(crate) fn stream_drained(&self) -> bool {
        self.stream.as_ref().is_none_or(|s| s.pending.is_none())
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// Scheduling rounds executed so far.
    pub fn rounds_executed(&self) -> u64 {
        self.rounds
    }

    /// Starts recording the control-plane action stream (see
    /// [`ExecScript`]); call before the first [`ClusterSim::step`].
    pub fn enable_recording(&mut self) {
        self.recorder = Some(ExecScript::default());
    }

    /// Takes the recorded script, ending recording.
    pub fn take_script(&mut self) -> ExecScript {
        self.recorder.take().unwrap_or_default()
    }

    pub(crate) fn record(&mut self, kind: ExecActionKind) {
        if let Some(script) = self.recorder.as_mut() {
            let at = self.engine.now();
            script.actions.push(ExecAction { at, kind });
        }
    }

    /// The spec of the job in `jslot`: slot-owned for streamed jobs,
    /// an index into the shared trace otherwise.
    pub(crate) fn job_spec(&self, jslot: u32) -> &JobSpec {
        let s = jslot as usize;
        if let Some(spec) = self.world.jobs.owned.get(s).and_then(|o| o.as_deref()) {
            return spec;
        }
        &self.cfg.trace.jobs()[self.world.jobs.spec_idx[s] as usize]
    }

    /// The spec of the task in `tslot`.
    pub(crate) fn task_spec(&self, tslot: u32) -> &TaskSpec {
        let jslot = self.world.tasks.job_slot[tslot as usize];
        &self.job_spec(jslot).tasks[self.world.tasks.spec_pos[tslot as usize] as usize]
    }

    /// Fraction of the job in `jslot`'s work already completed, in `[0, 1]`.
    pub(crate) fn job_progress_fraction_slot(&self, jslot: u32) -> f64 {
        let s = jslot as usize;
        if !self.world.jobs.arrived[s] {
            return 0.0;
        }
        let total = self.world.jobs.total_hours[s];
        if total <= 0.0 {
            1.0
        } else {
            (1.0 - self.world.jobs.remaining_hours[s] / total).clamp(0.0, 1.0)
        }
    }

    /// Processes the next event, integrating world state up to its due
    /// time first. Returns false once the event queue is exhausted.
    pub fn step(&mut self) -> bool {
        let Some(scheduled) = self.engine.pop() else {
            return false;
        };
        self.advance_to(scheduled.at);
        self.engine.advance_to(scheduled.at);
        self.handle(scheduled.event);
        true
    }

    /// Runs the world to completion and assembles the report.
    pub fn run(mut self) -> SimReport {
        while self.step() {}
        crate::report::finalize(self)
    }

    pub(crate) fn push(&mut self, at: SimTime, event: Event) {
        self.engine.schedule(at, event);
    }

    pub(crate) fn schedule_round(&mut self, at: SimTime) {
        if !self.round_pending {
            self.round_pending = true;
            self.push(at, Event::Round);
        }
    }

    fn handle(&mut self, event: Event) {
        match event {
            Event::Arrival(idx) => {
                self.arrivals_remaining -= 1;
                self.metrics.record_arrival();
                let slot = self.world.slot_of_spec[idx];
                self.world.jobs.activate(slot);
                self.schedule_round(self.now());
            }
            Event::Ingest => self.handle_ingest(),
            Event::TaskReady { slot, generation } => {
                let s = slot as usize;
                let matches = matches!(
                    self.world.tasks.state[s],
                    TaskState::InTransit { generation: g, .. } if g == generation
                );
                if matches {
                    let inst = self.world.tasks.assigned[s];
                    // A task starting changes its own job's gang state
                    // and every co-located job's interference set.
                    if inst != NO_SLOT {
                        self.touch_instance_jobs(inst);
                    } else {
                        self.world.jobs.mark_dirty(self.world.tasks.job_slot[s]);
                    }
                    self.world.tasks.state[s] = TaskState::Running;
                    if inst != NO_SLOT {
                        self.account_running(self.world.insts.ids[inst as usize], 1);
                    }
                    if self.recorder.is_some() && inst != NO_SLOT {
                        let task = self.world.tasks.ids[s];
                        let instance = self.world.insts.ids[inst as usize];
                        let progress =
                            self.job_progress_fraction_slot(self.world.tasks.job_slot[s]);
                        self.record(ExecActionKind::Start {
                            task,
                            instance,
                            progress,
                        });
                    }
                    self.recompute_completions();
                }
            }
            Event::JobDone { slot, generation } => self.handle_job_done(slot, generation),
            Event::Round => self.handle_round(),
            Event::Fault(idx) => self.apply_fault(idx),
            Event::FaultExpire(idx) => self.expire_fault(idx),
        }
    }

    /// Deterministic fault victim: the live instance selected by the
    /// plan's pre-drawn word over the provider's ordered live set.
    fn fault_victim(&self, draw: u64) -> Option<InstanceId> {
        let victims: Vec<InstanceId> =
            self.cloud.live_instances(self.now()).map(|i| i.id).collect();
        if victims.is_empty() {
            None
        } else {
            Some(victims[(draw % victims.len() as u64) as usize])
        }
    }

    /// Abruptly kills every unfinished task mapped to `victim`: running
    /// tasks rescue-checkpoint at the kill instant (recorded as
    /// [`ExecActionKind::Kill`]), in-transit tasks lose their transfer;
    /// all go back to pending for the next round to re-place.
    fn kill_instance_tasks(&mut self, victim: InstanceId) {
        let Some(islot) = self.world.insts.get(victim) else {
            return;
        };
        // Every job with a task here changes throughput (marking also
        // settles them, so the Kill progress reads below are current).
        self.touch_instance_jobs(islot);
        // Snapshot: slot order is TaskId order.
        let tslots = self.world.insts.tasks[islot as usize].clone();
        for tslot in tslots {
            let s = tslot as usize;
            let running = match self.world.tasks.state[s] {
                TaskState::Done => continue,
                st => st == TaskState::Running,
            };
            if running {
                let task = self.world.tasks.ids[s];
                let progress = self.job_progress_fraction_slot(self.world.tasks.job_slot[s]);
                self.record(ExecActionKind::Kill { task, progress });
                self.account_running(victim, -1);
            }
            self.world.tasks.state[s] = TaskState::Pending;
            self.world.tasks.assigned[s] = NO_SLOT;
            if self.world.insts.detach(islot, tslot) {
                self.account_mapping(victim, tslot, false);
            }
        }
    }

    /// Applies fault-plan event `idx` at its scheduled instant.
    pub(crate) fn apply_fault(&mut self, idx: usize) {
        let ev = self.fault_plan.events[idx];
        let now = self.now();
        match ev.action {
            FaultAction::Preempt => {
                let Some(victim) = self.fault_victim(ev.draw) else {
                    return;
                };
                self.kill_instance_tasks(victim);
                let _ = self.cloud.terminate(victim, now);
                self.note_termination(victim);
                self.draining.remove(&victim);
                self.world.insts.release(victim);
                self.preemption_log.push((now, victim));
                self.recompute_completions();
                self.schedule_round(now);
            }
            FaultAction::WorkerCrash => {
                let Some(victim) = self.fault_victim(ev.draw) else {
                    return;
                };
                // Unlike a preemption, the instance survives (and bills).
                self.kill_instance_tasks(victim);
                self.worker_crashes += 1;
                self.recompute_completions();
                self.schedule_round(now);
            }
            FaultAction::CapacityShock { .. } => {
                let live = self.cloud.live_count(now);
                self.cloud.set_pool_limit(Some(live / 2));
            }
            FaultAction::PriceStep { .. } => {
                // Applied as a billing schedule at construction.
            }
            FaultAction::CkptDrop => {
                // Candidate filtering reads every active job's
                // remaining work, so settle everyone (and truncate the
                // segment log while at it).
                self.world.jobs.settle_active_and_reset();
                // Active slots ascend in JobId order, matching the former
                // map iteration; jobs without progress (or done) never
                // qualify, so the candidate list is unchanged.
                let candidates: Vec<u32> = self
                    .world
                    .jobs
                    .active
                    .iter()
                    .copied()
                    .filter(|&slot| {
                        self.world.jobs.remaining_hours[slot as usize] + 1e-12
                            < self.world.jobs.total_hours[slot as usize]
                    })
                    .collect();
                if candidates.is_empty() {
                    return;
                }
                let victim = candidates[(ev.draw % candidates.len() as u64) as usize] as usize;
                // Surgery on remaining work moves the completion time
                // without changing the rate.
                self.world.jobs.mark_dirty(victim as u32);
                let total = self.world.jobs.total_hours[victim];
                let remaining = self.world.jobs.remaining_hours[victim];
                let done = (total - remaining).max(0.0);
                self.world.jobs.remaining_hours[victim] =
                    (remaining + CKPT_DROP_LOSS * done).min(total);
                self.dropped_checkpoints += 1;
                self.recompute_completions();
            }
            FaultAction::Straggler { factor, .. } => {
                let Some(victim) = self.fault_victim(ev.draw) else {
                    return;
                };
                if let Some(islot) = self.world.insts.get(victim) {
                    // Settle at the pre-straggle rate before it changes.
                    self.touch_instance_jobs(islot);
                    self.world.insts.straggle[islot as usize] = factor;
                }
                self.active_stragglers.insert(idx, victim);
                self.recompute_completions();
            }
        }
    }

    /// Lifts a windowed fault when its expiry event fires.
    pub(crate) fn expire_fault(&mut self, idx: usize) {
        match self.fault_plan.events[idx].action {
            FaultAction::CapacityShock { .. } => {
                self.cloud.set_pool_limit(None);
            }
            FaultAction::Straggler { .. } => {
                if let Some(victim) = self.active_stragglers.remove(&idx) {
                    // A later straggler may have re-slowed the same
                    // instance; only lift when no window still covers it.
                    // (A preempted victim lost its slot — and its factor —
                    // already; the slot may now belong to a new instance.)
                    if !self.active_stragglers.values().any(|v| *v == victim) {
                        if let Some(islot) = self.world.insts.get(victim) {
                            // Settle at the straggling rate before it lifts.
                            self.touch_instance_jobs(islot);
                            self.world.insts.straggle[islot as usize] = 1.0;
                        }
                    }
                    self.recompute_completions();
                }
            }
            _ => {}
        }
    }

    /// Timestamped log of spot preemptions injected so far.
    pub fn preemption_log(&self) -> &[(SimTime, InstanceId)] {
        &self.preemption_log
    }

    /// Worker crashes injected so far.
    pub fn worker_crashes(&self) -> u64 {
        self.worker_crashes
    }

    /// Sim-side checkpoint drops injected so far.
    pub fn dropped_checkpoints(&self) -> u64 {
        self.dropped_checkpoints
    }

    /// Tasks currently mapped to `instance` (running or in transit).
    pub fn tasks_on(&self, instance: InstanceId) -> usize {
        self.world
            .insts
            .get(instance)
            .map(|s| self.world.insts.tasks[s as usize].len())
            .unwrap_or(0)
    }

    /// The cloud provider (for invariant checks in tests).
    pub fn provider(&self) -> &CloudProvider {
        &self.cloud
    }

    /// The compiled fault plan this world injects.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault_plan
    }

    /// Audits the world's slot bookkeeping (for invariant checks in
    /// tests): every job, task, and live instance ID must round-trip
    /// through its arena slot back to the same ID, cross-references
    /// (task↔instance, task↔job, active set, dirty set) must agree,
    /// every draining instance must still hold a slot, and the
    /// incrementally maintained capacity/allocation/running-task rates
    /// must equal a from-scratch scan of the live instance set bit for
    /// bit (see the dirty-set invariants in the `arena` module docs).
    pub fn audit_slots(&self) -> Result<(), String> {
        self.world.audit()?;
        for id in &self.draining {
            if self.world.insts.get(*id).is_none() {
                return Err(format!("draining instance {id} holds no slot"));
            }
        }
        let now = self.engine.now();
        let mut alloc = [0.0f64; 3];
        let mut cap = [0.0f64; 3];
        let mut running = 0usize;
        for inst in self.cloud.live_instances(now) {
            let Some(ty) = self.catalog.get(inst.type_id) else {
                continue;
            };
            cap[0] += f64::from(ty.capacity.gpu);
            cap[1] += f64::from(ty.capacity.cpu);
            cap[2] += ty.capacity.ram_mb as f64;
            if let Some(islot) = self.world.insts.get(inst.id) {
                for &tslot in &self.world.insts.tasks[islot as usize] {
                    let d = ty.demand_of(&self.task_spec(tslot).demand);
                    alloc[0] += f64::from(d.gpu);
                    alloc[1] += f64::from(d.cpu);
                    alloc[2] += d.ram_mb as f64;
                    if self.world.tasks.is_running(tslot) {
                        running += 1;
                    }
                }
            }
        }
        if cap != self.cap_rate || alloc != self.alloc_rate || running != self.running_rate {
            return Err(format!(
                "incremental rates diverged from live-set scan: \
                 cap {:?} vs {cap:?}, alloc {:?} vs {alloc:?}, running {} vs {running}",
                self.cap_rate, self.alloc_rate, self.running_rate
            ));
        }
        for &(term, id) in &self.cap_pending {
            if term <= now {
                return Err(format!("stale pending capacity retirement for {id}"));
            }
            let counted = self
                .inst_acct
                .get(id.0 as usize)
                .is_some_and(|a| a.counted);
            if !counted {
                return Err(format!("pending retirement of uncounted instance {id}"));
            }
        }
        Ok(())
    }

    /// Total events ever scheduled on the engine (heap-churn yardstick
    /// for the perf snapshots).
    pub fn events_scheduled(&self) -> u64 {
        self.engine.scheduled_count()
    }

    /// High-water mark of the event queue (live + tombstoned entries).
    pub fn event_queue_peak(&self) -> usize {
        self.engine.peak_len()
    }

    /// Debug digest of every observable the lazy dirty-set path must
    /// keep identical to the eager reference
    /// ([`SimConfig::reference_full_scan`]): settles all active jobs
    /// first so deferred progress is folded in, then formats each lane
    /// with shortest-roundtrip float formatting (distinct bits ⇒
    /// distinct strings). Test-only; not part of the stable API.
    #[doc(hidden)]
    pub fn oracle_digest(&mut self) -> String {
        use std::fmt::Write as _;
        for i in 0..self.world.jobs.active.len() {
            let slot = self.world.jobs.active[i];
            self.world.jobs.settle(slot);
        }
        let mut out = String::new();
        let jobs = &self.world.jobs;
        for s in 0..jobs.ids.len() {
            let _ = writeln!(
                out,
                "job {}: rem={:?} exec={:?} idle={:?} tput_int={:?} rate={:?} done={:?} sched={:?}",
                jobs.ids[s],
                jobs.remaining_hours[s],
                jobs.executing_hours[s],
                jobs.idle_hours[s],
                jobs.tput_integral[s],
                jobs.rate[s],
                jobs.completed_at[s],
                jobs.scheduled_done_at[s],
            );
        }
        let _ = writeln!(
            out,
            "integrals alloc={:?} cap={:?} run_hours={:?} \
             rates alloc={:?} cap={:?} running={}",
            self.alloc_integral,
            self.capacity_integral,
            self.task_running_hours,
            self.alloc_rate,
            self.cap_rate,
            self.running_rate,
        );
        out
    }

    /// Jobs ingested from a stream so far (0 for batch worlds).
    pub fn jobs_ingested(&self) -> u64 {
        self.ingested_jobs
    }

    /// Jobs currently arrived and not done.
    pub fn active_jobs(&self) -> usize {
        self.world.jobs.active.len()
    }

    /// Arena job rows currently holding a live (unreleased) job — the
    /// bounded-memory observable: with retirement on this tracks the
    /// in-flight window, not total jobs ingested.
    pub fn live_job_slots(&self) -> usize {
        self.world.jobs.ids.len() - self.world.jobs.free.len()
    }

    /// Total job rows the arena has ever grown to (live + recycled).
    /// Bounded-memory streaming keeps this near the in-flight peak.
    pub fn job_arena_rows(&self) -> usize {
        self.world.jobs.ids.len()
    }

    /// Element counts of every growable structure, for memory
    /// diagnosis of long streaming runs.
    #[doc(hidden)]
    pub fn arena_dims(&self) -> String {
        format!(
            "{} completed_folded={} completed_pending={} engine_len={}",
            self.world.dims(),
            self.completed.folded().0,
            self.completed.len() - self.completed.folded().0,
            self.engine.len(),
        )
    }

    /// The rolling service-mode metrics snapshot at the current instant.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            t_hours: self.now().as_hours_f64(),
            arrivals_total: self.metrics.arrivals_total,
            completions_total: self.metrics.completions_total,
            queue_depth: self.world.jobs.active.len(),
            running_tasks: self.running_rate,
            utilization_gpu: if self.cap_rate[0] > 0.0 {
                self.alloc_rate[0] / self.cap_rate[0]
            } else {
                0.0
            },
            p50_wait_hours: self.metrics.p50_wait_hours(),
            p99_wait_hours: self.metrics.p99_wait_hours(),
            event_queue_len: self.engine.len(),
            event_queue_peak: self.engine.peak_len(),
            live_job_slots: self.live_job_slots(),
            rounds: self.rounds,
        }
    }

    /// Debug digest of every observable job retirement must preserve:
    /// live jobs by ID with their settled progress lanes, completed
    /// jobs by ID with their report contributions (from the completed
    /// log or a slot scan — wherever retirement left them), and the
    /// global integrals. Retirement on and off must produce identical
    /// strings after every event. Test-only; not part of the stable API.
    #[doc(hidden)]
    pub fn stream_digest(&mut self) -> String {
        use std::fmt::Write as _;
        for i in 0..self.world.jobs.active.len() {
            let slot = self.world.jobs.active[i];
            self.world.jobs.settle(slot);
        }
        let mut out = String::new();
        for i in 0..self.world.jobs.active.len() {
            let slot = self.world.jobs.active[i];
            let s = slot as usize;
            let jobs = &self.world.jobs;
            let _ = writeln!(
                out,
                "live {}: rem={:?} exec={:?} idle={:?} tput_int={:?} rate={:?} sched={:?}",
                jobs.ids[s],
                jobs.remaining_hours[s],
                jobs.executing_hours[s],
                jobs.idle_hours[s],
                jobs.tput_integral[s],
                jobs.rate[s],
                jobs.scheduled_done_at[s],
            );
        }
        let mut done: Vec<(JobId, f64, f64, f64)> = self.completed.pending_rows().collect();
        for slot in 0..self.world.jobs.ids.len() as u32 {
            let s = slot as usize;
            if self.world.jobs.released[s] || !self.world.jobs.is_done(slot) {
                continue;
            }
            let jct = self.world.jobs.completed_at[s]
                .unwrap()
                .duration_since(self.job_spec(slot).arrival)
                .as_hours_f64();
            done.push((
                self.world.jobs.ids[s],
                jct,
                self.world.jobs.idle_hours[s],
                self.world.jobs.mean_tput(slot),
            ));
        }
        done.sort_by_key(|e| e.0);
        // Entries below the fold watermark — the smallest id that can
        // still complete, recomputed from the arena so both retirement
        // modes derive it identically — render as one running
        // left-fold; retirement may have folded them out of existence.
        // Everything at or above it renders per job.
        let watermark: Option<JobId> = (0..self.world.jobs.ids.len() as u32)
            .filter(|&slot| {
                !self.world.jobs.released[slot as usize] && !self.world.jobs.is_done(slot)
            })
            .map(|slot| self.world.jobs.ids[slot as usize])
            .min();
        let (mut n, mut jct_sum, mut idle_sum, mut tput_sum) = self.completed.folded();
        let mut split = 0;
        if self.completed.fold_ok() {
            while split < done.len() && watermark.is_none_or(|w| done[split].0 < w) {
                n += 1;
                jct_sum += done[split].1;
                idle_sum += done[split].2;
                tput_sum += done[split].3;
                split += 1;
            }
        }
        let _ = writeln!(
            out,
            "done folded n={n} jct_sum={jct_sum:?} idle_sum={idle_sum:?} tput_sum={tput_sum:?}"
        );
        for &(id, jct, idle, tput) in &done[split..] {
            let _ = writeln!(out, "done {id}: jct={jct:?} idle={idle:?} tput={tput:?}");
        }
        let _ = writeln!(
            out,
            "integrals alloc={:?} cap={:?} run_hours={:?} \
             rates alloc={:?} cap={:?} running={} counters arr={} done={}",
            self.alloc_integral,
            self.capacity_integral,
            self.task_running_hours,
            self.alloc_rate,
            self.cap_rate,
            self.running_rate,
            self.metrics.arrivals_total,
            self.metrics.completions_total,
        );
        out
    }

    fn handle_job_done(&mut self, slot: u32, generation: u64) {
        let s = slot as usize;
        let valid = self.world.jobs.arrived[s]
            && !self.world.jobs.is_done(slot)
            && self.world.jobs.completion_gen[s] == generation;
        if !valid {
            return;
        }
        // Fold the deferred segments in before reading remaining work.
        self.world.jobs.settle(slot);
        debug_assert!(
            self.world.jobs.remaining_hours[s] < 1e-6,
            "early completion event"
        );
        self.world.jobs.completed_at[s] = Some(self.engine.now());
        self.world.jobs.scheduled_done_at[s] = None;
        self.world.jobs.retire(slot);
        let job = self.world.jobs.ids[s];
        self.record(ExecActionKind::JobDone { job });
        for t in self.world.jobs.task_range(slot) {
            let was_running = self.world.tasks.state[t] == TaskState::Running;
            self.world.tasks.state[t] = TaskState::Done;
            let inst = self.world.tasks.assigned[t];
            if inst != NO_SLOT {
                // Surviving co-located jobs lose an interfering neighbour.
                self.touch_instance_jobs(inst);
                let id = self.world.insts.ids[inst as usize];
                self.world.tasks.assigned[t] = NO_SLOT;
                if self.world.insts.detach(inst, t as u32) {
                    self.account_mapping(id, t as u32, false);
                }
                if was_running {
                    self.account_running(id, -1);
                }
            }
        }
        self.metrics
            .record_completion(self.world.jobs.idle_hours[s]);
        if self.retire_completed {
            // Fold the frozen lanes into the completed-job log with the
            // identical float operations `finalize` would apply, then
            // hand the slots back. The job cannot be dirty here:
            // `completed_at` was set before the task loop and
            // `mark_dirty` skips done jobs, and no completion event can
            // outlive the generation that just validated.
            let now = self.engine.now();
            let jct_hours = now
                .duration_since(self.job_spec(slot).arrival)
                .as_hours_f64();
            self.completed.complete(CompletedJob {
                id: job,
                jct_hours,
                idle_hours: self.world.jobs.idle_hours[s],
                mean_tput: self.world.jobs.mean_tput(slot),
            });
            self.world.release_job(slot);
        }
        self.try_terminations();
        self.recompute_completions();
        // A round will clean up the freed instances.
        self.schedule_round(self.now() + self.round_period);
    }

    /// The ground-truth throughput of the running task in `tslot` given
    /// its co-located running neighbours.
    pub(crate) fn task_tput(&self, tslot: u32) -> f64 {
        let s = tslot as usize;
        let inst = self.world.tasks.assigned[s];
        if inst == NO_SLOT || !self.world.tasks.is_running(tslot) {
            return 0.0;
        }
        let mut others = self.tput_buf.borrow_mut();
        others.clear();
        for &t in &self.world.insts.tasks[inst as usize] {
            if t != tslot && self.world.tasks.is_running(t) {
                others.push(self.world.tasks.workload[t as usize]);
            }
        }
        let base = self
            .interference
            .throughput(self.world.tasks.workload[s], &others);
        // A straggler window slows every task on the afflicted instance.
        // The factor changes only at fault events (which recompute
        // completions), so throughput stays piecewise-constant and
        // progress integration stays exact. Unafflicted slots hold 1.0,
        // and `x * 1.0` is bitwise `x`.
        base * self.world.insts.straggle[inst as usize]
    }

    /// Effective job throughput: gang-coupled jobs run at the minimum of
    /// their tasks (0 unless all run); single tasks at their own rate.
    pub(crate) fn job_tput(&self, jslot: u32) -> f64 {
        let mut min_tput = f64::INFINITY;
        for t in self.world.jobs.task_range(jslot) {
            if !self.world.tasks.is_running(t as u32) {
                return 0.0;
            }
            min_tput = min_tput.min(self.task_tput(t as u32));
        }
        if min_tput.is_finite() {
            min_tput
        } else {
            0.0
        }
    }

    /// Advances all integrals and job progress to `t` (the engine clock
    /// itself advances in [`ClusterSim::step`]).
    ///
    /// O(1) in steady state: job progress is deferred by logging the
    /// segment (clean jobs replay it on settle at their cached rate —
    /// current by dirty-set invariant 2), and the allocation/capacity
    /// integrals accrue from the maintained rates instead of rescanning
    /// the live instance set.
    fn advance_to(&mut self, t: SimTime) {
        let now = self.engine.now();
        let dt_hours = t.duration_since(now).as_hours_f64();
        if dt_hours <= 0.0 {
            return;
        }
        debug_assert!(
            self.world.jobs.dirty_list.is_empty(),
            "dirty jobs crossed a segment boundary unsettled"
        );
        if self.full_scan {
            // Eager reference semantics, kept verbatim for the oracle:
            // throughputs are pure reads, so computing them all before
            // applying preserves the old interleaved map semantics.
            let mut tputs: Vec<(u32, f64)> = Vec::with_capacity(self.world.jobs.active.len());
            for &slot in &self.world.jobs.active {
                tputs.push((slot, self.job_tput(slot)));
            }
            for &(slot, tput) in &tputs {
                self.world.jobs.advance(slot, dt_hours, tput);
            }
            let mut alloc = [0.0f64; 3];
            let mut cap = [0.0f64; 3];
            let mut running_tasks = 0usize;
            for inst in self.cloud.live_instances(now) {
                let Some(ty) = self.catalog.get(inst.type_id) else {
                    continue;
                };
                cap[0] += f64::from(ty.capacity.gpu);
                cap[1] += f64::from(ty.capacity.cpu);
                cap[2] += ty.capacity.ram_mb as f64;
                if let Some(islot) = self.world.insts.get(inst.id) {
                    for &tslot in &self.world.insts.tasks[islot as usize] {
                        let spec = self.task_spec(tslot);
                        let d = ty.demand_of(&spec.demand);
                        alloc[0] += f64::from(d.gpu);
                        alloc[1] += f64::from(d.cpu);
                        alloc[2] += d.ram_mb as f64;
                        if self.world.tasks.is_running(tslot) {
                            running_tasks += 1;
                        }
                    }
                }
            }
            for r in 0..3 {
                self.alloc_integral[r] += alloc[r] * dt_hours;
                self.capacity_integral[r] += cap[r] * dt_hours;
            }
            self.task_running_hours += running_tasks as f64 * dt_hours;
        } else {
            self.world.jobs.push_segment(dt_hours);
            for r in 0..3 {
                self.alloc_integral[r] += self.alloc_rate[r] * dt_hours;
                self.capacity_integral[r] += self.cap_rate[r] * dt_hours;
            }
            self.task_running_hours += self.running_rate as f64 * dt_hours;
        }
        // Retire the capacity of instances whose termination deadline
        // fell inside the segment just integrated: they were live at
        // its start (so they counted, exactly like the eager scan at
        // `now`), and every later segment starts at or past `t`.
        while let Some(&(term, id)) = self.cap_pending.first() {
            if term > t {
                break;
            }
            self.cap_pending.pop_first();
            self.uncount_instance(id);
            // A service world also drops the provider record: its bill
            // and uptime froze at termination, and nothing reads a
            // past-terminated instance again.
            if self.retire_completed {
                self.cloud.retire_instance(id);
            }
        }
    }

    /// Re-derives the completion events of jobs marked dirty since the
    /// last drain. Refreshes each job's cached rate and skips the heap
    /// push when the due time is unchanged — the outstanding event is
    /// still valid, so steady-state heap churn tracks what *changed*.
    /// Rescheduling is dirty-triggered in the reference mode too: a
    /// completion time re-derived from a *later* anchor can flip by
    /// ±1 ms of rounding, so re-deriving clean jobs would push spurious
    /// replacement events rather than validate anything. Marking
    /// completeness is instead cross-checked by the eager reference
    /// advancing progress and integrals by full scan (`oracle_digest`
    /// equality) and by `audit_slots` recomputing every cached rate.
    pub(crate) fn recompute_completions(&mut self) {
        if self.world.jobs.dirty_list.is_empty() {
            return;
        }
        // Drain into reusable scratch (the `term_scratch` pattern) so
        // the steady-state drain allocates nothing; the arena's list
        // keeps its own capacity for the next marking burst.
        let mut dirty = std::mem::take(&mut self.dirty_scratch);
        dirty.clear();
        dirty.append(&mut self.world.jobs.dirty_list);
        // Ascending slot order: dirty jobs reschedule in the relative
        // order the eager full sweep pushed them.
        dirty.sort_unstable();
        let now = self.engine.now();
        for &slot in &dirty {
            let s = slot as usize;
            self.world.jobs.dirty[s] = false;
            if !self.world.jobs.arrived[s] || self.world.jobs.is_done(slot) {
                continue;
            }
            let tput = self.job_tput(slot);
            self.world.jobs.rate[s] = tput;
            let at = self
                .world
                .jobs
                .eta_hours(slot, tput)
                .map(|eta| now + SimDuration::from_hours_f64(eta));
            if at == self.world.jobs.scheduled_done_at[s] {
                continue;
            }
            self.world.jobs.completion_gen[s] += 1;
            let generation = self.world.jobs.completion_gen[s];
            self.world.jobs.scheduled_done_at[s] = at;
            if let Some(at) = at {
                self.push(at, Event::JobDone { slot, generation });
            }
        }
        dirty.clear();
        self.dirty_scratch = dirty;
    }

    /// Terminates drained instances whose departures have finished.
    pub(crate) fn try_terminations(&mut self) {
        if self.draining.is_empty() {
            return;
        }
        let mut candidates = std::mem::take(&mut self.term_scratch);
        candidates.clear();
        candidates.extend(self.draining.iter().copied());
        for &id in &candidates {
            let islot = self.world.insts.get(id);
            let empty = islot
                .map(|s| self.world.insts.tasks[s as usize].is_empty())
                .unwrap_or(true);
            if empty {
                let now = self.engine.now();
                let busy = islot
                    .map(|s| self.world.insts.busy_until[s as usize])
                    .unwrap_or(SimTime::ZERO);
                let _ = self.cloud.terminate(id, busy.max(now));
                self.note_termination(id);
                self.draining.remove(&id);
                self.world.insts.release(id);
            }
        }
        candidates.clear();
        self.term_scratch = candidates;
    }

    // ----- incremental integral accounting -------------------------------

    /// Registers a freshly provisioned instance with the capacity rate.
    /// Mirrors the eager scan's guard: instances whose type is not in
    /// the catalog never count.
    pub(crate) fn count_provision(&mut self, id: InstanceId) {
        let idx = id.0 as usize;
        if idx >= self.inst_acct.len() {
            self.inst_acct.resize(idx + 1, InstAcct::default());
        }
        let Some(ty) = self
            .cloud
            .instance(id)
            .and_then(|i| self.catalog.get(i.type_id))
        else {
            return;
        };
        let cap = [
            f64::from(ty.capacity.gpu),
            f64::from(ty.capacity.cpu),
            ty.capacity.ram_mb as f64,
        ];
        let acct = &mut self.inst_acct[idx];
        debug_assert!(!acct.counted, "instance {id} provisioned twice");
        acct.counted = true;
        acct.cap = cap;
        for (rate, c) in self.cap_rate.iter_mut().zip(cap) {
            *rate += c;
        }
    }

    /// Folds one task's demand into (out of) its instance's allocation
    /// rate at attach (detach). Callers gate on the arena's
    /// `attach`/`detach` return value so the rate mirrors the mapping
    /// lists exactly.
    pub(crate) fn account_mapping(&mut self, id: InstanceId, tslot: u32, attached: bool) {
        let Some(acct) = self.inst_acct.get(id.0 as usize) else {
            return;
        };
        if !acct.counted {
            return;
        }
        let Some(ty) = self.cloud.instance_type(id) else {
            return;
        };
        let d = ty.demand_of(&self.task_spec(tslot).demand);
        let dv = [f64::from(d.gpu), f64::from(d.cpu), d.ram_mb as f64];
        let acct = &mut self.inst_acct[id.0 as usize];
        if attached {
            for (r, d) in dv.into_iter().enumerate() {
                acct.alloc[r] += d;
                self.alloc_rate[r] += d;
            }
        } else {
            for (r, d) in dv.into_iter().enumerate() {
                acct.alloc[r] -= d;
                self.alloc_rate[r] -= d;
            }
        }
    }

    /// Adjusts the running-task rate when a task mapped to `id` starts
    /// (`+1`) or stops (`-1`) running.
    pub(crate) fn account_running(&mut self, id: InstanceId, delta: i32) {
        let Some(acct) = self.inst_acct.get_mut(id.0 as usize) else {
            return;
        };
        if !acct.counted {
            return;
        }
        if delta > 0 {
            acct.running += 1;
            self.running_rate += 1;
        } else {
            acct.running -= 1;
            self.running_rate -= 1;
        }
    }

    /// Reconciles the rates with the provider after a `terminate` call.
    /// The provider keeps the first termination time an instance was
    /// given (clamped to its request time), so read back what actually
    /// stuck: a past deadline retires the instance's contribution now,
    /// a future one parks it on `cap_pending` for `advance_to`.
    pub(crate) fn note_termination(&mut self, id: InstanceId) {
        let Some(t) = self.cloud.instance(id).and_then(|i| i.terminated_at) else {
            return;
        };
        let counted = self
            .inst_acct
            .get(id.0 as usize)
            .is_some_and(|a| a.counted);
        if !counted {
            return;
        }
        if t <= self.engine.now() {
            self.cap_pending.remove(&(t, id));
            self.uncount_instance(id);
            if self.retire_completed {
                self.cloud.retire_instance(id);
            }
        } else {
            self.cap_pending.insert((t, id));
        }
    }

    /// Removes a terminated instance's full contribution from the
    /// rates. Tasks may still be mapped to it (a drained instance keeps
    /// its capacity until its deadline passes, exactly like the eager
    /// live-set scan); their later detach/stop transitions are ignored
    /// by the `counted` guards.
    fn uncount_instance(&mut self, id: InstanceId) {
        let acct = &mut self.inst_acct[id.0 as usize];
        if !acct.counted {
            return;
        }
        acct.counted = false;
        for r in 0..3 {
            self.cap_rate[r] -= acct.cap[r];
            self.alloc_rate[r] -= acct.alloc[r];
        }
        self.running_rate -= acct.running as usize;
        acct.alloc = [0.0; 3];
        acct.running = 0;
    }

    /// Marks every job with a task mapped to instance slot `islot`
    /// dirty — their effective throughput may change with the
    /// instance's state (placement, straggle factor, co-location set).
    pub(crate) fn touch_instance_jobs(&mut self, islot: u32) {
        let world = &mut self.world;
        for &t in &world.insts.tasks[islot as usize] {
            world.jobs.mark_dirty(world.tasks.job_slot[t as usize]);
        }
    }
}
