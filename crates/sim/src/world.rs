//! Layer 2: the cluster world model.
//!
//! [`ClusterSim`] owns everything that exists in the simulated world —
//! provider, instances, jobs, task lifecycles, metric integrals — and
//! consumes events from the generic [`EventEngine`]. It drives the
//! scheduler through the round logic in the `observe` module but
//! contains no scheduling policy itself; report assembly lives in the
//! `report` module.
//!
//! World state lives in the slot-indexed SoA arenas of the private
//! `arena` module:
//! IDs intern to contiguous `u32` slots at construction, events carry
//! slots instead of IDs, and the per-event hot loops walk flat vectors.
//! Slot order is ID order, so every iteration (and therefore every float
//! accumulation) happens in exactly the sequence the former
//! `BTreeMap`-keyed world produced — reports are byte-identical.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};

use rand::rngs::StdRng;

use eva_baselines::{
    NoPackingScheduler, OracleProfile, OwlScheduler, StratusScheduler, SynergyScheduler,
};
use eva_cloud::{Catalog, CloudProvider, DelayModel};
use eva_core::{EvaScheduler, Scheduler};
use eva_types::{InstanceId, JobSpec, SimDuration, SimTime, TaskSpec, WorkloadKind};
use eva_workloads::{InterferenceModel, Trace, TraceHandle, WorkloadCatalog};

use crate::arena::{WorldArena, NO_SLOT};
use crate::engine::{CancelToken, EventEngine, RngStreams, SimEvent, DELAY_STREAM};
use crate::faults::{FaultAction, FaultPlan};
use crate::metrics::SimReport;
use crate::runner::{InterferenceSpec, SchedulerKind, SimConfig};
use crate::script::{ExecAction, ExecActionKind, ExecScript};
use crate::state::TaskState;

/// Events the cluster world reacts to. Task/job events carry arena
/// slots, not IDs — dispatch is a direct index, never a lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Event {
    Arrival(usize),
    TaskReady { slot: u32, generation: u64 },
    JobDone { slot: u32, generation: u64 },
    Round,
    /// Injected fault striking (index into the compiled fault plan).
    Fault(usize),
    /// A windowed fault (capacity shock, straggler) lifting.
    FaultExpire(usize),
}

impl SimEvent for Event {
    /// Same-timestamp dispatch priority: faults strike first (adversity
    /// never waits), then readiness and completions resolve before
    /// arrivals, arrivals before the round that schedules them.
    fn priority(&self) -> u8 {
        match self {
            Event::Fault(_) | Event::FaultExpire(_) => 0,
            Event::TaskReady { .. } => 0,
            Event::JobDone { .. } => 1,
            Event::Arrival(_) => 2,
            Event::Round => 3,
        }
    }
}

/// Fraction of a job's completed work destroyed by one sim-side
/// checkpoint drop (the job's latest checkpoint is its recent work).
pub(crate) const CKPT_DROP_LOSS: f64 = 0.25;

/// One instance's slice of the incremental integral rates, indexed by
/// `InstanceId` (provider IDs are sequential and never reused). All
/// components are integer-valued `f64`s, so adding and later
/// subtracting them leaves the running sums bit-identical to a
/// from-scratch scan in any order.
#[derive(Debug, Clone, Copy, Default)]
struct InstAcct {
    /// Whether the instance currently contributes to the rates: set at
    /// provision (if its type is cataloged), cleared once the clock
    /// reaches its termination time.
    counted: bool,
    cap: [f64; 3],
    alloc: [f64; 3],
    running: u32,
}

/// The simulated cluster: engine + world state + metric accumulators.
pub struct ClusterSim {
    pub(crate) cfg: SimConfig,
    pub(crate) catalog: Catalog,
    pub(crate) cloud: CloudProvider,
    pub(crate) rng: StdRng,
    pub(crate) interference: InterferenceModel,
    pub(crate) scheduler: Box<dyn Scheduler>,
    pub(crate) round_period: SimDuration,
    pub(crate) migration_delay_scale: f64,

    /// All job/task/instance state, slot-indexed (see [`crate::arena`]).
    pub(crate) world: WorldArena,
    pub(crate) draining: BTreeSet<InstanceId>,

    pub(crate) engine: EventEngine<Event>,
    pub(crate) round_pending: bool,
    pub(crate) arrivals_remaining: usize,
    pub(crate) recorder: Option<ExecScript>,

    // Adversarial fault state.
    pub(crate) fault_plan: FaultPlan,
    pub(crate) fault_tokens: Vec<CancelToken>,
    pub(crate) active_stragglers: BTreeMap<usize, InstanceId>,
    pub(crate) preemption_log: Vec<(SimTime, InstanceId)>,
    pub(crate) worker_crashes: u64,
    pub(crate) dropped_checkpoints: u64,

    // Metric accumulators (time integrals in hours).
    pub(crate) task_running_hours: f64,
    pub(crate) alloc_integral: [f64; 3],
    pub(crate) capacity_integral: [f64; 3],
    pub(crate) migration_count: u64,
    pub(crate) total_tasks: usize,
    pub(crate) rounds: u64,
    pub(crate) full_rounds: u64,

    // Incremental-integral state (see the dirty-set invariants in
    // `crate::arena`): per-instance accounting plus the maintained
    // capacity/allocation/running-task rates `advance_to` integrates.
    inst_acct: Vec<InstAcct>,
    cap_rate: [f64; 3],
    alloc_rate: [f64; 3],
    running_rate: usize,
    /// Future-dated terminations (deadline, instance) whose capacity is
    /// still counted; `advance_to` retires them once the clock passes.
    cap_pending: BTreeSet<(SimTime, InstanceId)>,
    /// Debug-only eager reference semantics (see
    /// [`SimConfig::reference_full_scan`]).
    full_scan: bool,

    // Reusable hot-path scratch (per-event, allocation-free steady state).
    tput_buf: RefCell<Vec<WorkloadKind>>,
    term_scratch: Vec<InstanceId>,
}

impl ClusterSim {
    /// Builds the world for one experiment.
    ///
    /// Jobs whose tasks fit no catalog instance type are dropped up front
    /// with a warning (the paper likewise removes them from the trace,
    /// §6.1); otherwise they could never complete and the simulation would
    /// not terminate.
    pub fn new(cfg: &SimConfig) -> Self {
        // Compile the fault plan from the *caller's* trace handle, before
        // feasibility filtering — the live backend compiles from the same
        // handle, so both sides must hash the same horizon.
        let fault_plan = FaultPlan::for_trace(cfg.faults, cfg.seed, &cfg.trace);
        let catalog = Catalog::aws_eval_2025();
        let workloads = WorkloadCatalog::table7();
        let fits = |job: &eva_types::JobSpec| {
            job.tasks
                .iter()
                .all(|t| catalog.cheapest_fit(&t.demand).is_some())
        };
        // The common case drops nothing, so the world shares the caller's
        // trace by handle instead of cloning the job vector.
        let trace = if cfg.trace.jobs().iter().all(&fits) {
            cfg.trace.clone()
        } else {
            let feasible: Vec<_> = cfg
                .trace
                .jobs()
                .iter()
                .filter(|job| {
                    let ok = fits(job);
                    if !ok {
                        eprintln!("warning: dropping unschedulable {}", job.id);
                    }
                    ok
                })
                .cloned()
                .collect();
            TraceHandle::new(Trace::new(feasible))
        };
        let cfg = SimConfig {
            trace,
            ..cfg.clone()
        };
        let interference = match cfg.interference {
            InterferenceSpec::Measured => InterferenceModel::measured(&workloads),
            InterferenceSpec::Uniform(t) => InterferenceModel::uniform(&workloads, t),
        };
        let scheduler: Box<dyn Scheduler> = match &cfg.scheduler {
            SchedulerKind::NoPacking => Box::new(NoPackingScheduler::new()),
            SchedulerKind::Stratus => Box::new(StratusScheduler::new()),
            SchedulerKind::Synergy => Box::new(SynergyScheduler::new()),
            SchedulerKind::Owl => {
                // Owl receives the ground-truth pairwise profile exclusively.
                let kinds: Vec<WorkloadKind> = workloads.iter().map(|w| w.kind).collect();
                let model = interference.clone();
                let profile = OracleProfile::from_fn(&kinds, |a, b| model.pairwise(a, b));
                Box::new(OwlScheduler::new(profile))
            }
            SchedulerKind::Eva(eva_cfg) => Box::new(EvaScheduler::new(eva_cfg.clone())),
        };
        let delays = DelayModel::table1(cfg.fidelity);
        let cloud = CloudProvider::new(catalog.clone(), delays);
        let world = WorldArena::from_trace(cfg.trace.trace());

        let mut sim = ClusterSim {
            catalog,
            cloud,
            rng: RngStreams::new(cfg.seed).stream(DELAY_STREAM),
            interference,
            scheduler,
            round_period: cfg.round_period,
            migration_delay_scale: cfg.migration_delay_scale,
            world,
            draining: BTreeSet::new(),
            engine: EventEngine::new(),
            round_pending: false,
            arrivals_remaining: cfg.trace.len(),
            recorder: None,
            fault_plan,
            fault_tokens: Vec::new(),
            active_stragglers: BTreeMap::new(),
            preemption_log: Vec::new(),
            worker_crashes: 0,
            dropped_checkpoints: 0,
            task_running_hours: 0.0,
            alloc_integral: [0.0; 3],
            capacity_integral: [0.0; 3],
            migration_count: 0,
            total_tasks: cfg.trace.jobs().iter().map(|j| j.num_tasks()).sum(),
            rounds: 0,
            full_rounds: 0,
            inst_acct: Vec::new(),
            cap_rate: [0.0; 3],
            alloc_rate: [0.0; 3],
            running_rate: 0,
            cap_pending: BTreeSet::new(),
            full_scan: cfg.reference_full_scan,
            tput_buf: RefCell::new(Vec::new()),
            term_scratch: Vec::new(),
            cfg,
        };
        for (idx, job) in sim.cfg.trace.jobs().iter().enumerate() {
            sim.engine.schedule(job.arrival, Event::Arrival(idx));
        }
        // Inject the fault plan. Price steps compile straight into the
        // provider's billing schedule (they change no control-plane
        // behaviour); everything else enters the event heap as
        // tombstone-cancelable events so a drained workload can retire
        // leftover faults without dragging the clock forward.
        let price_steps: Vec<(SimTime, f64)> = sim
            .fault_plan
            .events
            .iter()
            .filter_map(|e| match e.action {
                FaultAction::PriceStep { factor } => Some((e.at, factor)),
                _ => None,
            })
            .collect();
        if !price_steps.is_empty() {
            sim.cloud.set_price_schedule(price_steps);
        }
        for i in 0..sim.fault_plan.events.len() {
            let ev = sim.fault_plan.events[i];
            match ev.action {
                FaultAction::PriceStep { .. } => {}
                FaultAction::CapacityShock { until } | FaultAction::Straggler { until, .. } => {
                    let strike = sim.engine.schedule_cancelable(ev.at, Event::Fault(i));
                    let lift = sim.engine.schedule_cancelable(until, Event::FaultExpire(i));
                    sim.fault_tokens.push(strike);
                    sim.fault_tokens.push(lift);
                }
                _ => {
                    let strike = sim.engine.schedule_cancelable(ev.at, Event::Fault(i));
                    sim.fault_tokens.push(strike);
                }
            }
        }
        sim
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// Scheduling rounds executed so far.
    pub fn rounds_executed(&self) -> u64 {
        self.rounds
    }

    /// Starts recording the control-plane action stream (see
    /// [`ExecScript`]); call before the first [`ClusterSim::step`].
    pub fn enable_recording(&mut self) {
        self.recorder = Some(ExecScript::default());
    }

    /// Takes the recorded script, ending recording.
    pub fn take_script(&mut self) -> ExecScript {
        self.recorder.take().unwrap_or_default()
    }

    pub(crate) fn record(&mut self, kind: ExecActionKind) {
        if let Some(script) = self.recorder.as_mut() {
            let at = self.engine.now();
            script.actions.push(ExecAction { at, kind });
        }
    }

    /// The spec of the job in `jslot` (slots index the shared trace).
    pub(crate) fn job_spec(&self, jslot: u32) -> &JobSpec {
        &self.cfg.trace.jobs()[self.world.jobs.spec_idx[jslot as usize] as usize]
    }

    /// The spec of the task in `tslot`.
    pub(crate) fn task_spec(&self, tslot: u32) -> &TaskSpec {
        let jslot = self.world.tasks.job_slot[tslot as usize];
        &self.job_spec(jslot).tasks[self.world.tasks.spec_pos[tslot as usize] as usize]
    }

    /// Fraction of the job in `jslot`'s work already completed, in `[0, 1]`.
    pub(crate) fn job_progress_fraction_slot(&self, jslot: u32) -> f64 {
        let s = jslot as usize;
        if !self.world.jobs.arrived[s] {
            return 0.0;
        }
        let total = self.world.jobs.total_hours[s];
        if total <= 0.0 {
            1.0
        } else {
            (1.0 - self.world.jobs.remaining_hours[s] / total).clamp(0.0, 1.0)
        }
    }

    /// Processes the next event, integrating world state up to its due
    /// time first. Returns false once the event queue is exhausted.
    pub fn step(&mut self) -> bool {
        let Some(scheduled) = self.engine.pop() else {
            return false;
        };
        self.advance_to(scheduled.at);
        self.engine.advance_to(scheduled.at);
        self.handle(scheduled.event);
        true
    }

    /// Runs the world to completion and assembles the report.
    pub fn run(mut self) -> SimReport {
        while self.step() {}
        crate::report::finalize(self)
    }

    pub(crate) fn push(&mut self, at: SimTime, event: Event) {
        self.engine.schedule(at, event);
    }

    pub(crate) fn schedule_round(&mut self, at: SimTime) {
        if !self.round_pending {
            self.round_pending = true;
            self.push(at, Event::Round);
        }
    }

    fn handle(&mut self, event: Event) {
        match event {
            Event::Arrival(idx) => {
                self.arrivals_remaining -= 1;
                let slot = self.world.slot_of_spec[idx];
                self.world.jobs.activate(slot);
                self.schedule_round(self.now());
            }
            Event::TaskReady { slot, generation } => {
                let s = slot as usize;
                let matches = matches!(
                    self.world.tasks.state[s],
                    TaskState::InTransit { generation: g, .. } if g == generation
                );
                if matches {
                    let inst = self.world.tasks.assigned[s];
                    // A task starting changes its own job's gang state
                    // and every co-located job's interference set.
                    if inst != NO_SLOT {
                        self.touch_instance_jobs(inst);
                    } else {
                        self.world.jobs.mark_dirty(self.world.tasks.job_slot[s]);
                    }
                    self.world.tasks.state[s] = TaskState::Running;
                    if inst != NO_SLOT {
                        self.account_running(self.world.insts.ids[inst as usize], 1);
                    }
                    if self.recorder.is_some() && inst != NO_SLOT {
                        let task = self.world.tasks.ids[s];
                        let instance = self.world.insts.ids[inst as usize];
                        let progress =
                            self.job_progress_fraction_slot(self.world.tasks.job_slot[s]);
                        self.record(ExecActionKind::Start {
                            task,
                            instance,
                            progress,
                        });
                    }
                    self.recompute_completions();
                }
            }
            Event::JobDone { slot, generation } => self.handle_job_done(slot, generation),
            Event::Round => self.handle_round(),
            Event::Fault(idx) => self.apply_fault(idx),
            Event::FaultExpire(idx) => self.expire_fault(idx),
        }
    }

    /// Deterministic fault victim: the live instance selected by the
    /// plan's pre-drawn word over the provider's ordered live set.
    fn fault_victim(&self, draw: u64) -> Option<InstanceId> {
        let victims: Vec<InstanceId> =
            self.cloud.live_instances(self.now()).map(|i| i.id).collect();
        if victims.is_empty() {
            None
        } else {
            Some(victims[(draw % victims.len() as u64) as usize])
        }
    }

    /// Abruptly kills every unfinished task mapped to `victim`: running
    /// tasks rescue-checkpoint at the kill instant (recorded as
    /// [`ExecActionKind::Kill`]), in-transit tasks lose their transfer;
    /// all go back to pending for the next round to re-place.
    fn kill_instance_tasks(&mut self, victim: InstanceId) {
        let Some(islot) = self.world.insts.get(victim) else {
            return;
        };
        // Every job with a task here changes throughput (marking also
        // settles them, so the Kill progress reads below are current).
        self.touch_instance_jobs(islot);
        // Snapshot: slot order is TaskId order.
        let tslots = self.world.insts.tasks[islot as usize].clone();
        for tslot in tslots {
            let s = tslot as usize;
            let running = match self.world.tasks.state[s] {
                TaskState::Done => continue,
                st => st == TaskState::Running,
            };
            if running {
                let task = self.world.tasks.ids[s];
                let progress = self.job_progress_fraction_slot(self.world.tasks.job_slot[s]);
                self.record(ExecActionKind::Kill { task, progress });
                self.account_running(victim, -1);
            }
            self.world.tasks.state[s] = TaskState::Pending;
            self.world.tasks.assigned[s] = NO_SLOT;
            if self.world.insts.detach(islot, tslot) {
                self.account_mapping(victim, tslot, false);
            }
        }
    }

    /// Applies fault-plan event `idx` at its scheduled instant.
    pub(crate) fn apply_fault(&mut self, idx: usize) {
        let ev = self.fault_plan.events[idx];
        let now = self.now();
        match ev.action {
            FaultAction::Preempt => {
                let Some(victim) = self.fault_victim(ev.draw) else {
                    return;
                };
                self.kill_instance_tasks(victim);
                let _ = self.cloud.terminate(victim, now);
                self.note_termination(victim);
                self.draining.remove(&victim);
                self.world.insts.release(victim);
                self.preemption_log.push((now, victim));
                self.recompute_completions();
                self.schedule_round(now);
            }
            FaultAction::WorkerCrash => {
                let Some(victim) = self.fault_victim(ev.draw) else {
                    return;
                };
                // Unlike a preemption, the instance survives (and bills).
                self.kill_instance_tasks(victim);
                self.worker_crashes += 1;
                self.recompute_completions();
                self.schedule_round(now);
            }
            FaultAction::CapacityShock { .. } => {
                let live = self.cloud.live_count(now);
                self.cloud.set_pool_limit(Some(live / 2));
            }
            FaultAction::PriceStep { .. } => {
                // Applied as a billing schedule at construction.
            }
            FaultAction::CkptDrop => {
                // Candidate filtering reads every active job's
                // remaining work, so settle everyone (and truncate the
                // segment log while at it).
                self.world.jobs.settle_active_and_reset();
                // Active slots ascend in JobId order, matching the former
                // map iteration; jobs without progress (or done) never
                // qualify, so the candidate list is unchanged.
                let candidates: Vec<u32> = self
                    .world
                    .jobs
                    .active
                    .iter()
                    .copied()
                    .filter(|&slot| {
                        self.world.jobs.remaining_hours[slot as usize] + 1e-12
                            < self.world.jobs.total_hours[slot as usize]
                    })
                    .collect();
                if candidates.is_empty() {
                    return;
                }
                let victim = candidates[(ev.draw % candidates.len() as u64) as usize] as usize;
                // Surgery on remaining work moves the completion time
                // without changing the rate.
                self.world.jobs.mark_dirty(victim as u32);
                let total = self.world.jobs.total_hours[victim];
                let remaining = self.world.jobs.remaining_hours[victim];
                let done = (total - remaining).max(0.0);
                self.world.jobs.remaining_hours[victim] =
                    (remaining + CKPT_DROP_LOSS * done).min(total);
                self.dropped_checkpoints += 1;
                self.recompute_completions();
            }
            FaultAction::Straggler { factor, .. } => {
                let Some(victim) = self.fault_victim(ev.draw) else {
                    return;
                };
                if let Some(islot) = self.world.insts.get(victim) {
                    // Settle at the pre-straggle rate before it changes.
                    self.touch_instance_jobs(islot);
                    self.world.insts.straggle[islot as usize] = factor;
                }
                self.active_stragglers.insert(idx, victim);
                self.recompute_completions();
            }
        }
    }

    /// Lifts a windowed fault when its expiry event fires.
    pub(crate) fn expire_fault(&mut self, idx: usize) {
        match self.fault_plan.events[idx].action {
            FaultAction::CapacityShock { .. } => {
                self.cloud.set_pool_limit(None);
            }
            FaultAction::Straggler { .. } => {
                if let Some(victim) = self.active_stragglers.remove(&idx) {
                    // A later straggler may have re-slowed the same
                    // instance; only lift when no window still covers it.
                    // (A preempted victim lost its slot — and its factor —
                    // already; the slot may now belong to a new instance.)
                    if !self.active_stragglers.values().any(|v| *v == victim) {
                        if let Some(islot) = self.world.insts.get(victim) {
                            // Settle at the straggling rate before it lifts.
                            self.touch_instance_jobs(islot);
                            self.world.insts.straggle[islot as usize] = 1.0;
                        }
                    }
                    self.recompute_completions();
                }
            }
            _ => {}
        }
    }

    /// Timestamped log of spot preemptions injected so far.
    pub fn preemption_log(&self) -> &[(SimTime, InstanceId)] {
        &self.preemption_log
    }

    /// Worker crashes injected so far.
    pub fn worker_crashes(&self) -> u64 {
        self.worker_crashes
    }

    /// Sim-side checkpoint drops injected so far.
    pub fn dropped_checkpoints(&self) -> u64 {
        self.dropped_checkpoints
    }

    /// Tasks currently mapped to `instance` (running or in transit).
    pub fn tasks_on(&self, instance: InstanceId) -> usize {
        self.world
            .insts
            .get(instance)
            .map(|s| self.world.insts.tasks[s as usize].len())
            .unwrap_or(0)
    }

    /// The cloud provider (for invariant checks in tests).
    pub fn provider(&self) -> &CloudProvider {
        &self.cloud
    }

    /// The compiled fault plan this world injects.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault_plan
    }

    /// Audits the world's slot bookkeeping (for invariant checks in
    /// tests): every job, task, and live instance ID must round-trip
    /// through its arena slot back to the same ID, cross-references
    /// (task↔instance, task↔job, active set, dirty set) must agree,
    /// every draining instance must still hold a slot, and the
    /// incrementally maintained capacity/allocation/running-task rates
    /// must equal a from-scratch scan of the live instance set bit for
    /// bit (see the dirty-set invariants in the `arena` module docs).
    pub fn audit_slots(&self) -> Result<(), String> {
        self.world.audit()?;
        for id in &self.draining {
            if self.world.insts.get(*id).is_none() {
                return Err(format!("draining instance {id} holds no slot"));
            }
        }
        let now = self.engine.now();
        let mut alloc = [0.0f64; 3];
        let mut cap = [0.0f64; 3];
        let mut running = 0usize;
        for inst in self.cloud.live_instances(now) {
            let Some(ty) = self.catalog.get(inst.type_id) else {
                continue;
            };
            cap[0] += f64::from(ty.capacity.gpu);
            cap[1] += f64::from(ty.capacity.cpu);
            cap[2] += ty.capacity.ram_mb as f64;
            if let Some(islot) = self.world.insts.get(inst.id) {
                for &tslot in &self.world.insts.tasks[islot as usize] {
                    let d = ty.demand_of(&self.task_spec(tslot).demand);
                    alloc[0] += f64::from(d.gpu);
                    alloc[1] += f64::from(d.cpu);
                    alloc[2] += d.ram_mb as f64;
                    if self.world.tasks.is_running(tslot) {
                        running += 1;
                    }
                }
            }
        }
        if cap != self.cap_rate || alloc != self.alloc_rate || running != self.running_rate {
            return Err(format!(
                "incremental rates diverged from live-set scan: \
                 cap {:?} vs {cap:?}, alloc {:?} vs {alloc:?}, running {} vs {running}",
                self.cap_rate, self.alloc_rate, self.running_rate
            ));
        }
        for &(term, id) in &self.cap_pending {
            if term <= now {
                return Err(format!("stale pending capacity retirement for {id}"));
            }
            let counted = self
                .inst_acct
                .get(id.0 as usize)
                .is_some_and(|a| a.counted);
            if !counted {
                return Err(format!("pending retirement of uncounted instance {id}"));
            }
        }
        Ok(())
    }

    /// Total events ever scheduled on the engine (heap-churn yardstick
    /// for the perf snapshots).
    pub fn events_scheduled(&self) -> u64 {
        self.engine.scheduled_count()
    }

    /// High-water mark of the event queue (live + tombstoned entries).
    pub fn event_queue_peak(&self) -> usize {
        self.engine.peak_len()
    }

    /// Debug digest of every observable the lazy dirty-set path must
    /// keep identical to the eager reference
    /// ([`SimConfig::reference_full_scan`]): settles all active jobs
    /// first so deferred progress is folded in, then formats each lane
    /// with shortest-roundtrip float formatting (distinct bits ⇒
    /// distinct strings). Test-only; not part of the stable API.
    #[doc(hidden)]
    pub fn oracle_digest(&mut self) -> String {
        use std::fmt::Write as _;
        for i in 0..self.world.jobs.active.len() {
            let slot = self.world.jobs.active[i];
            self.world.jobs.settle(slot);
        }
        let mut out = String::new();
        let jobs = &self.world.jobs;
        for s in 0..jobs.ids.len() {
            let _ = writeln!(
                out,
                "job {}: rem={:?} exec={:?} idle={:?} tput_int={:?} rate={:?} done={:?} sched={:?}",
                jobs.ids[s],
                jobs.remaining_hours[s],
                jobs.executing_hours[s],
                jobs.idle_hours[s],
                jobs.tput_integral[s],
                jobs.rate[s],
                jobs.completed_at[s],
                jobs.scheduled_done_at[s],
            );
        }
        let _ = writeln!(
            out,
            "integrals alloc={:?} cap={:?} run_hours={:?} \
             rates alloc={:?} cap={:?} running={}",
            self.alloc_integral,
            self.capacity_integral,
            self.task_running_hours,
            self.alloc_rate,
            self.cap_rate,
            self.running_rate,
        );
        out
    }

    fn handle_job_done(&mut self, slot: u32, generation: u64) {
        let s = slot as usize;
        let valid = self.world.jobs.arrived[s]
            && !self.world.jobs.is_done(slot)
            && self.world.jobs.completion_gen[s] == generation;
        if !valid {
            return;
        }
        // Fold the deferred segments in before reading remaining work.
        self.world.jobs.settle(slot);
        debug_assert!(
            self.world.jobs.remaining_hours[s] < 1e-6,
            "early completion event"
        );
        self.world.jobs.completed_at[s] = Some(self.engine.now());
        self.world.jobs.scheduled_done_at[s] = None;
        self.world.jobs.retire(slot);
        let job = self.world.jobs.ids[s];
        self.record(ExecActionKind::JobDone { job });
        for t in self.world.jobs.task_range(slot) {
            let was_running = self.world.tasks.state[t] == TaskState::Running;
            self.world.tasks.state[t] = TaskState::Done;
            let inst = self.world.tasks.assigned[t];
            if inst != NO_SLOT {
                // Surviving co-located jobs lose an interfering neighbour.
                self.touch_instance_jobs(inst);
                let id = self.world.insts.ids[inst as usize];
                self.world.tasks.assigned[t] = NO_SLOT;
                if self.world.insts.detach(inst, t as u32) {
                    self.account_mapping(id, t as u32, false);
                }
                if was_running {
                    self.account_running(id, -1);
                }
            }
        }
        self.try_terminations();
        self.recompute_completions();
        // A round will clean up the freed instances.
        self.schedule_round(self.now() + self.round_period);
    }

    /// The ground-truth throughput of the running task in `tslot` given
    /// its co-located running neighbours.
    pub(crate) fn task_tput(&self, tslot: u32) -> f64 {
        let s = tslot as usize;
        let inst = self.world.tasks.assigned[s];
        if inst == NO_SLOT || !self.world.tasks.is_running(tslot) {
            return 0.0;
        }
        let mut others = self.tput_buf.borrow_mut();
        others.clear();
        for &t in &self.world.insts.tasks[inst as usize] {
            if t != tslot && self.world.tasks.is_running(t) {
                others.push(self.world.tasks.workload[t as usize]);
            }
        }
        let base = self
            .interference
            .throughput(self.world.tasks.workload[s], &others);
        // A straggler window slows every task on the afflicted instance.
        // The factor changes only at fault events (which recompute
        // completions), so throughput stays piecewise-constant and
        // progress integration stays exact. Unafflicted slots hold 1.0,
        // and `x * 1.0` is bitwise `x`.
        base * self.world.insts.straggle[inst as usize]
    }

    /// Effective job throughput: gang-coupled jobs run at the minimum of
    /// their tasks (0 unless all run); single tasks at their own rate.
    pub(crate) fn job_tput(&self, jslot: u32) -> f64 {
        let mut min_tput = f64::INFINITY;
        for t in self.world.jobs.task_range(jslot) {
            if !self.world.tasks.is_running(t as u32) {
                return 0.0;
            }
            min_tput = min_tput.min(self.task_tput(t as u32));
        }
        if min_tput.is_finite() {
            min_tput
        } else {
            0.0
        }
    }

    /// Advances all integrals and job progress to `t` (the engine clock
    /// itself advances in [`ClusterSim::step`]).
    ///
    /// O(1) in steady state: job progress is deferred by logging the
    /// segment (clean jobs replay it on settle at their cached rate —
    /// current by dirty-set invariant 2), and the allocation/capacity
    /// integrals accrue from the maintained rates instead of rescanning
    /// the live instance set.
    fn advance_to(&mut self, t: SimTime) {
        let now = self.engine.now();
        let dt_hours = t.duration_since(now).as_hours_f64();
        if dt_hours <= 0.0 {
            return;
        }
        debug_assert!(
            self.world.jobs.dirty_list.is_empty(),
            "dirty jobs crossed a segment boundary unsettled"
        );
        if self.full_scan {
            // Eager reference semantics, kept verbatim for the oracle:
            // throughputs are pure reads, so computing them all before
            // applying preserves the old interleaved map semantics.
            let mut tputs: Vec<(u32, f64)> = Vec::with_capacity(self.world.jobs.active.len());
            for &slot in &self.world.jobs.active {
                tputs.push((slot, self.job_tput(slot)));
            }
            for &(slot, tput) in &tputs {
                self.world.jobs.advance(slot, dt_hours, tput);
            }
            let mut alloc = [0.0f64; 3];
            let mut cap = [0.0f64; 3];
            let mut running_tasks = 0usize;
            for inst in self.cloud.live_instances(now) {
                let Some(ty) = self.catalog.get(inst.type_id) else {
                    continue;
                };
                cap[0] += f64::from(ty.capacity.gpu);
                cap[1] += f64::from(ty.capacity.cpu);
                cap[2] += ty.capacity.ram_mb as f64;
                if let Some(islot) = self.world.insts.get(inst.id) {
                    for &tslot in &self.world.insts.tasks[islot as usize] {
                        let spec = self.task_spec(tslot);
                        let d = ty.demand_of(&spec.demand);
                        alloc[0] += f64::from(d.gpu);
                        alloc[1] += f64::from(d.cpu);
                        alloc[2] += d.ram_mb as f64;
                        if self.world.tasks.is_running(tslot) {
                            running_tasks += 1;
                        }
                    }
                }
            }
            for r in 0..3 {
                self.alloc_integral[r] += alloc[r] * dt_hours;
                self.capacity_integral[r] += cap[r] * dt_hours;
            }
            self.task_running_hours += running_tasks as f64 * dt_hours;
        } else {
            self.world.jobs.push_segment(dt_hours);
            for r in 0..3 {
                self.alloc_integral[r] += self.alloc_rate[r] * dt_hours;
                self.capacity_integral[r] += self.cap_rate[r] * dt_hours;
            }
            self.task_running_hours += self.running_rate as f64 * dt_hours;
        }
        // Retire the capacity of instances whose termination deadline
        // fell inside the segment just integrated: they were live at
        // its start (so they counted, exactly like the eager scan at
        // `now`), and every later segment starts at or past `t`.
        while let Some(&(term, id)) = self.cap_pending.first() {
            if term > t {
                break;
            }
            self.cap_pending.pop_first();
            self.uncount_instance(id);
        }
    }

    /// Re-derives the completion events of jobs marked dirty since the
    /// last drain. Refreshes each job's cached rate and skips the heap
    /// push when the due time is unchanged — the outstanding event is
    /// still valid, so steady-state heap churn tracks what *changed*.
    /// Rescheduling is dirty-triggered in the reference mode too: a
    /// completion time re-derived from a *later* anchor can flip by
    /// ±1 ms of rounding, so re-deriving clean jobs would push spurious
    /// replacement events rather than validate anything. Marking
    /// completeness is instead cross-checked by the eager reference
    /// advancing progress and integrals by full scan (`oracle_digest`
    /// equality) and by `audit_slots` recomputing every cached rate.
    pub(crate) fn recompute_completions(&mut self) {
        if self.world.jobs.dirty_list.is_empty() {
            return;
        }
        let mut dirty = std::mem::take(&mut self.world.jobs.dirty_list);
        // Ascending slot order: dirty jobs reschedule in the relative
        // order the eager full sweep pushed them.
        dirty.sort_unstable();
        let now = self.engine.now();
        for &slot in &dirty {
            let s = slot as usize;
            self.world.jobs.dirty[s] = false;
            if !self.world.jobs.arrived[s] || self.world.jobs.is_done(slot) {
                continue;
            }
            let tput = self.job_tput(slot);
            self.world.jobs.rate[s] = tput;
            let at = self
                .world
                .jobs
                .eta_hours(slot, tput)
                .map(|eta| now + SimDuration::from_hours_f64(eta));
            if at == self.world.jobs.scheduled_done_at[s] {
                continue;
            }
            self.world.jobs.completion_gen[s] += 1;
            let generation = self.world.jobs.completion_gen[s];
            self.world.jobs.scheduled_done_at[s] = at;
            if let Some(at) = at {
                self.push(at, Event::JobDone { slot, generation });
            }
        }
        dirty.clear();
        self.world.jobs.dirty_list = dirty;
    }

    /// Terminates drained instances whose departures have finished.
    pub(crate) fn try_terminations(&mut self) {
        if self.draining.is_empty() {
            return;
        }
        let mut candidates = std::mem::take(&mut self.term_scratch);
        candidates.clear();
        candidates.extend(self.draining.iter().copied());
        for &id in &candidates {
            let islot = self.world.insts.get(id);
            let empty = islot
                .map(|s| self.world.insts.tasks[s as usize].is_empty())
                .unwrap_or(true);
            if empty {
                let now = self.engine.now();
                let busy = islot
                    .map(|s| self.world.insts.busy_until[s as usize])
                    .unwrap_or(SimTime::ZERO);
                let _ = self.cloud.terminate(id, busy.max(now));
                self.note_termination(id);
                self.draining.remove(&id);
                self.world.insts.release(id);
            }
        }
        candidates.clear();
        self.term_scratch = candidates;
    }

    // ----- incremental integral accounting -------------------------------

    /// Registers a freshly provisioned instance with the capacity rate.
    /// Mirrors the eager scan's guard: instances whose type is not in
    /// the catalog never count.
    pub(crate) fn count_provision(&mut self, id: InstanceId) {
        let idx = id.0 as usize;
        if idx >= self.inst_acct.len() {
            self.inst_acct.resize(idx + 1, InstAcct::default());
        }
        let Some(ty) = self
            .cloud
            .instance(id)
            .and_then(|i| self.catalog.get(i.type_id))
        else {
            return;
        };
        let cap = [
            f64::from(ty.capacity.gpu),
            f64::from(ty.capacity.cpu),
            ty.capacity.ram_mb as f64,
        ];
        let acct = &mut self.inst_acct[idx];
        debug_assert!(!acct.counted, "instance {id} provisioned twice");
        acct.counted = true;
        acct.cap = cap;
        for (rate, c) in self.cap_rate.iter_mut().zip(cap) {
            *rate += c;
        }
    }

    /// Folds one task's demand into (out of) its instance's allocation
    /// rate at attach (detach). Callers gate on the arena's
    /// `attach`/`detach` return value so the rate mirrors the mapping
    /// lists exactly.
    pub(crate) fn account_mapping(&mut self, id: InstanceId, tslot: u32, attached: bool) {
        let Some(acct) = self.inst_acct.get(id.0 as usize) else {
            return;
        };
        if !acct.counted {
            return;
        }
        let Some(ty) = self.cloud.instance_type(id) else {
            return;
        };
        let d = ty.demand_of(&self.task_spec(tslot).demand);
        let dv = [f64::from(d.gpu), f64::from(d.cpu), d.ram_mb as f64];
        let acct = &mut self.inst_acct[id.0 as usize];
        if attached {
            for (r, d) in dv.into_iter().enumerate() {
                acct.alloc[r] += d;
                self.alloc_rate[r] += d;
            }
        } else {
            for (r, d) in dv.into_iter().enumerate() {
                acct.alloc[r] -= d;
                self.alloc_rate[r] -= d;
            }
        }
    }

    /// Adjusts the running-task rate when a task mapped to `id` starts
    /// (`+1`) or stops (`-1`) running.
    pub(crate) fn account_running(&mut self, id: InstanceId, delta: i32) {
        let Some(acct) = self.inst_acct.get_mut(id.0 as usize) else {
            return;
        };
        if !acct.counted {
            return;
        }
        if delta > 0 {
            acct.running += 1;
            self.running_rate += 1;
        } else {
            acct.running -= 1;
            self.running_rate -= 1;
        }
    }

    /// Reconciles the rates with the provider after a `terminate` call.
    /// The provider keeps the first termination time an instance was
    /// given (clamped to its request time), so read back what actually
    /// stuck: a past deadline retires the instance's contribution now,
    /// a future one parks it on `cap_pending` for `advance_to`.
    pub(crate) fn note_termination(&mut self, id: InstanceId) {
        let Some(t) = self.cloud.instance(id).and_then(|i| i.terminated_at) else {
            return;
        };
        let counted = self
            .inst_acct
            .get(id.0 as usize)
            .is_some_and(|a| a.counted);
        if !counted {
            return;
        }
        if t <= self.engine.now() {
            self.cap_pending.remove(&(t, id));
            self.uncount_instance(id);
        } else {
            self.cap_pending.insert((t, id));
        }
    }

    /// Removes a terminated instance's full contribution from the
    /// rates. Tasks may still be mapped to it (a drained instance keeps
    /// its capacity until its deadline passes, exactly like the eager
    /// live-set scan); their later detach/stop transitions are ignored
    /// by the `counted` guards.
    fn uncount_instance(&mut self, id: InstanceId) {
        let acct = &mut self.inst_acct[id.0 as usize];
        if !acct.counted {
            return;
        }
        acct.counted = false;
        for r in 0..3 {
            self.cap_rate[r] -= acct.cap[r];
            self.alloc_rate[r] -= acct.alloc[r];
        }
        self.running_rate -= acct.running as usize;
        acct.alloc = [0.0; 3];
        acct.running = 0;
    }

    /// Marks every job with a task mapped to instance slot `islot`
    /// dirty — their effective throughput may change with the
    /// instance's state (placement, straggle factor, co-location set).
    pub(crate) fn touch_instance_jobs(&mut self, islot: u32) {
        let world = &mut self.world;
        for &t in &world.insts.tasks[islot as usize] {
            world.jobs.mark_dirty(world.tasks.job_slot[t as usize]);
        }
    }
}
