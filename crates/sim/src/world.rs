//! Layer 2: the cluster world model.
//!
//! [`ClusterSim`] owns everything that exists in the simulated world —
//! provider, instances, jobs, task lifecycles, metric integrals — and
//! consumes events from the generic [`EventEngine`]. It drives the
//! scheduler through the round logic in the `observe` module but
//! contains no scheduling policy itself; report assembly lives in the
//! `report` module.

use std::collections::{BTreeMap, BTreeSet};

use rand::rngs::StdRng;

use eva_baselines::{
    NoPackingScheduler, OracleProfile, OwlScheduler, StratusScheduler, SynergyScheduler,
};
use eva_cloud::{Catalog, CloudProvider, DelayModel};
use eva_core::{EvaScheduler, Scheduler};
use eva_types::{InstanceId, JobId, SimDuration, SimTime, TaskId, WorkloadKind};
use eva_workloads::{InterferenceModel, Trace, TraceHandle, WorkloadCatalog};

use crate::engine::{CancelToken, EventEngine, RngStreams, SimEvent, DELAY_STREAM};
use crate::faults::{FaultAction, FaultPlan};
use crate::metrics::SimReport;
use crate::runner::{InterferenceSpec, SchedulerKind, SimConfig};
use crate::script::{ExecAction, ExecActionKind, ExecScript};
use crate::state::{JobProgress, TaskRuntime, TaskState};

/// Events the cluster world reacts to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Event {
    Arrival(usize),
    TaskReady { task: TaskId, generation: u64 },
    JobDone { job: JobId, generation: u64 },
    Round,
    /// Injected fault striking (index into the compiled fault plan).
    Fault(usize),
    /// A windowed fault (capacity shock, straggler) lifting.
    FaultExpire(usize),
}

impl SimEvent for Event {
    /// Same-timestamp dispatch priority: faults strike first (adversity
    /// never waits), then readiness and completions resolve before
    /// arrivals, arrivals before the round that schedules them.
    fn priority(&self) -> u8 {
        match self {
            Event::Fault(_) | Event::FaultExpire(_) => 0,
            Event::TaskReady { .. } => 0,
            Event::JobDone { .. } => 1,
            Event::Arrival(_) => 2,
            Event::Round => 3,
        }
    }
}

/// Fraction of a job's completed work destroyed by one sim-side
/// checkpoint drop (the job's latest checkpoint is its recent work).
pub(crate) const CKPT_DROP_LOSS: f64 = 0.25;

/// The simulated cluster: engine + world state + metric accumulators.
pub struct ClusterSim {
    pub(crate) cfg: SimConfig,
    pub(crate) catalog: Catalog,
    pub(crate) cloud: CloudProvider,
    pub(crate) rng: StdRng,
    pub(crate) interference: InterferenceModel,
    pub(crate) scheduler: Box<dyn Scheduler>,
    pub(crate) round_period: SimDuration,
    pub(crate) migration_delay_scale: f64,

    pub(crate) jobs: BTreeMap<JobId, JobProgress>,
    pub(crate) tasks: BTreeMap<TaskId, TaskRuntime>,
    pub(crate) task_gen: BTreeMap<TaskId, u64>,
    pub(crate) on_instance: BTreeMap<InstanceId, BTreeSet<TaskId>>,
    pub(crate) busy_until: BTreeMap<InstanceId, SimTime>,
    pub(crate) draining: BTreeSet<InstanceId>,

    pub(crate) engine: EventEngine<Event>,
    pub(crate) round_pending: bool,
    pub(crate) arrivals_remaining: usize,
    pub(crate) recorder: Option<ExecScript>,

    // Adversarial fault state.
    pub(crate) fault_plan: FaultPlan,
    pub(crate) fault_tokens: Vec<CancelToken>,
    pub(crate) straggle: BTreeMap<InstanceId, f64>,
    pub(crate) active_stragglers: BTreeMap<usize, InstanceId>,
    pub(crate) preemption_log: Vec<(SimTime, InstanceId)>,
    pub(crate) worker_crashes: u64,
    pub(crate) dropped_checkpoints: u64,

    // Metric accumulators (time integrals in hours).
    pub(crate) task_running_hours: f64,
    pub(crate) alloc_integral: [f64; 3],
    pub(crate) capacity_integral: [f64; 3],
    pub(crate) migration_count: u64,
    pub(crate) total_tasks: usize,
    pub(crate) rounds: u64,
    pub(crate) full_rounds: u64,
}

impl ClusterSim {
    /// Builds the world for one experiment.
    ///
    /// Jobs whose tasks fit no catalog instance type are dropped up front
    /// with a warning (the paper likewise removes them from the trace,
    /// §6.1); otherwise they could never complete and the simulation would
    /// not terminate.
    pub fn new(cfg: &SimConfig) -> Self {
        // Compile the fault plan from the *caller's* trace handle, before
        // feasibility filtering — the live backend compiles from the same
        // handle, so both sides must hash the same horizon.
        let fault_plan = FaultPlan::for_trace(cfg.faults, cfg.seed, &cfg.trace);
        let catalog = Catalog::aws_eval_2025();
        let workloads = WorkloadCatalog::table7();
        let fits = |job: &eva_types::JobSpec| {
            job.tasks
                .iter()
                .all(|t| catalog.cheapest_fit(&t.demand).is_some())
        };
        // The common case drops nothing, so the world shares the caller's
        // trace by handle instead of cloning the job vector.
        let trace = if cfg.trace.jobs().iter().all(&fits) {
            cfg.trace.clone()
        } else {
            let feasible: Vec<_> = cfg
                .trace
                .jobs()
                .iter()
                .filter(|job| {
                    let ok = fits(job);
                    if !ok {
                        eprintln!("warning: dropping unschedulable {}", job.id);
                    }
                    ok
                })
                .cloned()
                .collect();
            TraceHandle::new(Trace::new(feasible))
        };
        let cfg = SimConfig {
            trace,
            ..cfg.clone()
        };
        let interference = match cfg.interference {
            InterferenceSpec::Measured => InterferenceModel::measured(&workloads),
            InterferenceSpec::Uniform(t) => InterferenceModel::uniform(&workloads, t),
        };
        let scheduler: Box<dyn Scheduler> = match &cfg.scheduler {
            SchedulerKind::NoPacking => Box::new(NoPackingScheduler::new()),
            SchedulerKind::Stratus => Box::new(StratusScheduler::new()),
            SchedulerKind::Synergy => Box::new(SynergyScheduler::new()),
            SchedulerKind::Owl => {
                // Owl receives the ground-truth pairwise profile exclusively.
                let kinds: Vec<WorkloadKind> = workloads.iter().map(|w| w.kind).collect();
                let model = interference.clone();
                let profile = OracleProfile::from_fn(&kinds, |a, b| model.pairwise(a, b));
                Box::new(OwlScheduler::new(profile))
            }
            SchedulerKind::Eva(eva_cfg) => Box::new(EvaScheduler::new(eva_cfg.clone())),
        };
        let delays = DelayModel::table1(cfg.fidelity);
        let cloud = CloudProvider::new(catalog.clone(), delays);

        let mut sim = ClusterSim {
            catalog,
            cloud,
            rng: RngStreams::new(cfg.seed).stream(DELAY_STREAM),
            interference,
            scheduler,
            round_period: cfg.round_period,
            migration_delay_scale: cfg.migration_delay_scale,
            jobs: BTreeMap::new(),
            tasks: BTreeMap::new(),
            task_gen: BTreeMap::new(),
            on_instance: BTreeMap::new(),
            busy_until: BTreeMap::new(),
            draining: BTreeSet::new(),
            engine: EventEngine::new(),
            round_pending: false,
            arrivals_remaining: cfg.trace.len(),
            recorder: None,
            fault_plan,
            fault_tokens: Vec::new(),
            straggle: BTreeMap::new(),
            active_stragglers: BTreeMap::new(),
            preemption_log: Vec::new(),
            worker_crashes: 0,
            dropped_checkpoints: 0,
            task_running_hours: 0.0,
            alloc_integral: [0.0; 3],
            capacity_integral: [0.0; 3],
            migration_count: 0,
            total_tasks: cfg.trace.jobs().iter().map(|j| j.num_tasks()).sum(),
            rounds: 0,
            full_rounds: 0,
            cfg,
        };
        for (idx, job) in sim.cfg.trace.jobs().iter().enumerate() {
            sim.engine.schedule(job.arrival, Event::Arrival(idx));
        }
        // Inject the fault plan. Price steps compile straight into the
        // provider's billing schedule (they change no control-plane
        // behaviour); everything else enters the event heap as
        // tombstone-cancelable events so a drained workload can retire
        // leftover faults without dragging the clock forward.
        let price_steps: Vec<(SimTime, f64)> = sim
            .fault_plan
            .events
            .iter()
            .filter_map(|e| match e.action {
                FaultAction::PriceStep { factor } => Some((e.at, factor)),
                _ => None,
            })
            .collect();
        if !price_steps.is_empty() {
            sim.cloud.set_price_schedule(price_steps);
        }
        for i in 0..sim.fault_plan.events.len() {
            let ev = sim.fault_plan.events[i];
            match ev.action {
                FaultAction::PriceStep { .. } => {}
                FaultAction::CapacityShock { until } | FaultAction::Straggler { until, .. } => {
                    let strike = sim.engine.schedule_cancelable(ev.at, Event::Fault(i));
                    let lift = sim.engine.schedule_cancelable(until, Event::FaultExpire(i));
                    sim.fault_tokens.push(strike);
                    sim.fault_tokens.push(lift);
                }
                _ => {
                    let strike = sim.engine.schedule_cancelable(ev.at, Event::Fault(i));
                    sim.fault_tokens.push(strike);
                }
            }
        }
        sim
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// Scheduling rounds executed so far.
    pub fn rounds_executed(&self) -> u64 {
        self.rounds
    }

    /// Starts recording the control-plane action stream (see
    /// [`ExecScript`]); call before the first [`ClusterSim::step`].
    pub fn enable_recording(&mut self) {
        self.recorder = Some(ExecScript::default());
    }

    /// Takes the recorded script, ending recording.
    pub fn take_script(&mut self) -> ExecScript {
        self.recorder.take().unwrap_or_default()
    }

    pub(crate) fn record(&mut self, kind: ExecActionKind) {
        if let Some(script) = self.recorder.as_mut() {
            let at = self.engine.now();
            script.actions.push(ExecAction { at, kind });
        }
    }

    /// Fraction of `job`'s work already completed, in `[0, 1]`.
    pub(crate) fn job_progress_fraction(&self, job: JobId) -> f64 {
        let Some(j) = self.jobs.get(&job) else {
            return 0.0;
        };
        let total = j.spec.duration_at_full_tput.as_hours_f64();
        if total <= 0.0 {
            1.0
        } else {
            (1.0 - j.remaining_hours / total).clamp(0.0, 1.0)
        }
    }

    /// Processes the next event, integrating world state up to its due
    /// time first. Returns false once the event queue is exhausted.
    pub fn step(&mut self) -> bool {
        let Some(scheduled) = self.engine.pop() else {
            return false;
        };
        self.advance_to(scheduled.at);
        self.engine.advance_to(scheduled.at);
        self.handle(scheduled.event);
        true
    }

    /// Runs the world to completion and assembles the report.
    pub fn run(mut self) -> SimReport {
        while self.step() {}
        crate::report::finalize(self)
    }

    pub(crate) fn push(&mut self, at: SimTime, event: Event) {
        self.engine.schedule(at, event);
    }

    pub(crate) fn schedule_round(&mut self, at: SimTime) {
        if !self.round_pending {
            self.round_pending = true;
            self.push(at, Event::Round);
        }
    }

    fn handle(&mut self, event: Event) {
        match event {
            Event::Arrival(idx) => {
                let spec = self.cfg.trace.jobs()[idx].clone();
                self.arrivals_remaining -= 1;
                for t in &spec.tasks {
                    self.tasks.insert(t.id, TaskRuntime::new(t.id));
                }
                self.jobs.insert(spec.id, JobProgress::new(spec));
                self.schedule_round(self.now());
            }
            Event::TaskReady { task, generation } => {
                let matches = self
                    .tasks
                    .get(&task)
                    .map(|rt| {
                        matches!(rt.state, TaskState::InTransit { generation: g, .. } if g == generation)
                    })
                    .unwrap_or(false);
                if matches {
                    let rt = self.tasks.get_mut(&task).unwrap();
                    rt.state = TaskState::Running;
                    if let (Some(instance), true) = (rt.assigned_to, self.recorder.is_some()) {
                        let progress = self.job_progress_fraction(task.job);
                        self.record(ExecActionKind::Start {
                            task,
                            instance,
                            progress,
                        });
                    }
                    self.recompute_completions();
                }
            }
            Event::JobDone { job, generation } => self.handle_job_done(job, generation),
            Event::Round => self.handle_round(),
            Event::Fault(idx) => self.apply_fault(idx),
            Event::FaultExpire(idx) => self.expire_fault(idx),
        }
    }

    /// Deterministic fault victim: the live instance selected by the
    /// plan's pre-drawn word over the provider's ordered live set.
    fn fault_victim(&self, draw: u64) -> Option<InstanceId> {
        let victims: Vec<InstanceId> =
            self.cloud.live_instances(self.now()).map(|i| i.id).collect();
        if victims.is_empty() {
            None
        } else {
            Some(victims[(draw % victims.len() as u64) as usize])
        }
    }

    /// Abruptly kills every unfinished task mapped to `victim`: running
    /// tasks rescue-checkpoint at the kill instant (recorded as
    /// [`ExecActionKind::Kill`]), in-transit tasks lose their transfer;
    /// all go back to pending for the next round to re-place.
    fn kill_instance_tasks(&mut self, victim: InstanceId) {
        let tids: Vec<TaskId> = self
            .on_instance
            .get(&victim)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        for tid in tids {
            let running = self
                .tasks
                .get(&tid)
                .map(|rt| match rt.state {
                    TaskState::Done => None,
                    _ => Some(rt.is_running()),
                })
                .unwrap_or(None);
            let Some(running) = running else { continue };
            if running {
                let progress = self.job_progress_fraction(tid.job);
                self.record(ExecActionKind::Kill {
                    task: tid,
                    progress,
                });
            }
            let rt = self.tasks.get_mut(&tid).unwrap();
            rt.state = TaskState::Pending;
            rt.assigned_to = None;
            if let Some(set) = self.on_instance.get_mut(&victim) {
                set.remove(&tid);
            }
        }
    }

    /// Applies fault-plan event `idx` at its scheduled instant.
    pub(crate) fn apply_fault(&mut self, idx: usize) {
        let ev = self.fault_plan.events[idx];
        let now = self.now();
        match ev.action {
            FaultAction::Preempt => {
                let Some(victim) = self.fault_victim(ev.draw) else {
                    return;
                };
                self.kill_instance_tasks(victim);
                let _ = self.cloud.terminate(victim, now);
                self.draining.remove(&victim);
                self.on_instance.remove(&victim);
                self.busy_until.remove(&victim);
                self.straggle.remove(&victim);
                self.preemption_log.push((now, victim));
                self.recompute_completions();
                self.schedule_round(now);
            }
            FaultAction::WorkerCrash => {
                let Some(victim) = self.fault_victim(ev.draw) else {
                    return;
                };
                // Unlike a preemption, the instance survives (and bills).
                self.kill_instance_tasks(victim);
                self.worker_crashes += 1;
                self.recompute_completions();
                self.schedule_round(now);
            }
            FaultAction::CapacityShock { .. } => {
                let live = self.cloud.live_count(now);
                self.cloud.set_pool_limit(Some(live / 2));
            }
            FaultAction::PriceStep { .. } => {
                // Applied as a billing schedule at construction.
            }
            FaultAction::CkptDrop => {
                let candidates: Vec<JobId> = self
                    .jobs
                    .iter()
                    .filter(|(_, j)| {
                        !j.is_done()
                            && j.remaining_hours + 1e-12
                                < j.spec.duration_at_full_tput.as_hours_f64()
                    })
                    .map(|(id, _)| *id)
                    .collect();
                if candidates.is_empty() {
                    return;
                }
                let victim = candidates[(ev.draw % candidates.len() as u64) as usize];
                let j = self.jobs.get_mut(&victim).unwrap();
                let total = j.spec.duration_at_full_tput.as_hours_f64();
                let done = (total - j.remaining_hours).max(0.0);
                j.remaining_hours = (j.remaining_hours + CKPT_DROP_LOSS * done).min(total);
                self.dropped_checkpoints += 1;
                self.recompute_completions();
            }
            FaultAction::Straggler { factor, .. } => {
                let Some(victim) = self.fault_victim(ev.draw) else {
                    return;
                };
                self.straggle.insert(victim, factor);
                self.active_stragglers.insert(idx, victim);
                self.recompute_completions();
            }
        }
    }

    /// Lifts a windowed fault when its expiry event fires.
    pub(crate) fn expire_fault(&mut self, idx: usize) {
        match self.fault_plan.events[idx].action {
            FaultAction::CapacityShock { .. } => {
                self.cloud.set_pool_limit(None);
            }
            FaultAction::Straggler { .. } => {
                if let Some(victim) = self.active_stragglers.remove(&idx) {
                    // A later straggler may have re-slowed the same
                    // instance; only lift when no window still covers it.
                    if !self.active_stragglers.values().any(|v| *v == victim) {
                        self.straggle.remove(&victim);
                    }
                    self.recompute_completions();
                }
            }
            _ => {}
        }
    }

    /// Timestamped log of spot preemptions injected so far.
    pub fn preemption_log(&self) -> &[(SimTime, InstanceId)] {
        &self.preemption_log
    }

    /// Worker crashes injected so far.
    pub fn worker_crashes(&self) -> u64 {
        self.worker_crashes
    }

    /// Sim-side checkpoint drops injected so far.
    pub fn dropped_checkpoints(&self) -> u64 {
        self.dropped_checkpoints
    }

    /// Tasks currently mapped to `instance` (running or in transit).
    pub fn tasks_on(&self, instance: InstanceId) -> usize {
        self.on_instance.get(&instance).map(|s| s.len()).unwrap_or(0)
    }

    /// The cloud provider (for invariant checks in tests).
    pub fn provider(&self) -> &CloudProvider {
        &self.cloud
    }

    /// The compiled fault plan this world injects.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault_plan
    }

    fn handle_job_done(&mut self, job: JobId, generation: u64) {
        let valid = self
            .jobs
            .get(&job)
            .map(|j| !j.is_done() && j.completion_generation == generation)
            .unwrap_or(false);
        if !valid {
            return;
        }
        let task_ids: Vec<TaskId> = {
            let j = self.jobs.get_mut(&job).unwrap();
            debug_assert!(j.remaining_hours < 1e-6, "early completion event");
            j.completed_at = Some(self.engine.now());
            j.spec.tasks.iter().map(|t| t.id).collect()
        };
        self.record(ExecActionKind::JobDone { job });
        for tid in task_ids {
            if let Some(rt) = self.tasks.get_mut(&tid) {
                rt.state = TaskState::Done;
                if let Some(inst) = rt.assigned_to.take() {
                    if let Some(set) = self.on_instance.get_mut(&inst) {
                        set.remove(&tid);
                    }
                }
            }
        }
        self.try_terminations();
        self.recompute_completions();
        // A round will clean up the freed instances.
        self.schedule_round(self.now() + self.round_period);
    }

    /// The ground-truth throughput of a running task given its co-located
    /// running neighbours.
    pub(crate) fn task_tput(&self, task: &TaskRuntime, workload: WorkloadKind) -> f64 {
        let Some(inst) = task.assigned_to else {
            return 0.0;
        };
        if !task.is_running() {
            return 0.0;
        }
        let others: Vec<WorkloadKind> = self
            .on_instance
            .get(&inst)
            .map(|set| {
                set.iter()
                    .filter(|tid| **tid != task.id)
                    .filter_map(|tid| self.tasks.get(tid))
                    .filter(|t| t.is_running())
                    .filter_map(|t| self.workload_of(t.id))
                    .collect()
            })
            .unwrap_or_default();
        let base = self.interference.throughput(workload, &others);
        // A straggler window slows every task on the afflicted instance.
        // The factor changes only at fault events (which recompute
        // completions), so throughput stays piecewise-constant and
        // progress integration stays exact.
        match self.straggle.get(&inst) {
            Some(factor) => base * factor,
            None => base,
        }
    }

    pub(crate) fn workload_of(&self, task: TaskId) -> Option<WorkloadKind> {
        self.jobs
            .get(&task.job)
            .and_then(|j| j.spec.task(task))
            .map(|t| t.workload)
    }

    /// Effective job throughput: gang-coupled jobs run at the minimum of
    /// their tasks (0 unless all run); single tasks at their own rate.
    pub(crate) fn job_tput(&self, job: &JobProgress) -> f64 {
        let mut min_tput = f64::INFINITY;
        for spec in &job.spec.tasks {
            let Some(rt) = self.tasks.get(&spec.id) else {
                return 0.0;
            };
            if !rt.is_running() {
                return 0.0;
            }
            min_tput = min_tput.min(self.task_tput(rt, spec.workload));
        }
        if min_tput.is_finite() {
            min_tput
        } else {
            0.0
        }
    }

    /// Advances all integrals and job progress to `t` (the engine clock
    /// itself advances in [`ClusterSim::step`]).
    fn advance_to(&mut self, t: SimTime) {
        let now = self.engine.now();
        let dt_hours = t.duration_since(now).as_hours_f64();
        if dt_hours <= 0.0 {
            return;
        }
        // Job progress.
        let tputs: Vec<(JobId, f64)> = self
            .jobs
            .iter()
            .filter(|(_, j)| !j.is_done())
            .map(|(id, j)| (*id, self.job_tput(j)))
            .collect();
        for (id, tput) in tputs {
            if let Some(j) = self.jobs.get_mut(&id) {
                j.advance(dt_hours, tput);
            }
        }
        // Allocation integrals.
        let mut alloc = [0.0f64; 3];
        let mut cap = [0.0f64; 3];
        let mut running_tasks = 0usize;
        for inst in self.cloud.live_instances(now) {
            let Some(ty) = self.catalog.get(inst.type_id) else {
                continue;
            };
            cap[0] += f64::from(ty.capacity.gpu);
            cap[1] += f64::from(ty.capacity.cpu);
            cap[2] += ty.capacity.ram_mb as f64;
            if let Some(set) = self.on_instance.get(&inst.id) {
                for tid in set {
                    let Some(job) = self.jobs.get(&tid.job) else {
                        continue;
                    };
                    let Some(spec) = job.spec.task(*tid) else {
                        continue;
                    };
                    let d = ty.demand_of(&spec.demand);
                    alloc[0] += f64::from(d.gpu);
                    alloc[1] += f64::from(d.cpu);
                    alloc[2] += d.ram_mb as f64;
                    if self.tasks.get(tid).map(|t| t.is_running()).unwrap_or(false) {
                        running_tasks += 1;
                    }
                }
            }
        }
        for r in 0..3 {
            self.alloc_integral[r] += alloc[r] * dt_hours;
            self.capacity_integral[r] += cap[r] * dt_hours;
        }
        self.task_running_hours += running_tasks as f64 * dt_hours;
    }

    /// Re-derives every active job's completion event.
    pub(crate) fn recompute_completions(&mut self) {
        let jobs: Vec<JobId> = self
            .jobs
            .iter()
            .filter(|(_, j)| !j.is_done())
            .map(|(id, _)| *id)
            .collect();
        for id in jobs {
            let tput = self.job_tput(&self.jobs[&id]);
            let job = self.jobs.get_mut(&id).unwrap();
            job.completion_generation += 1;
            let generation = job.completion_generation;
            if let Some(eta) = job.eta_hours(tput) {
                let at = self.engine.now() + SimDuration::from_hours_f64(eta);
                self.push(
                    at,
                    Event::JobDone {
                        job: id,
                        generation,
                    },
                );
            }
        }
    }

    /// Terminates drained instances whose departures have finished.
    pub(crate) fn try_terminations(&mut self) {
        let candidates: Vec<InstanceId> = self.draining.iter().copied().collect();
        for id in candidates {
            let empty = self
                .on_instance
                .get(&id)
                .map(|s| s.is_empty())
                .unwrap_or(true);
            if empty {
                let now = self.engine.now();
                let busy = self.busy_until.get(&id).copied().unwrap_or(now);
                let _ = self.cloud.terminate(id, busy.max(now));
                self.draining.remove(&id);
                self.on_instance.remove(&id);
                self.busy_until.remove(&id);
            }
        }
    }
}
