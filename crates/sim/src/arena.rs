//! Dense arena-indexed, structure-of-arrays world state.
//!
//! The world model used to key every per-event touch of job/task/instance
//! state through `BTreeMap` lookups — O(log n) pointer-chasing on the
//! hottest path in the repo. IDs are newtyped integers, so instead the
//! world interns them into contiguous `u32` slots at construction:
//!
//! * **job slots** are assigned in ascending [`JobId`] order, so walking
//!   `0..len` visits jobs exactly as the old `BTreeMap<JobId, _>`
//!   iteration did — float accumulation order (and therefore report
//!   bytes) is preserved;
//! * **task slots** are job-major and ascending by [`TaskId`] within a
//!   job, so each job's tasks form one contiguous slot range and a
//!   sorted task-slot list is sorted by `TaskId`;
//! * **instance slots** are allocated when the provider provisions and
//!   recycled through a free list when instances retire — per-instance
//!   state (mapped tasks, busy-until, straggle factor) lives in parallel
//!   `Vec`s indexed by slot, with a dense `InstanceId → slot` table on
//!   the side (provider IDs are sequential).
//!
//! Dynamic state is stored as structure-of-arrays `Vec`s: the per-event
//! integration loop touches `remaining_hours`/`tput_integral`/… as flat
//! `f64` lanes instead of chasing map nodes. Job and task *specs* are
//! never cloned — slots carry indices into the shared trace, so a
//! million-job world costs a few flat vectors, not a second copy of the
//! trace.
//!
//! The reference semantics of a single job/task (advance arithmetic,
//! lifecycle states) remain specified — and unit-tested — by
//! [`crate::state`]; the arena stores the same quantities in SoA form
//! and must evolve them identically. `tests/arena_parity.rs` pins the
//! end-to-end equivalence byte-for-byte against a pre-arena golden.

use eva_types::{InstanceId, JobId, SimTime, TaskId, WorkloadKind};
use eva_workloads::Trace;

use crate::state::TaskState;

/// Sentinel for "no slot" in `u32` slot references.
pub(crate) const NO_SLOT: u32 = u32::MAX;

/// Job state, slot-indexed in ascending [`JobId`] order.
#[derive(Debug)]
pub(crate) struct JobArena {
    /// Slot → job ID (ascending; slot order is ID order).
    pub ids: Vec<JobId>,
    /// Slot → index of the job's spec in the trace's job vector.
    pub spec_idx: Vec<u32>,
    /// Prefix table: job `j`'s tasks occupy task slots
    /// `task_start[j]..task_start[j + 1]`.
    pub task_start: Vec<u32>,
    /// Total work in full-throughput hours (the spec duration, cached).
    pub total_hours: Vec<f64>,
    /// Remaining work in full-throughput hours.
    pub remaining_hours: Vec<f64>,
    /// Accumulated wall-clock hours executing.
    pub executing_hours: Vec<f64>,
    /// Accumulated wall-clock hours present but not executing.
    pub idle_hours: Vec<f64>,
    /// Integral of throughput over executing time.
    pub tput_integral: Vec<f64>,
    /// Completion time, once done.
    pub completed_at: Vec<Option<SimTime>>,
    /// Stamp invalidating stale completion events.
    pub completion_gen: Vec<u64>,
    /// Whether the job's arrival event has fired.
    pub arrived: Vec<bool>,
    /// Arrived-and-not-done job slots, kept sorted (ascending slot ==
    /// ascending `JobId`): the iteration set of every per-event loop,
    /// so done and not-yet-arrived jobs cost nothing per event.
    pub active: Vec<u32>,
}

impl JobArena {
    /// Slot of `id`, if the trace contains it.
    pub fn slot_of(&self, id: JobId) -> Option<u32> {
        self.ids.binary_search(&id).ok().map(|s| s as u32)
    }

    /// True once the job has no work left.
    pub fn is_done(&self, slot: u32) -> bool {
        self.completed_at[slot as usize].is_some()
    }

    /// The job's contiguous task-slot range.
    pub fn task_range(&self, slot: u32) -> std::ops::Range<usize> {
        self.task_start[slot as usize] as usize..self.task_start[slot as usize + 1] as usize
    }

    /// Marks the job arrived and inserts it into the active set.
    pub fn activate(&mut self, slot: u32) {
        self.arrived[slot as usize] = true;
        if let Err(pos) = self.active.binary_search(&slot) {
            self.active.insert(pos, slot);
        }
    }

    /// Removes a completed job from the active set.
    pub fn retire(&mut self, slot: u32) {
        if let Ok(pos) = self.active.binary_search(&slot) {
            self.active.remove(pos);
        }
    }

    /// Advances the job by `dt_hours` at effective throughput `tput` —
    /// the SoA form of [`crate::state::JobProgress::advance`], operation
    /// for operation.
    pub fn advance(&mut self, slot: u32, dt_hours: f64, tput: f64) {
        let s = slot as usize;
        if self.completed_at[s].is_some() || dt_hours <= 0.0 {
            return;
        }
        if tput > 0.0 {
            self.remaining_hours[s] = (self.remaining_hours[s] - dt_hours * tput).max(0.0);
            self.executing_hours[s] += dt_hours;
            self.tput_integral[s] += dt_hours * tput;
        } else {
            self.idle_hours[s] += dt_hours;
        }
    }

    /// Hours until completion at throughput `tput`, if it is positive
    /// (see [`crate::state::JobProgress::eta_hours`]).
    pub fn eta_hours(&self, slot: u32, tput: f64) -> Option<f64> {
        let s = slot as usize;
        if self.completed_at[s].is_some() || tput <= 0.0 {
            None
        } else {
            Some(self.remaining_hours[s] / tput)
        }
    }

    /// Average normalized throughput while executing (see
    /// [`crate::state::JobProgress::mean_tput`]).
    pub fn mean_tput(&self, slot: u32) -> f64 {
        let s = slot as usize;
        if self.executing_hours[s] <= 0.0 {
            1.0
        } else {
            self.tput_integral[s] / self.executing_hours[s]
        }
    }
}

/// Task state, slot-indexed job-major in ascending [`TaskId`] order.
#[derive(Debug)]
pub(crate) struct TaskArena {
    /// Slot → task ID (ascending; slot order is ID order).
    pub ids: Vec<TaskId>,
    /// Slot → owning job's slot.
    pub job_slot: Vec<u32>,
    /// Slot → the task's position in its job spec's task vector.
    pub spec_pos: Vec<u32>,
    /// Slot → workload kind (cached from the spec for the tput loop).
    pub workload: Vec<WorkloadKind>,
    /// Lifecycle state.
    pub state: Vec<TaskState>,
    /// Target instance slot ([`NO_SLOT`] when unplaced).
    pub assigned: Vec<u32>,
    /// Migrations performed so far.
    pub migrations: Vec<u32>,
    /// Monotonic transfer generation (invalidates superseded readiness).
    pub gen: Vec<u64>,
    /// Spec-order lookup: the slot of job `j`'s `pos`-th spec task is
    /// `slot_by_pos[task_start[j] + pos]` (identity whenever spec tasks
    /// are declared in index order, which every generator does).
    pub slot_by_pos: Vec<u32>,
}

impl TaskArena {
    /// Slot of `id`, if the trace contains it.
    pub fn slot_of(&self, id: TaskId) -> Option<u32> {
        self.ids.binary_search(&id).ok().map(|s| s as u32)
    }

    /// True when the task currently computes (and therefore interferes).
    pub fn is_running(&self, slot: u32) -> bool {
        self.state[slot as usize] == TaskState::Running
    }
}

/// Instance state, slot-indexed with a free list: slots recycle as the
/// provider churns through spot instances.
#[derive(Debug, Default)]
pub(crate) struct InstArena {
    /// Dense `InstanceId → slot` table (provider IDs are sequential);
    /// [`NO_SLOT`] when the instance holds no slot (never provisioned,
    /// or already released).
    slot_by_id: Vec<u32>,
    /// Slot → instance ID (meaningful only while the slot is live).
    pub ids: Vec<InstanceId>,
    /// Slot → mapped task slots, kept sorted (ascending task slot ==
    /// ascending `TaskId`, preserving co-location iteration order).
    pub tasks: Vec<Vec<u32>>,
    /// Slot → departure-checkpoint barrier ([`SimTime::ZERO`] = unset).
    pub busy_until: Vec<SimTime>,
    /// Slot → straggler slowdown factor (1.0 = unafflicted).
    pub straggle: Vec<f64>,
    /// Recycled slots awaiting reuse.
    free: Vec<u32>,
}

impl InstArena {
    /// Live slot of `id`, if it holds one.
    pub fn get(&self, id: InstanceId) -> Option<u32> {
        match self.slot_by_id.get(id.0 as usize) {
            Some(&s) if s != NO_SLOT => Some(s),
            _ => None,
        }
    }

    /// Returns `id`'s slot, allocating (or recycling) one if needed.
    pub fn ensure(&mut self, id: InstanceId) -> u32 {
        if let Some(s) = self.get(id) {
            return s;
        }
        let idx = id.0 as usize;
        if idx >= self.slot_by_id.len() {
            self.slot_by_id.resize(idx + 1, NO_SLOT);
        }
        let slot = match self.free.pop() {
            Some(s) => {
                self.ids[s as usize] = id;
                debug_assert!(self.tasks[s as usize].is_empty());
                debug_assert_eq!(self.busy_until[s as usize], SimTime::ZERO);
                debug_assert_eq!(self.straggle[s as usize], 1.0);
                s
            }
            None => {
                let s = self.ids.len() as u32;
                self.ids.push(id);
                self.tasks.push(Vec::new());
                self.busy_until.push(SimTime::ZERO);
                self.straggle.push(1.0);
                s
            }
        };
        self.slot_by_id[idx] = slot;
        slot
    }

    /// Releases `id`'s slot back to the free list, resetting its state.
    pub fn release(&mut self, id: InstanceId) {
        let Some(slot) = self.get(id) else {
            return;
        };
        self.slot_by_id[id.0 as usize] = NO_SLOT;
        self.tasks[slot as usize].clear();
        self.busy_until[slot as usize] = SimTime::ZERO;
        self.straggle[slot as usize] = 1.0;
        self.free.push(slot);
    }

    /// Maps a task slot onto an instance slot (sorted insert).
    pub fn attach(&mut self, slot: u32, task: u32) {
        let list = &mut self.tasks[slot as usize];
        if let Err(pos) = list.binary_search(&task) {
            list.insert(pos, task);
        }
    }

    /// Unmaps a task slot from an instance slot.
    pub fn detach(&mut self, slot: u32, task: u32) {
        let list = &mut self.tasks[slot as usize];
        if let Ok(pos) = list.binary_search(&task) {
            list.remove(pos);
        }
    }

    /// Slots currently live (mapped from an ID).
    pub fn live_slots(&self) -> impl Iterator<Item = u32> + '_ {
        self.slot_by_id.iter().copied().filter(|&s| s != NO_SLOT)
    }
}

/// The complete interned world state: jobs + tasks + instances.
#[derive(Debug)]
pub(crate) struct WorldArena {
    pub jobs: JobArena,
    pub tasks: TaskArena,
    pub insts: InstArena,
    /// Trace job index → job slot (arrival events carry trace indices).
    pub slot_of_spec: Vec<u32>,
}

impl WorldArena {
    /// Interns every job and task ID of `trace` into slots. All dynamic
    /// state starts at its pre-arrival default; instances intern lazily
    /// as the provider provisions them.
    pub fn from_trace(trace: &Trace) -> Self {
        let specs = trace.jobs();
        let n = specs.len();
        let total_tasks: usize = specs.iter().map(|j| j.tasks.len()).sum();

        // Job slots in ascending JobId order (the trace is arrival-
        // ordered, which usually — but not necessarily — coincides).
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by_key(|&i| specs[i as usize].id);

        let mut jobs = JobArena {
            ids: Vec::with_capacity(n),
            spec_idx: Vec::with_capacity(n),
            task_start: Vec::with_capacity(n + 1),
            total_hours: Vec::with_capacity(n),
            remaining_hours: Vec::with_capacity(n),
            executing_hours: vec![0.0; n],
            idle_hours: vec![0.0; n],
            tput_integral: vec![0.0; n],
            completed_at: vec![None; n],
            completion_gen: vec![0; n],
            arrived: vec![false; n],
            active: Vec::new(),
        };
        let mut tasks = TaskArena {
            ids: Vec::with_capacity(total_tasks),
            job_slot: Vec::with_capacity(total_tasks),
            spec_pos: Vec::with_capacity(total_tasks),
            workload: Vec::with_capacity(total_tasks),
            state: vec![TaskState::Pending; total_tasks],
            assigned: vec![NO_SLOT; total_tasks],
            migrations: vec![0; total_tasks],
            gen: vec![0; total_tasks],
            slot_by_pos: vec![0; total_tasks],
        };
        let mut slot_of_spec = vec![0u32; n];

        for (slot, &si) in order.iter().enumerate() {
            let spec = &specs[si as usize];
            debug_assert!(
                jobs.ids.last().is_none_or(|last| *last < spec.id),
                "duplicate job id {} in trace",
                spec.id
            );
            slot_of_spec[si as usize] = slot as u32;
            jobs.ids.push(spec.id);
            jobs.spec_idx.push(si);
            jobs.task_start.push(tasks.ids.len() as u32);
            let total = spec.duration_at_full_tput.as_hours_f64();
            jobs.total_hours.push(total);
            jobs.remaining_hours.push(total);

            // Task slots ascending by TaskId within the job (generators
            // declare tasks in index order, but don't assume it).
            let base = tasks.ids.len() as u32;
            let mut positions: Vec<u32> = (0..spec.tasks.len() as u32).collect();
            positions.sort_by_key(|&p| spec.tasks[p as usize].id);
            for (k, &pos) in positions.iter().enumerate() {
                let t = &spec.tasks[pos as usize];
                debug_assert_eq!(t.id.job, spec.id, "task under foreign job");
                let tslot = base + k as u32;
                tasks.ids.push(t.id);
                tasks.job_slot.push(slot as u32);
                tasks.spec_pos.push(pos);
                tasks.workload.push(t.workload);
                tasks.slot_by_pos[(base + pos) as usize] = tslot;
            }
        }
        jobs.task_start.push(tasks.ids.len() as u32);
        debug_assert!(tasks.ids.windows(2).all(|w| w[0] < w[1]));

        WorldArena {
            jobs,
            tasks,
            insts: InstArena::default(),
            slot_of_spec,
        }
    }

    /// Verifies every slot↔ID round trip and cross-reference; returns a
    /// description of the first violation. Backs the public
    /// `ClusterSim::audit_slots` test hook.
    pub fn audit(&self) -> Result<(), String> {
        for (slot, &id) in self.jobs.ids.iter().enumerate() {
            if self.jobs.slot_of(id) != Some(slot as u32) {
                return Err(format!("job {id} does not round-trip slot {slot}"));
            }
        }
        for slot in 0..self.jobs.ids.len() as u32 {
            let should = self.jobs.arrived[slot as usize] && !self.jobs.is_done(slot);
            let listed = self.jobs.active.binary_search(&slot).is_ok();
            if should != listed {
                return Err(format!(
                    "job {} active-set membership {listed} (expected {should})",
                    self.jobs.ids[slot as usize]
                ));
            }
        }
        for (slot, &id) in self.tasks.ids.iter().enumerate() {
            if self.tasks.slot_of(id) != Some(slot as u32) {
                return Err(format!("task {id} does not round-trip slot {slot}"));
            }
            let jslot = self.tasks.job_slot[slot];
            if self.jobs.ids[jslot as usize] != id.job {
                return Err(format!("task {id} points at job slot {jslot}"));
            }
            if !self.jobs.task_range(jslot).contains(&slot) {
                return Err(format!("task {id} outside its job's slot range"));
            }
            let inst = self.tasks.assigned[slot];
            if inst != NO_SLOT {
                let mapped = self.insts.tasks[inst as usize].binary_search(&(slot as u32));
                let done = self.tasks.state[slot] == TaskState::Done;
                if mapped.is_err() && !done {
                    return Err(format!("task {id} assigned to slot {inst} but unmapped"));
                }
            }
        }
        for slot in self.insts.live_slots() {
            let id = self.insts.ids[slot as usize];
            if self.insts.get(id) != Some(slot) {
                return Err(format!("instance {id} does not round-trip slot {slot}"));
            }
            let list = &self.insts.tasks[slot as usize];
            if !list.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("instance {id} task list unsorted"));
            }
            for &t in list {
                if self.tasks.assigned[t as usize] != slot {
                    return Err(format!(
                        "instance {id} maps task slot {t} assigned elsewhere"
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_workloads::SyntheticTraceConfig;

    #[test]
    fn interning_orders_slots_by_id() {
        let trace = SyntheticTraceConfig::small_scale().generate(42);
        let world = WorldArena::from_trace(&trace);
        assert_eq!(world.jobs.ids.len(), trace.len());
        assert!(world.jobs.ids.windows(2).all(|w| w[0] < w[1]));
        assert!(world.tasks.ids.windows(2).all(|w| w[0] < w[1]));
        // Every trace index round-trips through its slot.
        for (idx, spec) in trace.jobs().iter().enumerate() {
            let slot = world.slot_of_spec[idx];
            assert_eq!(world.jobs.ids[slot as usize], spec.id);
            assert_eq!(world.jobs.spec_idx[slot as usize] as usize, idx);
            assert_eq!(world.jobs.task_range(slot).len(), spec.tasks.len());
        }
        world.audit().unwrap();
    }

    #[test]
    fn instance_slots_recycle_through_free_list() {
        let trace = SyntheticTraceConfig::small_scale().generate(1);
        let mut world = WorldArena::from_trace(&trace);
        let a = world.insts.ensure(InstanceId(0));
        let b = world.insts.ensure(InstanceId(1));
        assert_ne!(a, b);
        assert_eq!(world.insts.ensure(InstanceId(0)), a, "idempotent");
        world.insts.straggle[a as usize] = 0.5;
        world.insts.busy_until[a as usize] = SimTime::from_secs(30);
        world.insts.release(InstanceId(0));
        assert_eq!(world.insts.get(InstanceId(0)), None);
        // The recycled slot comes back clean for the next instance.
        let c = world.insts.ensure(InstanceId(7));
        assert_eq!(c, a);
        assert_eq!(world.insts.straggle[c as usize], 1.0);
        assert_eq!(world.insts.busy_until[c as usize], SimTime::ZERO);
        assert_eq!(world.insts.ids[c as usize], InstanceId(7));
        world.audit().unwrap();
    }

    #[test]
    fn active_set_tracks_arrival_and_retirement_in_id_order() {
        let trace = SyntheticTraceConfig::small_scale().generate(3);
        let mut world = WorldArena::from_trace(&trace);
        world.jobs.activate(5);
        world.jobs.activate(1);
        world.jobs.activate(3);
        assert_eq!(world.jobs.active, vec![1, 3, 5]);
        world.jobs.retire(3);
        assert_eq!(world.jobs.active, vec![1, 5]);
        world.jobs.activate(1); // double-activation is idempotent
        assert_eq!(world.jobs.active, vec![1, 5]);
    }

    #[test]
    fn arena_advance_matches_reference_job_progress() {
        use crate::state::JobProgress;
        let trace = SyntheticTraceConfig::small_scale().generate(9);
        let mut world = WorldArena::from_trace(&trace);
        let spec = trace.jobs()[0].clone();
        let slot = world.slot_of_spec[0];
        let mut reference = JobProgress::new(spec);
        for (dt, tput) in [(0.25, 1.0), (0.5, 0.0), (1.0, 0.8), (4.0, 1.0)] {
            reference.advance(dt, tput);
            world.jobs.advance(slot, dt, tput);
        }
        let s = slot as usize;
        assert_eq!(world.jobs.remaining_hours[s], reference.remaining_hours);
        assert_eq!(world.jobs.executing_hours[s], reference.executing_hours);
        assert_eq!(world.jobs.idle_hours[s], reference.idle_hours);
        assert_eq!(world.jobs.tput_integral[s], reference.tput_integral);
        assert_eq!(world.jobs.mean_tput(slot), reference.mean_tput());
    }
}
