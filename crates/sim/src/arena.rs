//! Dense arena-indexed, structure-of-arrays world state.
//!
//! The world model used to key every per-event touch of job/task/instance
//! state through `BTreeMap` lookups — O(log n) pointer-chasing on the
//! hottest path in the repo. IDs are newtyped integers, so instead the
//! world interns them into contiguous `u32` slots at construction:
//!
//! * **job slots** are assigned in ascending [`JobId`] order, so walking
//!   `0..len` visits jobs exactly as the old `BTreeMap<JobId, _>`
//!   iteration did — float accumulation order (and therefore report
//!   bytes) is preserved;
//! * **task slots** are job-major and ascending by [`TaskId`] within a
//!   job, so each job's tasks form one contiguous slot range and a
//!   sorted task-slot list is sorted by `TaskId`;
//! * **instance slots** are allocated when the provider provisions and
//!   recycled through a free list when instances retire — per-instance
//!   state (mapped tasks, busy-until, straggle factor) lives in parallel
//!   `Vec`s indexed by slot, with a dense `InstanceId → slot` table on
//!   the side (provider IDs are sequential);
//! * **job slots recycle too** when retirement is enabled: a completed
//!   job folds its report contribution into the host's completed-job
//!   log, releases its task range, and returns its slot through
//!   [`JobArena::release`] — the same free-list discipline as
//!   instances — so a long-lived streaming world holds state for the
//!   in-flight window only, not for every job ever ingested. Streaming
//!   worlds intern jobs out of ID order as they arrive
//!   ([`WorldArena::intern_job`]), so they carry side `BTreeMap`
//!   lookups in place of the sorted-lane binary search, and the active
//!   set orders by *ID* (identical to slot order whenever slots were
//!   interned in ID order, which keeps batch bytes unchanged).
//!
//! Dynamic state is stored as structure-of-arrays `Vec`s: the per-event
//! integration loop touches `remaining_hours`/`tput_integral`/… as flat
//! `f64` lanes instead of chasing map nodes. Job and task *specs* are
//! never cloned — slots carry indices into the shared trace, so a
//! million-job world costs a few flat vectors, not a second copy of the
//! trace.
//!
//! The reference semantics of a single job/task (advance arithmetic,
//! lifecycle states) remain specified — and unit-tested — by
//! [`crate::state`]; the arena stores the same quantities in SoA form
//! and must evolve them identically. `tests/arena_parity.rs` pins the
//! end-to-end equivalence byte-for-byte against a pre-arena golden.
//!
//! # Dirty-set invariants (the O(changed) hot loop)
//!
//! Jobs advance *lazily*: every clock segment the simulation crosses is
//! appended to a global log ([`JobArena::push_segment`]), and a job's
//! progress lanes are only brought current ([`JobArena::settle`]) when
//! something actually reads or perturbs them. Settling replays the
//! logged segments one at a time through [`JobArena::advance`] at the
//! job's cached `rate`, so the float-operation sequence — and therefore
//! every report byte — is identical to the old advance-everyone-every-
//! event loop. The machinery is sound iff the host (`ClusterSim`)
//! upholds, and `audit()` checks, these invariants:
//!
//! 1. **Dirty before different.** Any event that can change a job's
//!    effective throughput (task placement/readiness, straggler factor,
//!    co-location set, fault surgery on `remaining_hours`) marks the
//!    job dirty *within that event*, before the next segment is pushed.
//!    [`JobArena::mark_dirty`] settles the job first, so all logged
//!    segments are replayed at the rate that actually prevailed.
//! 2. **Recompute drains.** Every event that marks jobs dirty ends by
//!    draining the dirty list (`recompute_completions`), refreshing
//!    each dirty job's cached `rate` and completion event. Hence at
//!    every segment boundary the dirty list is empty and every cached
//!    rate is current — `advance_to` never needs to settle anything.
//! 3. **Cursor bounds.** `settled[j] <= seg_log.len()` for every active
//!    job; done jobs may hold stale cursors (their lanes are frozen —
//!    `advance` ignores them), and not-yet-arrived jobs get their
//!    cursor pinned to the log head at activation.
//! 4. **Flags mirror the list.** `dirty[j]` ⇔ `j ∈ dirty_list`, and
//!    only arrived, not-done jobs are ever flagged.
//!
//! `ClusterSim::audit_slots` extends this with the incremental-integral
//! invariant: the maintained capacity/allocation/running-task *rates*
//! must equal a from-scratch scan of the live instance set, bit for bit
//! (all components are integer-valued, so summation order cannot
//! introduce drift).

use std::collections::BTreeMap;

use eva_types::{InstanceId, JobId, JobSpec, SimTime, TaskId, WorkloadKind};
use eva_workloads::Trace;

use crate::state::TaskState;

/// Sentinel for "no slot" in `u32` slot references.
pub(crate) const NO_SLOT: u32 = u32::MAX;

/// Job state, slot-indexed in ascending [`JobId`] order.
#[derive(Debug)]
pub(crate) struct JobArena {
    /// Slot → job ID (ascending when interned from a trace; streaming
    /// worlds recycle slots and rely on [`Self::lookup`] instead).
    pub ids: Vec<JobId>,
    /// Slot → index of the job's spec in the trace's job vector
    /// ([`NO_SLOT`] for streamed jobs, whose specs live in
    /// [`Self::owned`]).
    pub spec_idx: Vec<u32>,
    /// Slot → first task slot of the job's contiguous task range.
    pub task_start: Vec<u32>,
    /// Slot → length of the job's task range.
    pub task_count: Vec<u32>,
    /// Owned specs for jobs interned from a stream (batch worlds leave
    /// this empty and index the shared trace through `spec_idx`).
    /// Boxed so releasing a slot actually reclaims the spec's memory.
    pub owned: Vec<Option<Box<JobSpec>>>,
    /// Total work in full-throughput hours (the spec duration, cached).
    pub total_hours: Vec<f64>,
    /// Remaining work in full-throughput hours.
    pub remaining_hours: Vec<f64>,
    /// Accumulated wall-clock hours executing.
    pub executing_hours: Vec<f64>,
    /// Accumulated wall-clock hours present but not executing.
    pub idle_hours: Vec<f64>,
    /// Integral of throughput over executing time.
    pub tput_integral: Vec<f64>,
    /// Completion time, once done.
    pub completed_at: Vec<Option<SimTime>>,
    /// Stamp invalidating stale completion events.
    pub completion_gen: Vec<u64>,
    /// Whether the job's arrival event has fired.
    pub arrived: Vec<bool>,
    /// Arrived-and-not-done job slots, kept sorted (ascending slot ==
    /// ascending `JobId`): the iteration set of every per-event loop,
    /// so done and not-yet-arrived jobs cost nothing per event.
    pub active: Vec<u32>,
    /// Cached effective throughput, refreshed whenever the job is
    /// recomputed (dirty-set invariant 2 in the module docs).
    pub rate: Vec<f64>,
    /// Per-job cursor into [`Self::seg_log`]: segments below it are
    /// already folded into the job's progress lanes.
    pub settled: Vec<u32>,
    /// Dirty flag, mirroring membership in [`Self::dirty_list`].
    pub dirty: Vec<bool>,
    /// Jobs marked dirty since the last recompute drain.
    pub dirty_list: Vec<u32>,
    /// Due time of the job's outstanding completion event (`None` when
    /// none is scheduled), letting recompute skip re-pushing an event
    /// that would land at the same instant.
    pub scheduled_done_at: Vec<Option<SimTime>>,
    /// Global log of clock segments (dt in hours) since the last
    /// [`Self::settle_active_and_reset`] point.
    pub seg_log: Vec<f64>,
    /// Slots returned through [`Self::release`]: their lanes are reset
    /// and their stale IDs are excluded from audits until reuse.
    pub released: Vec<bool>,
    /// Recycled job slots awaiting reuse (mirrors the instance arena's
    /// free list).
    pub free: Vec<u32>,
    /// `JobId → slot` map, maintained only for streaming worlds where
    /// slot recycling breaks the sorted-lane binary search.
    pub lookup: Option<BTreeMap<JobId, u32>>,
}

impl JobArena {
    /// Slot of `id`, if the world currently holds it.
    pub fn slot_of(&self, id: JobId) -> Option<u32> {
        match &self.lookup {
            Some(map) => map.get(&id).copied(),
            None => self.ids.binary_search(&id).ok().map(|s| s as u32),
        }
    }

    /// True once the job has no work left.
    pub fn is_done(&self, slot: u32) -> bool {
        self.completed_at[slot as usize].is_some()
    }

    /// The job's contiguous task-slot range.
    pub fn task_range(&self, slot: u32) -> std::ops::Range<usize> {
        let start = self.task_start[slot as usize] as usize;
        start..start + self.task_count[slot as usize] as usize
    }

    /// Position of `slot` in the ID-ordered active set (`Ok` when
    /// listed). Ordering by ID keeps iteration — and therefore float
    /// accumulation — in `JobId` order even when recycled slots are
    /// interned out of order; with trace interning, slot order *is* ID
    /// order and this degenerates to the old slot-ordered search.
    fn active_pos(&self, slot: u32) -> Result<usize, usize> {
        let key = self.ids[slot as usize];
        let ids = &self.ids;
        self.active
            .binary_search_by(|&x| ids[x as usize].cmp(&key).then(x.cmp(&slot)))
    }

    /// Marks the job arrived and inserts it into the active set. The
    /// settle cursor pins to the log head: segments before arrival
    /// never touch this job.
    pub fn activate(&mut self, slot: u32) {
        self.arrived[slot as usize] = true;
        self.settled[slot as usize] = self.seg_log.len() as u32;
        if let Err(pos) = self.active_pos(slot) {
            self.active.insert(pos, slot);
        }
    }

    /// Removes a completed job from the active set.
    pub fn retire(&mut self, slot: u32) {
        if let Ok(pos) = self.active_pos(slot) {
            self.active.remove(pos);
        }
    }

    /// Returns a completed, already-retired job's slot to the free
    /// list, resetting every dynamic lane so it recycles clean. The
    /// caller must have folded the job's report contribution first —
    /// after release the lanes carry nothing. `completion_gen` stays
    /// monotone across recycling so stale completion events can never
    /// validate against a reused slot.
    pub fn release(&mut self, slot: u32) {
        let s = slot as usize;
        debug_assert!(self.completed_at[s].is_some(), "releasing an unfinished job");
        debug_assert!(!self.dirty[s], "releasing a dirty job");
        debug_assert!(self.active_pos(slot).is_err(), "releasing an active job");
        if let Some(map) = self.lookup.as_mut() {
            map.remove(&self.ids[s]);
        }
        self.arrived[s] = false;
        self.completed_at[s] = None;
        self.scheduled_done_at[s] = None;
        self.total_hours[s] = 0.0;
        self.remaining_hours[s] = 0.0;
        self.executing_hours[s] = 0.0;
        self.idle_hours[s] = 0.0;
        self.tput_integral[s] = 0.0;
        self.rate[s] = 0.0;
        self.settled[s] = 0;
        if let Some(spec) = self.owned.get_mut(s) {
            *spec = None;
        }
        self.released[s] = true;
        self.free.push(slot);
    }

    /// Advances the job by `dt_hours` at effective throughput `tput` —
    /// the SoA form of [`crate::state::JobProgress::advance`], operation
    /// for operation.
    pub fn advance(&mut self, slot: u32, dt_hours: f64, tput: f64) {
        let s = slot as usize;
        if self.completed_at[s].is_some() || dt_hours <= 0.0 {
            return;
        }
        if tput > 0.0 {
            self.remaining_hours[s] = (self.remaining_hours[s] - dt_hours * tput).max(0.0);
            self.executing_hours[s] += dt_hours;
            self.tput_integral[s] += dt_hours * tput;
        } else {
            self.idle_hours[s] += dt_hours;
        }
    }

    /// Hours until completion at throughput `tput`, if it is positive
    /// (see [`crate::state::JobProgress::eta_hours`]).
    pub fn eta_hours(&self, slot: u32, tput: f64) -> Option<f64> {
        let s = slot as usize;
        if self.completed_at[s].is_some() || tput <= 0.0 {
            None
        } else {
            Some(self.remaining_hours[s] / tput)
        }
    }

    /// Average normalized throughput while executing (see
    /// [`crate::state::JobProgress::mean_tput`]).
    pub fn mean_tput(&self, slot: u32) -> f64 {
        let s = slot as usize;
        if self.executing_hours[s] <= 0.0 {
            1.0
        } else {
            self.tput_integral[s] / self.executing_hours[s]
        }
    }

    /// Appends a clock segment to the global log (jobs fold it in
    /// lazily when settled).
    pub fn push_segment(&mut self, dt_hours: f64) {
        self.seg_log.push(dt_hours);
    }

    /// Replays every unseen logged segment into the job's progress
    /// lanes at its cached rate — segment by segment, so the float
    /// operations match the eager per-event advance exactly.
    pub fn settle(&mut self, slot: u32) {
        let s = slot as usize;
        let from = self.settled[s] as usize;
        let rate = self.rate[s];
        for k in from..self.seg_log.len() {
            let dt = self.seg_log[k];
            self.advance(slot, dt, rate);
        }
        self.settled[s] = self.seg_log.len() as u32;
    }

    /// Settles every active job and truncates the segment log (their
    /// cursors reset with it). Called at points that read all progress
    /// anyway (scheduler rounds, finalize), bounding replay length.
    pub fn settle_active_and_reset(&mut self) {
        for i in 0..self.active.len() {
            let slot = self.active[i];
            self.settle(slot);
            self.settled[slot as usize] = 0;
        }
        self.seg_log.clear();
    }

    /// Flags an active job whose effective throughput may have changed,
    /// settling its lanes first so the pending segments replay at the
    /// rate that actually prevailed (dirty-set invariant 1).
    pub fn mark_dirty(&mut self, slot: u32) {
        let s = slot as usize;
        if !self.arrived[s] || self.completed_at[s].is_some() || self.dirty[s] {
            return;
        }
        self.settle(slot);
        self.dirty[s] = true;
        self.dirty_list.push(slot);
    }
}

/// Task state, slot-indexed job-major in ascending [`TaskId`] order.
#[derive(Debug)]
pub(crate) struct TaskArena {
    /// Slot → task ID (ascending; slot order is ID order).
    pub ids: Vec<TaskId>,
    /// Slot → owning job's slot.
    pub job_slot: Vec<u32>,
    /// Slot → the task's position in its job spec's task vector.
    pub spec_pos: Vec<u32>,
    /// Slot → workload kind (cached from the spec for the tput loop).
    pub workload: Vec<WorkloadKind>,
    /// Lifecycle state.
    pub state: Vec<TaskState>,
    /// Target instance slot ([`NO_SLOT`] when unplaced).
    pub assigned: Vec<u32>,
    /// Migrations performed so far.
    pub migrations: Vec<u32>,
    /// Monotonic transfer generation (invalidates superseded readiness).
    pub gen: Vec<u64>,
    /// Spec-order lookup: the slot of job `j`'s `pos`-th spec task is
    /// `slot_by_pos[task_start[j] + pos]` (identity whenever spec tasks
    /// are declared in index order, which every generator does).
    pub slot_by_pos: Vec<u32>,
    /// `TaskId → slot` map, maintained only for streaming worlds (see
    /// [`JobArena::lookup`]).
    pub lookup: Option<BTreeMap<TaskId, u32>>,
    /// Released task ranges awaiting exact-fit reuse: range length →
    /// start slots. Jobs release their whole contiguous range at once,
    /// so recycling preserves the job-major contiguity invariant.
    pub free_ranges: BTreeMap<u32, Vec<u32>>,
}

impl TaskArena {
    /// Slot of `id`, if the world currently holds it.
    pub fn slot_of(&self, id: TaskId) -> Option<u32> {
        match &self.lookup {
            Some(map) => map.get(&id).copied(),
            None => self.ids.binary_search(&id).ok().map(|s| s as u32),
        }
    }

    /// True when the task currently computes (and therefore interferes).
    pub fn is_running(&self, slot: u32) -> bool {
        self.state[slot as usize] == TaskState::Running
    }
}

/// Instance state, slot-indexed with a free list: slots recycle as the
/// provider churns through spot instances.
#[derive(Debug, Default)]
pub(crate) struct InstArena {
    /// Dense `InstanceId → slot` table (provider IDs are sequential);
    /// [`NO_SLOT`] when the instance holds no slot (never provisioned,
    /// or already released).
    slot_by_id: Vec<u32>,
    /// Slot → instance ID (meaningful only while the slot is live).
    pub ids: Vec<InstanceId>,
    /// Slot → mapped task slots, kept sorted (ascending task slot ==
    /// ascending `TaskId`, preserving co-location iteration order).
    pub tasks: Vec<Vec<u32>>,
    /// Slot → departure-checkpoint barrier ([`SimTime::ZERO`] = unset).
    pub busy_until: Vec<SimTime>,
    /// Slot → straggler slowdown factor (1.0 = unafflicted).
    pub straggle: Vec<f64>,
    /// Recycled slots awaiting reuse.
    free: Vec<u32>,
}

impl InstArena {
    /// Live slot of `id`, if it holds one.
    pub fn get(&self, id: InstanceId) -> Option<u32> {
        match self.slot_by_id.get(id.0 as usize) {
            Some(&s) if s != NO_SLOT => Some(s),
            _ => None,
        }
    }

    /// Returns `id`'s slot, allocating (or recycling) one if needed.
    pub fn ensure(&mut self, id: InstanceId) -> u32 {
        if let Some(s) = self.get(id) {
            return s;
        }
        let idx = id.0 as usize;
        if idx >= self.slot_by_id.len() {
            self.slot_by_id.resize(idx + 1, NO_SLOT);
        }
        let slot = match self.free.pop() {
            Some(s) => {
                self.ids[s as usize] = id;
                debug_assert!(self.tasks[s as usize].is_empty());
                debug_assert_eq!(self.busy_until[s as usize], SimTime::ZERO);
                debug_assert_eq!(self.straggle[s as usize], 1.0);
                s
            }
            None => {
                let s = self.ids.len() as u32;
                self.ids.push(id);
                self.tasks.push(Vec::new());
                self.busy_until.push(SimTime::ZERO);
                self.straggle.push(1.0);
                s
            }
        };
        self.slot_by_id[idx] = slot;
        slot
    }

    /// Releases `id`'s slot back to the free list, resetting its state.
    pub fn release(&mut self, id: InstanceId) {
        let Some(slot) = self.get(id) else {
            return;
        };
        self.slot_by_id[id.0 as usize] = NO_SLOT;
        self.tasks[slot as usize].clear();
        self.busy_until[slot as usize] = SimTime::ZERO;
        self.straggle[slot as usize] = 1.0;
        self.free.push(slot);
    }

    /// Maps a task slot onto an instance slot (sorted insert); returns
    /// whether the mapping was actually added, so callers can keep the
    /// incremental allocation rates in lockstep.
    pub fn attach(&mut self, slot: u32, task: u32) -> bool {
        let list = &mut self.tasks[slot as usize];
        match list.binary_search(&task) {
            Err(pos) => {
                list.insert(pos, task);
                true
            }
            Ok(_) => false,
        }
    }

    /// Unmaps a task slot from an instance slot; returns whether the
    /// mapping was actually removed.
    pub fn detach(&mut self, slot: u32, task: u32) -> bool {
        let list = &mut self.tasks[slot as usize];
        match list.binary_search(&task) {
            Ok(pos) => {
                list.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Slots currently live (mapped from an ID).
    pub fn live_slots(&self) -> impl Iterator<Item = u32> + '_ {
        self.slot_by_id.iter().copied().filter(|&s| s != NO_SLOT)
    }

    /// Size of the `InstanceId → slot` table (grows with the largest
    /// provider ID ever seen, 4 bytes per ID).
    pub fn id_space(&self) -> usize {
        self.slot_by_id.len()
    }
}

/// The complete interned world state: jobs + tasks + instances.
#[derive(Debug)]
pub(crate) struct WorldArena {
    pub jobs: JobArena,
    pub tasks: TaskArena,
    pub insts: InstArena,
    /// Trace job index → job slot (arrival events carry trace indices).
    pub slot_of_spec: Vec<u32>,
}

impl WorldArena {
    /// Element counts of every growable structure, for memory
    /// diagnosis (the streaming tiers must keep all of these bounded
    /// by the in-flight window, not total jobs ingested).
    #[doc(hidden)]
    pub fn dims(&self) -> String {
        let task_free: usize = self
            .tasks
            .free_ranges
            .values()
            .map(|starts| starts.len())
            .sum();
        format!(
            "job_rows={} job_free={} job_lookup={} task_rows={} task_free_ranges={} \
             task_lookup={} inst_rows={} inst_id_space={} seg_log={} slot_of_spec={}",
            self.jobs.ids.len(),
            self.jobs.free.len(),
            self.jobs.lookup.as_ref().map_or(0, |m| m.len()),
            self.tasks.ids.len(),
            task_free,
            self.tasks.lookup.as_ref().map_or(0, |m| m.len()),
            self.insts.ids.len(),
            self.insts.id_space(),
            self.jobs.seg_log.len(),
            self.slot_of_spec.len(),
        )
    }

    /// Interns every job and task ID of `trace` into slots. All dynamic
    /// state starts at its pre-arrival default; instances intern lazily
    /// as the provider provisions them.
    pub fn from_trace(trace: &Trace) -> Self {
        let specs = trace.jobs();
        let n = specs.len();
        let total_tasks: usize = specs.iter().map(|j| j.tasks.len()).sum();

        // Job slots in ascending JobId order (the trace is arrival-
        // ordered, which usually — but not necessarily — coincides).
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by_key(|&i| specs[i as usize].id);

        let mut jobs = JobArena {
            ids: Vec::with_capacity(n),
            spec_idx: Vec::with_capacity(n),
            task_start: Vec::with_capacity(n),
            task_count: Vec::with_capacity(n),
            owned: Vec::new(),
            total_hours: Vec::with_capacity(n),
            remaining_hours: Vec::with_capacity(n),
            executing_hours: vec![0.0; n],
            idle_hours: vec![0.0; n],
            tput_integral: vec![0.0; n],
            completed_at: vec![None; n],
            completion_gen: vec![0; n],
            arrived: vec![false; n],
            active: Vec::new(),
            rate: vec![0.0; n],
            settled: vec![0; n],
            dirty: vec![false; n],
            dirty_list: Vec::new(),
            scheduled_done_at: vec![None; n],
            seg_log: Vec::new(),
            released: vec![false; n],
            free: Vec::new(),
            lookup: None,
        };
        let mut tasks = TaskArena {
            ids: Vec::with_capacity(total_tasks),
            job_slot: Vec::with_capacity(total_tasks),
            spec_pos: Vec::with_capacity(total_tasks),
            workload: Vec::with_capacity(total_tasks),
            state: vec![TaskState::Pending; total_tasks],
            assigned: vec![NO_SLOT; total_tasks],
            migrations: vec![0; total_tasks],
            gen: vec![0; total_tasks],
            slot_by_pos: vec![0; total_tasks],
            lookup: None,
            free_ranges: BTreeMap::new(),
        };
        let mut slot_of_spec = vec![0u32; n];

        for (slot, &si) in order.iter().enumerate() {
            let spec = &specs[si as usize];
            debug_assert!(
                jobs.ids.last().is_none_or(|last| *last < spec.id),
                "duplicate job id {} in trace",
                spec.id
            );
            slot_of_spec[si as usize] = slot as u32;
            jobs.ids.push(spec.id);
            jobs.spec_idx.push(si);
            jobs.task_start.push(tasks.ids.len() as u32);
            jobs.task_count.push(spec.tasks.len() as u32);
            let total = spec.duration_at_full_tput.as_hours_f64();
            jobs.total_hours.push(total);
            jobs.remaining_hours.push(total);

            // Task slots ascending by TaskId within the job (generators
            // declare tasks in index order, but don't assume it).
            let base = tasks.ids.len() as u32;
            let mut positions: Vec<u32> = (0..spec.tasks.len() as u32).collect();
            positions.sort_by_key(|&p| spec.tasks[p as usize].id);
            for (k, &pos) in positions.iter().enumerate() {
                let t = &spec.tasks[pos as usize];
                debug_assert_eq!(t.id.job, spec.id, "task under foreign job");
                let tslot = base + k as u32;
                tasks.ids.push(t.id);
                tasks.job_slot.push(slot as u32);
                tasks.spec_pos.push(pos);
                tasks.workload.push(t.workload);
                tasks.slot_by_pos[(base + pos) as usize] = tslot;
            }
        }
        debug_assert!(tasks.ids.windows(2).all(|w| w[0] < w[1]));

        WorldArena {
            jobs,
            tasks,
            insts: InstArena::default(),
            slot_of_spec,
        }
    }

    /// Switches the world to streaming mode: job and task ID lookups go
    /// through side maps (slot recycling breaks the sorted-lane binary
    /// search) and [`Self::intern_job`] becomes legal. Call before any
    /// streamed intern; existing slots seed the maps.
    pub fn enable_streaming(&mut self) {
        self.jobs.lookup = Some(
            self.jobs
                .ids
                .iter()
                .enumerate()
                .map(|(s, &id)| (id, s as u32))
                .collect(),
        );
        self.tasks.lookup = Some(
            self.tasks
                .ids
                .iter()
                .enumerate()
                .map(|(s, &id)| (id, s as u32))
                .collect(),
        );
    }

    /// Interns one streamed job, recycling a released job slot and an
    /// exact-fit released task range when available, appending fresh
    /// lanes otherwise. The spec is owned by the slot (released with
    /// it); all dynamic state starts at its pre-arrival default.
    /// Requires [`Self::enable_streaming`].
    pub fn intern_job(&mut self, spec: JobSpec) -> u32 {
        debug_assert!(self.jobs.lookup.is_some(), "streaming intern without lookup maps");
        let n_tasks = spec.tasks.len() as u32;
        let jobs = &mut self.jobs;
        let jslot = match jobs.free.pop() {
            Some(s) => {
                debug_assert!(jobs.released[s as usize]);
                jobs.released[s as usize] = false;
                s
            }
            None => {
                let s = jobs.ids.len() as u32;
                jobs.ids.push(spec.id);
                jobs.spec_idx.push(NO_SLOT);
                jobs.task_start.push(0);
                jobs.task_count.push(0);
                jobs.total_hours.push(0.0);
                jobs.remaining_hours.push(0.0);
                jobs.executing_hours.push(0.0);
                jobs.idle_hours.push(0.0);
                jobs.tput_integral.push(0.0);
                jobs.completed_at.push(None);
                jobs.completion_gen.push(0);
                jobs.arrived.push(false);
                jobs.rate.push(0.0);
                jobs.settled.push(0);
                jobs.dirty.push(false);
                jobs.scheduled_done_at.push(None);
                jobs.released.push(false);
                s
            }
        };
        while jobs.owned.len() <= jslot as usize {
            jobs.owned.push(None);
        }
        let base = match self
            .tasks
            .free_ranges
            .get_mut(&n_tasks)
            .and_then(|starts| starts.pop())
        {
            Some(b) => b,
            None => {
                let b = self.tasks.ids.len() as u32;
                for _ in 0..n_tasks {
                    self.tasks.ids.push(TaskId::new(spec.id, 0));
                    self.tasks.job_slot.push(jslot);
                    self.tasks.spec_pos.push(0);
                    self.tasks.workload.push(WorkloadKind(0));
                    self.tasks.state.push(TaskState::Pending);
                    self.tasks.assigned.push(NO_SLOT);
                    self.tasks.migrations.push(0);
                    self.tasks.gen.push(0);
                    self.tasks.slot_by_pos.push(0);
                }
                b
            }
        };

        let js = jslot as usize;
        jobs.ids[js] = spec.id;
        jobs.spec_idx[js] = NO_SLOT;
        jobs.task_start[js] = base;
        jobs.task_count[js] = n_tasks;
        let total = spec.duration_at_full_tput.as_hours_f64();
        jobs.total_hours[js] = total;
        jobs.remaining_hours[js] = total;
        if let Some(map) = jobs.lookup.as_mut() {
            let prev = map.insert(spec.id, jslot);
            debug_assert!(prev.is_none(), "duplicate streamed job id {}", spec.id);
        }

        // Task slots ascending by TaskId within the job, as in
        // `from_trace`.
        let mut positions: Vec<u32> = (0..n_tasks).collect();
        positions.sort_by_key(|&p| spec.tasks[p as usize].id);
        for (k, &pos) in positions.iter().enumerate() {
            let t = &spec.tasks[pos as usize];
            debug_assert_eq!(t.id.job, spec.id, "task under foreign job");
            let tslot = base + k as u32;
            let ts = tslot as usize;
            self.tasks.ids[ts] = t.id;
            self.tasks.job_slot[ts] = jslot;
            self.tasks.spec_pos[ts] = pos;
            self.tasks.workload[ts] = t.workload;
            self.tasks.state[ts] = TaskState::Pending;
            self.tasks.assigned[ts] = NO_SLOT;
            self.tasks.migrations[ts] = 0;
            self.tasks.slot_by_pos[(base + pos) as usize] = tslot;
            if let Some(map) = self.tasks.lookup.as_mut() {
                map.insert(t.id, tslot);
            }
        }
        jobs.owned[js] = Some(Box::new(spec));
        jslot
    }

    /// Releases a completed job's task range and job slot back to their
    /// free lists. The caller must have recorded the job's report
    /// contribution and detached every task already (completion does
    /// both).
    pub fn release_job(&mut self, jslot: u32) {
        let range = self.jobs.task_range(jslot);
        let (base, len) = (range.start as u32, range.len() as u32);
        for t in range {
            debug_assert_eq!(self.tasks.assigned[t], NO_SLOT, "releasing a mapped task");
            self.tasks.state[t] = TaskState::Pending;
            self.tasks.migrations[t] = 0;
            // `gen` stays monotone so stale readiness events can never
            // validate against a recycled task slot.
            if let Some(map) = self.tasks.lookup.as_mut() {
                map.remove(&self.tasks.ids[t]);
            }
        }
        if len > 0 {
            self.tasks.free_ranges.entry(len).or_default().push(base);
        }
        self.jobs.release(jslot);
    }

    /// Verifies every slot↔ID round trip and cross-reference; returns a
    /// description of the first violation. Backs the public
    /// `ClusterSim::audit_slots` test hook.
    pub fn audit(&self) -> Result<(), String> {
        for (slot, &id) in self.jobs.ids.iter().enumerate() {
            if self.jobs.released[slot] {
                // Released slots hold stale IDs; they must read as inert
                // until reuse.
                if self.jobs.arrived[slot]
                    || self.jobs.completed_at[slot].is_some()
                    || self.jobs.dirty[slot]
                {
                    return Err(format!("released job slot {slot} is not inert"));
                }
                continue;
            }
            if self.jobs.slot_of(id) != Some(slot as u32) {
                return Err(format!("job {id} does not round-trip slot {slot}"));
            }
        }
        for slot in 0..self.jobs.ids.len() as u32 {
            let should = self.jobs.arrived[slot as usize] && !self.jobs.is_done(slot);
            let listed = self.jobs.active_pos(slot).is_ok();
            if should != listed {
                return Err(format!(
                    "job {} active-set membership {listed} (expected {should})",
                    self.jobs.ids[slot as usize]
                ));
            }
        }
        // Dirty-set invariants 3 and 4 (module docs): flags mirror the
        // list, only active jobs are flagged, and no active cursor runs
        // past the segment log.
        let mut flagged = 0usize;
        for slot in 0..self.jobs.ids.len() as u32 {
            if self.jobs.dirty[slot as usize] {
                flagged += 1;
                if !self.jobs.arrived[slot as usize] || self.jobs.is_done(slot) {
                    return Err(format!(
                        "inactive job {} is flagged dirty",
                        self.jobs.ids[slot as usize]
                    ));
                }
            }
        }
        for &slot in &self.jobs.dirty_list {
            if !self.jobs.dirty[slot as usize] {
                return Err(format!(
                    "dirty list holds unflagged job {}",
                    self.jobs.ids[slot as usize]
                ));
            }
        }
        if self.jobs.dirty_list.len() != flagged {
            return Err(format!(
                "dirty list length {} != {} flagged jobs",
                self.jobs.dirty_list.len(),
                flagged
            ));
        }
        if !self
            .jobs
            .active
            .windows(2)
            .all(|w| self.jobs.ids[w[0] as usize] < self.jobs.ids[w[1] as usize])
        {
            return Err("active set out of JobId order".to_string());
        }
        for &slot in &self.jobs.active {
            if self.jobs.settled[slot as usize] as usize > self.jobs.seg_log.len() {
                return Err(format!(
                    "job {} settle cursor past the segment log",
                    self.jobs.ids[slot as usize]
                ));
            }
        }
        // Free task ranges hold stale IDs and back-references; skip them
        // (audits run in tests, so the scan cost is fine).
        let mut task_free = vec![false; self.tasks.ids.len()];
        for (&len, starts) in &self.tasks.free_ranges {
            for &base in starts {
                for t in base..base + len {
                    task_free[t as usize] = true;
                }
            }
        }
        for (slot, &id) in self.tasks.ids.iter().enumerate() {
            if task_free[slot] {
                continue;
            }
            if self.tasks.slot_of(id) != Some(slot as u32) {
                return Err(format!("task {id} does not round-trip slot {slot}"));
            }
            let jslot = self.tasks.job_slot[slot];
            if self.jobs.ids[jslot as usize] != id.job {
                return Err(format!("task {id} points at job slot {jslot}"));
            }
            if !self.jobs.task_range(jslot).contains(&slot) {
                return Err(format!("task {id} outside its job's slot range"));
            }
            let inst = self.tasks.assigned[slot];
            if inst != NO_SLOT {
                let mapped = self.insts.tasks[inst as usize].binary_search(&(slot as u32));
                let done = self.tasks.state[slot] == TaskState::Done;
                if mapped.is_err() && !done {
                    return Err(format!("task {id} assigned to slot {inst} but unmapped"));
                }
            }
        }
        for slot in self.insts.live_slots() {
            let id = self.insts.ids[slot as usize];
            if self.insts.get(id) != Some(slot) {
                return Err(format!("instance {id} does not round-trip slot {slot}"));
            }
            let list = &self.insts.tasks[slot as usize];
            if !list.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("instance {id} task list unsorted"));
            }
            for &t in list {
                if self.tasks.assigned[t as usize] != slot {
                    return Err(format!(
                        "instance {id} maps task slot {t} assigned elsewhere"
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_workloads::SyntheticTraceConfig;

    #[test]
    fn interning_orders_slots_by_id() {
        let trace = SyntheticTraceConfig::small_scale().generate(42);
        let world = WorldArena::from_trace(&trace);
        assert_eq!(world.jobs.ids.len(), trace.len());
        assert!(world.jobs.ids.windows(2).all(|w| w[0] < w[1]));
        assert!(world.tasks.ids.windows(2).all(|w| w[0] < w[1]));
        // Every trace index round-trips through its slot.
        for (idx, spec) in trace.jobs().iter().enumerate() {
            let slot = world.slot_of_spec[idx];
            assert_eq!(world.jobs.ids[slot as usize], spec.id);
            assert_eq!(world.jobs.spec_idx[slot as usize] as usize, idx);
            assert_eq!(world.jobs.task_range(slot).len(), spec.tasks.len());
        }
        world.audit().unwrap();
    }

    #[test]
    fn instance_slots_recycle_through_free_list() {
        let trace = SyntheticTraceConfig::small_scale().generate(1);
        let mut world = WorldArena::from_trace(&trace);
        let a = world.insts.ensure(InstanceId(0));
        let b = world.insts.ensure(InstanceId(1));
        assert_ne!(a, b);
        assert_eq!(world.insts.ensure(InstanceId(0)), a, "idempotent");
        world.insts.straggle[a as usize] = 0.5;
        world.insts.busy_until[a as usize] = SimTime::from_secs(30);
        world.insts.release(InstanceId(0));
        assert_eq!(world.insts.get(InstanceId(0)), None);
        // The recycled slot comes back clean for the next instance.
        let c = world.insts.ensure(InstanceId(7));
        assert_eq!(c, a);
        assert_eq!(world.insts.straggle[c as usize], 1.0);
        assert_eq!(world.insts.busy_until[c as usize], SimTime::ZERO);
        assert_eq!(world.insts.ids[c as usize], InstanceId(7));
        world.audit().unwrap();
    }

    #[test]
    fn active_set_tracks_arrival_and_retirement_in_id_order() {
        let trace = SyntheticTraceConfig::small_scale().generate(3);
        let mut world = WorldArena::from_trace(&trace);
        world.jobs.activate(5);
        world.jobs.activate(1);
        world.jobs.activate(3);
        assert_eq!(world.jobs.active, vec![1, 3, 5]);
        world.jobs.retire(3);
        assert_eq!(world.jobs.active, vec![1, 5]);
        world.jobs.activate(1); // double-activation is idempotent
        assert_eq!(world.jobs.active, vec![1, 5]);
    }

    #[test]
    fn arena_advance_matches_reference_job_progress() {
        use crate::state::JobProgress;
        let trace = SyntheticTraceConfig::small_scale().generate(9);
        let mut world = WorldArena::from_trace(&trace);
        let spec = trace.jobs()[0].clone();
        let slot = world.slot_of_spec[0];
        let mut reference = JobProgress::new(spec);
        for (dt, tput) in [(0.25, 1.0), (0.5, 0.0), (1.0, 0.8), (4.0, 1.0)] {
            reference.advance(dt, tput);
            world.jobs.advance(slot, dt, tput);
        }
        let s = slot as usize;
        assert_eq!(world.jobs.remaining_hours[s], reference.remaining_hours);
        assert_eq!(world.jobs.executing_hours[s], reference.executing_hours);
        assert_eq!(world.jobs.idle_hours[s], reference.idle_hours);
        assert_eq!(world.jobs.tput_integral[s], reference.tput_integral);
        assert_eq!(world.jobs.mean_tput(slot), reference.mean_tput());
    }

    #[test]
    fn lazy_settle_replays_segments_bit_identically_to_eager_advance() {
        let trace = SyntheticTraceConfig::small_scale().generate(9);
        let mut lazy = WorldArena::from_trace(&trace);
        let mut eager = WorldArena::from_trace(&trace);
        let (a, b) = (lazy.slot_of_spec[0], lazy.slot_of_spec[1]);
        for slot in [a, b] {
            lazy.jobs.activate(slot);
            eager.jobs.activate(slot);
        }
        // Job a runs at 0.8 throughout; job b flips from idle to 1.0
        // after two segments (marking dirty settles it at the old rate).
        lazy.jobs.rate[a as usize] = 0.8;
        for dt in [0.25, 0.125] {
            lazy.jobs.push_segment(dt);
            eager.jobs.advance(a, dt, 0.8);
            eager.jobs.advance(b, dt, 0.0);
        }
        lazy.jobs.mark_dirty(b);
        assert_eq!(lazy.jobs.dirty_list, vec![b]);
        lazy.jobs.dirty[b as usize] = false;
        lazy.jobs.dirty_list.clear();
        lazy.jobs.rate[b as usize] = 1.0;
        for dt in [0.5, 0.0625] {
            lazy.jobs.push_segment(dt);
            eager.jobs.advance(a, dt, 0.8);
            eager.jobs.advance(b, dt, 1.0);
        }
        lazy.jobs.settle_active_and_reset();
        for slot in [a, b] {
            let s = slot as usize;
            assert_eq!(lazy.jobs.remaining_hours[s], eager.jobs.remaining_hours[s]);
            assert_eq!(lazy.jobs.executing_hours[s], eager.jobs.executing_hours[s]);
            assert_eq!(lazy.jobs.idle_hours[s], eager.jobs.idle_hours[s]);
            assert_eq!(lazy.jobs.tput_integral[s], eager.jobs.tput_integral[s]);
            assert_eq!(lazy.jobs.settled[s], 0);
        }
        assert!(lazy.jobs.seg_log.is_empty());
        lazy.audit().unwrap();
    }

    #[test]
    fn streamed_jobs_recycle_slots_and_exact_fit_task_ranges() {
        use eva_types::JobSpec;
        fn reid(mut spec: JobSpec, id: JobId) -> JobSpec {
            spec.id = id;
            for (i, t) in spec.tasks.iter_mut().enumerate() {
                t.id = TaskId::new(id, i as u32);
            }
            spec
        }
        let jobs = SyntheticTraceConfig::small_scale().generate(8).into_jobs();
        let mut world = WorldArena::from_trace(&Trace::new(vec![]));
        world.enable_streaming();
        let a = world.intern_job(jobs[0].clone());
        let b = world.intern_job(reid(jobs[1].clone(), JobId(1_000)));
        assert_ne!(a, b);
        assert_eq!(world.jobs.slot_of(jobs[0].id), Some(a));
        let a_range = world.jobs.task_range(a);
        world.jobs.activate(a);
        world.audit().unwrap();

        // Complete and release the first job: its slot, task range, and
        // owned spec all come back.
        world.jobs.retire(a);
        world.jobs.completed_at[a as usize] = Some(SimTime::from_secs(60));
        world.release_job(a);
        assert!(world.jobs.released[a as usize]);
        assert!(world.jobs.owned[a as usize].is_none(), "spec memory reclaimed");
        assert_eq!(world.jobs.slot_of(jobs[0].id), None);
        world.audit().unwrap();

        // A same-shape job recycles both the job slot and the exact-fit
        // task range; lookups land on the recycled slot.
        let c = world.intern_job(reid(jobs[0].clone(), JobId(2_000)));
        assert_eq!(c, a, "job slot recycled");
        assert_eq!(world.jobs.task_range(c), a_range, "task range recycled");
        assert_eq!(world.jobs.slot_of(JobId(2_000)), Some(c));
        let t0 = world.jobs.task_range(c).start as u32;
        assert_eq!(world.tasks.slot_of(TaskId::new(JobId(2_000), 0)), Some(t0));
        assert!(world.jobs.owned[c as usize].is_some());
        world.audit().unwrap();
    }

    #[test]
    fn attach_and_detach_report_whether_the_mapping_changed() {
        let trace = SyntheticTraceConfig::small_scale().generate(1);
        let mut world = WorldArena::from_trace(&trace);
        let slot = world.insts.ensure(InstanceId(0));
        assert!(world.insts.attach(slot, 4));
        assert!(!world.insts.attach(slot, 4), "double attach is a no-op");
        assert!(world.insts.detach(slot, 4));
        assert!(!world.insts.detach(slot, 4), "double detach is a no-op");
    }
}
