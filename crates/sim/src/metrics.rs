//! Experiment metrics (§6.1's reporting set).

use serde::{Deserialize, Serialize};

/// One point of an empirical CDF.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CdfPoint {
    /// The value (e.g. instance uptime in hours).
    pub value: f64,
    /// Cumulative density at the value.
    pub density: f64,
}

/// The full per-run report used by every experiment binary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Scheduler name.
    pub scheduler: String,
    /// Number of jobs completed.
    pub jobs_completed: usize,
    /// Total provisioning cost in dollars.
    pub total_cost_dollars: f64,
    /// Instances launched over the run.
    pub instances_launched: u64,
    /// Task migrations per task (initial placement excluded).
    pub migrations_per_task: f64,
    /// Average job completion time (hours).
    pub avg_jct_hours: f64,
    /// Average job idle time (hours) — time present but not executing.
    pub avg_idle_hours: f64,
    /// Average normalized job throughput while executing.
    pub avg_norm_tput: f64,
    /// Time-weighted average tasks per live instance
    /// (task-running-hours / instance-billed-hours).
    pub tasks_per_instance: f64,
    /// Time-weighted average GPU allocation across live instances.
    pub gpu_alloc: f64,
    /// Time-weighted average CPU allocation across live instances.
    pub cpu_alloc: f64,
    /// Time-weighted average RAM allocation across live instances.
    pub ram_alloc: f64,
    /// Instance uptime CDF (Figure 3).
    pub uptime_cdf: Vec<CdfPoint>,
    /// Fraction of scheduling rounds adopting Full Reconfiguration
    /// (Eva only; 0 otherwise).
    pub full_reconfig_rate: f64,
    /// Simulated makespan (hours from first arrival to last termination).
    pub makespan_hours: f64,
    /// Total instance-billed hours (the denominator behind
    /// `tasks_per_instance`, and the weight shard reports splice with).
    pub billed_hours: f64,
}

impl SimReport {
    /// Cost normalized against a baseline report (the paper normalizes
    /// against No-Packing).
    pub fn normalized_cost(&self, baseline: &SimReport) -> f64 {
        if baseline.total_cost_dollars <= 0.0 {
            return 1.0;
        }
        self.total_cost_dollars / baseline.total_cost_dollars
    }

    /// Renders the Table 13/14-style row.
    pub fn table_row(&self, baseline: Option<&SimReport>) -> String {
        let norm = baseline
            .map(|b| format!("{:>5.1}%", 100.0 * self.normalized_cost(b)))
            .unwrap_or_else(|| "  100%".to_string());
        format!(
            "{:<12} ${:>10.2} ({}) | tasks/inst {:>4.2} | tput {:>4.2} | JCT {:>6.2}h | idle {:>5.2}h | mig/task {:>4.2} | alloc G {:>3.0}% C {:>3.0}% R {:>3.0}%",
            self.scheduler,
            self.total_cost_dollars,
            norm,
            self.tasks_per_instance,
            self.avg_norm_tput,
            self.avg_jct_hours,
            self.avg_idle_hours,
            self.migrations_per_task,
            100.0 * self.gpu_alloc,
            100.0 * self.cpu_alloc,
            100.0 * self.ram_alloc,
        )
    }
}

/// Number of buckets in the service-mode wait histogram.
const WAIT_BUCKETS: usize = 80;

/// Fixed log-scale histogram of job wait (idle) hours. Buckets cover
/// `2^((i - 40) / 4)` hours, spanning ~0.001 h to ~1000 h in quarter-
/// octave steps — coarse, allocation-free, and deterministic (bucket
/// counts are integers, so snapshots never depend on summation order).
#[derive(Debug, Clone, PartialEq)]
struct WaitHistogram {
    counts: [u64; WAIT_BUCKETS],
    total: u64,
}

impl Default for WaitHistogram {
    fn default() -> Self {
        WaitHistogram {
            counts: [0; WAIT_BUCKETS],
            total: 0,
        }
    }
}

impl WaitHistogram {
    fn bucket(hours: f64) -> usize {
        if hours <= 0.0 {
            return 0;
        }
        (((hours.log2() * 4.0).floor() as i64) + 40).clamp(0, WAIT_BUCKETS as i64 - 1) as usize
    }

    fn record(&mut self, hours: f64) {
        self.counts[Self::bucket(hours)] += 1;
        self.total += 1;
    }

    /// Lower bound of the bucket holding quantile `q` (0 when empty).
    /// Bucket 0 also holds exact-zero waits, reported as 0.
    fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                if i == 0 {
                    return 0.0;
                }
                return ((i as f64 - 40.0) / 4.0).exp2();
            }
        }
        0.0
    }
}

/// Rolling service-mode counters and histograms, maintained by
/// `ClusterSim` as events fire and snapshotted per scheduler round (or
/// on `eva serve`'s metrics interval).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    /// Jobs ingested/arrived so far.
    pub arrivals_total: u64,
    /// Jobs completed so far.
    pub completions_total: u64,
    wait_hist: WaitHistogram,
}

impl MetricsRegistry {
    /// Counts one job arrival.
    pub fn record_arrival(&mut self) {
        self.arrivals_total += 1;
    }

    /// Counts one job completion with its accumulated wait (idle) hours.
    pub fn record_completion(&mut self, wait_hours: f64) {
        self.completions_total += 1;
        self.wait_hist.record(wait_hours);
    }

    /// Median completed-job wait (bucket lower bound, hours).
    pub fn p50_wait_hours(&self) -> f64 {
        self.wait_hist.quantile(0.50)
    }

    /// 99th-percentile completed-job wait (bucket lower bound, hours).
    pub fn p99_wait_hours(&self) -> f64 {
        self.wait_hist.quantile(0.99)
    }
}

/// One rolling metrics snapshot: the JSON line `eva serve` emits every
/// `--metrics-every` interval of simulated time. Deterministic for a
/// fixed seed and source — two identical runs emit identical lines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Simulated time of the snapshot (hours).
    pub t_hours: f64,
    /// Jobs ingested so far.
    pub arrivals_total: u64,
    /// Jobs completed so far.
    pub completions_total: u64,
    /// Jobs currently in the system (arrived, not done).
    pub queue_depth: usize,
    /// Tasks currently in the Running state on counted instances.
    pub running_tasks: usize,
    /// Instantaneous GPU allocation fraction across live capacity.
    pub utilization_gpu: f64,
    /// Median completed-job wait (idle) hours.
    pub p50_wait_hours: f64,
    /// 99th-percentile completed-job wait (idle) hours.
    pub p99_wait_hours: f64,
    /// Event-queue entries currently held (live + tombstoned).
    pub event_queue_len: usize,
    /// High-water mark of the event queue.
    pub event_queue_peak: usize,
    /// Arena job rows currently holding a live (unreleased) job — the
    /// bounded-memory observable: with retirement on this tracks the
    /// in-flight window, not total jobs ingested.
    pub live_job_slots: usize,
    /// Scheduler rounds executed so far.
    pub rounds: u64,
}

/// Builds an empirical CDF (at most `max_points` evenly indexed points).
pub fn empirical_cdf(mut values: Vec<f64>, max_points: usize) -> Vec<CdfPoint> {
    if values.is_empty() {
        return Vec::new();
    }
    values.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = values.len();
    let step = (n / max_points.max(1)).max(1);
    let mut points: Vec<CdfPoint> = values
        .iter()
        .enumerate()
        .filter(|(i, _)| i % step == 0 || *i == n - 1)
        .map(|(i, v)| CdfPoint {
            value: *v,
            density: (i + 1) as f64 / n as f64,
        })
        .collect();
    if let Some(last) = points.last_mut() {
        last.density = 1.0;
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cost: f64) -> SimReport {
        SimReport {
            scheduler: "test".into(),
            jobs_completed: 1,
            total_cost_dollars: cost,
            instances_launched: 1,
            migrations_per_task: 0.0,
            avg_jct_hours: 1.0,
            avg_idle_hours: 0.0,
            avg_norm_tput: 1.0,
            tasks_per_instance: 1.0,
            gpu_alloc: 0.5,
            cpu_alloc: 0.5,
            ram_alloc: 0.5,
            uptime_cdf: Vec::new(),
            full_reconfig_rate: 0.0,
            makespan_hours: 1.0,
            billed_hours: 1.0,
        }
    }

    #[test]
    fn normalized_cost_against_baseline() {
        let eva = report(60.0);
        let base = report(100.0);
        assert!((eva.normalized_cost(&base) - 0.6).abs() < 1e-12);
        assert_eq!(report(5.0).normalized_cost(&report(0.0)), 1.0);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let cdf = empirical_cdf(vec![3.0, 1.0, 2.0, 5.0, 4.0], 10);
        assert_eq!(cdf.first().unwrap().value, 1.0);
        assert_eq!(cdf.last().unwrap().value, 5.0);
        assert_eq!(cdf.last().unwrap().density, 1.0);
        for w in cdf.windows(2) {
            assert!(w[1].value >= w[0].value);
            assert!(w[1].density >= w[0].density);
        }
    }

    #[test]
    fn cdf_respects_max_points() {
        let values: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let cdf = empirical_cdf(values, 50);
        assert!(cdf.len() <= 52);
    }

    #[test]
    fn empty_cdf() {
        assert!(empirical_cdf(Vec::new(), 10).is_empty());
    }

    #[test]
    fn table_row_contains_key_fields() {
        let row = report(42.0).table_row(Some(&report(84.0)));
        assert!(row.contains("test"));
        assert!(row.contains("42.00"));
        assert!(row.contains("50.0%"));
    }

    #[test]
    fn wait_histogram_quantiles_are_monotone() {
        let mut reg = MetricsRegistry::default();
        for i in 0..100 {
            reg.record_completion(i as f64 * 0.1);
        }
        assert_eq!(reg.completions_total, 100);
        let (p50, p99) = (reg.p50_wait_hours(), reg.p99_wait_hours());
        assert!(p50 > 0.0 && p50 <= 5.0, "p50 {p50}");
        assert!(p99 >= p50 && p99 <= 16.0, "p99 {p99}");
        // Zero waits land in the zero bucket; empty registries read 0.
        let mut z = MetricsRegistry::default();
        z.record_completion(0.0);
        assert_eq!(z.p50_wait_hours(), 0.0);
        assert_eq!(MetricsRegistry::default().p99_wait_hours(), 0.0);
    }

    #[test]
    fn metrics_snapshot_serde_round_trip() {
        let snap = MetricsSnapshot {
            t_hours: 1.5,
            arrivals_total: 10,
            completions_total: 7,
            queue_depth: 3,
            running_tasks: 4,
            utilization_gpu: 0.75,
            p50_wait_hours: 0.25,
            p99_wait_hours: 2.0,
            event_queue_len: 12,
            event_queue_peak: 40,
            live_job_slots: 3,
            rounds: 9,
        };
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn report_serde_round_trip() {
        let r = report(10.0);
        let json = serde_json::to_string(&r).unwrap();
        let back: SimReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
