//! High-fidelity discrete-event simulator (§5).
//!
//! The simulator reproduces the paper's evaluation environment: it reads a
//! workload trace, notifies the scheduler of job arrivals, executes the
//! scheduler's plans against a simulated cloud (launch/terminate instances,
//! launch/checkpoint/migrate tasks, all with the measured Table 1 delays),
//! applies ground-truth co-location interference (Figure 1) to task
//! throughput, and feeds the scheduler only *observed* throughput — the
//! scheduler never sees the ground-truth interference model.
//!
//! Job progress integrates throughput over time exactly: throughput is
//! piecewise-constant between events, so completion times are computed in
//! closed form and re-derived whenever any co-location changes.
//!
//! [`SimConfig`] + [`run_simulation`] form the experiment entry point used
//! by every table/figure binary in `eva-bench`.

pub mod metrics;
pub mod runner;
pub mod state;

pub use metrics::{CdfPoint, SimReport};
pub use runner::{run_simulation, InterferenceSpec, SchedulerKind, SimConfig};
pub use state::{JobProgress, TaskState};
