//! High-fidelity discrete-event simulator (§5), layered four ways.
//!
//! * [`engine`] — **layer 1**: the generic discrete-event engine
//!   (monotone clock, time/priority/FIFO-ordered event queue,
//!   deterministic RNG streams), now its own `eva-engine` crate with no
//!   knowledge of schedulers or clouds, re-exported here so downstream
//!   code keeps compiling.
//! * [`world`] — **layer 2**: the [`ClusterSim`] world model. It owns the
//!   provider, instances, jobs, and task lifecycles, consumes engine
//!   events, applies ground-truth co-location interference (Figure 1) to
//!   task throughput, and feeds the scheduler only *observed* throughput
//!   — the scheduler never sees the ground-truth interference model.
//! * [`backend`] — **layer 2b**: how a cell's schedule executes. The
//!   [`SimBackend`] is the pure world model; the [`LiveBackend`] replays
//!   the same engine-ordered schedule through the real `eva-exec`
//!   master/worker runtime (Table 12's sim-vs-real axis).
//! * [`sweep`] — **layer 3**: declarative `(scheduler × trace × seed ×
//!   fidelity × interference × backend)` experiment grids ([`SweepGrid`])
//!   with a multi-threaded [`SweepRunner`] whose merged results are
//!   byte-identical for any thread count. Traces are shared by
//!   [`eva_workloads::TraceHandle`] and large ones shard into
//!   arrival-time windows — equal-width or planned from arrival density
//!   ([`eva_workloads::ShardPlanner`]) — whose reports splice back
//!   together ([`report::splice`]) under a [`report::PartitionAudit`]:
//!   clean partitions keep exact integer sums, dirty ones (jobs
//!   straddling a window boundary) demote them to inexact.
//! * [`pool`] + [`cache`] — **layer 3 machinery**: the generic
//!   deduplicating, longest-first, parallel [`CellPool`] every sweep
//!   (simulation or solver-level) runs on, and the persistent
//!   content-keyed [`ReportCache`] under `results/cache/` that turns
//!   cross-experiment reruns into cache hits.
//!
//! Job progress integrates throughput over time exactly: throughput is
//! piecewise-constant between events, so completion times are computed in
//! closed form and re-derived whenever any co-location changes.
//!
//! [`SimConfig`] + [`run_simulation`] remain the single-cell experiment
//! entry point used by every table/figure binary in `eva-bench`; the
//! sweep layer is the batch entry point behind `eva sweep`.

pub use eva_engine as engine;

mod arena;
pub mod backend;
pub mod cache;
pub mod faults;
pub mod federate;
pub mod metrics;
mod observe;
pub mod pool;
pub mod report;
pub mod runner;
pub mod script;
pub mod serve;
pub mod state;
pub mod sweep;
pub mod world;

pub use backend::{
    BackendKind, ExecBackend, LiveBackend, LiveOutcome, SimBackend, LIVE_ITERS_PER_HOUR,
};
pub use cache::{
    CacheStats, ClaimAttempt, ClaimGuard, ClaimInfo, MergeReport, PruneReport, ReportCache,
    VerifyIssue, VerifyReport, SCHEMA_VERSION,
};
pub use eva_engine::{derive_seed, EventEngine, RngStreams, Scheduled, SimEvent};
pub use faults::{FaultAction, FaultEvent, FaultPlan, FaultRegime, FaultSpec};
pub use federate::{claim_stale_deadline, fed_rank, join_workers, worker_role, Federation};
pub use metrics::{CdfPoint, MetricsRegistry, MetricsSnapshot, SimReport};
pub use pool::{CellPool, ClaimStride, ClaimTiming, PoolStats, RunPlan};
pub use report::{splice, PartitionAudit, SplicedReport, EXACT_METRICS, INEXACT_METRICS};
pub use runner::{run_recorded, run_simulation, InterferenceSpec, SchedulerKind, SimConfig};
pub use script::{ExecAction, ExecActionKind, ExecScript};
pub use serve::{serve, ServeConfig, ServeOutcome};
pub use state::{JobProgress, TaskState};
pub use sweep::{
    fidelity_label, CellKey, CellOutcome, Experiment, SplicedOutcome, SplicedResult, SweepArtifact,
    SweepCell, SweepGrid, SweepResult, SweepRunner,
};
pub use world::ClusterSim;
