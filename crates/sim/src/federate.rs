//! Federated sweep orchestration: one grid, several processes.
//!
//! The [`crate::ReportCache`] keys cells by content, so any process that
//! can see the cache dir can compute any cell — the only coordination a
//! multi-process (or, with a shared/synced dir, multi-host) sweep needs
//! is *who does what*. A [`Federation`] answers that with work-claiming
//! over the cache dir itself:
//!
//! 1. The **coordinator** (the process the user started) computes the
//!    [`crate::RunPlan`] and spawns `procs - 1` **workers** — re-executions
//!    of its own binary with the same arguments plus `EVA_FED_ROLE=worker`
//!    in the environment.
//! 2. Every process (coordinator included) walks the longest-first order,
//!    claiming unclaimed representatives via atomic `<fnv>.claim` files
//!    ([`crate::ReportCache::try_claim`]), executing them, and publishing
//!    into the cache.
//! 3. The coordinator tails the cache for cells a peer claimed
//!    ([`crate::CellPool::run_federated`] phase 2) and merges in logical
//!    cell order — so merged JSON is **byte-identical** to a
//!    single-process run for any process count, thread count, and cache
//!    state.
//!
//! Claims carry pid + host + timestamp and are *stealable* once their
//! holder is dead or the staleness deadline (`EVA_CLAIM_STALE_SECS`,
//! default 600 s) passes, so a killed worker leaves at worst a claim file
//! the next run removes — it never wedges a federated run.
//!
//! Workers inherit the coordinator's full command line, which makes them
//! plan the *same* grid; their role suppresses artifact writes and
//! further spawning (a worker never forks grandchildren). For multi-host
//! federation there is no spawning at all: run the same command on each
//! host against an rsync'd cache dir and merge afterwards (`eva cache
//! merge`).

use std::process::{Child, Command, Stdio};
use std::sync::Mutex;
use std::time::Duration;

/// Environment variable carrying the process role (`worker` in spawned
/// federation workers; unset/anything else = coordinator).
pub const ROLE_ENV: &str = "EVA_FED_ROLE";

/// Environment variable carrying a worker's 0-based fleet rank (the
/// coordinator is rank 0; workers are spawned with 1, 2, …). Drives
/// [`Federation::claim_stride`] so processes start their claim sweeps on
/// disjoint prefixes of the longest-first order.
pub const RANK_ENV: &str = "EVA_FED_RANK";

/// This process's fleet rank: `EVA_FED_RANK`, or 0 (coordinator /
/// unparsable).
pub fn fed_rank() -> usize {
    std::env::var(RANK_ENV)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Default claim staleness deadline (env override `EVA_CLAIM_STALE_SECS`).
const CLAIM_STALE_SECS_DEFAULT: u64 = 600;

/// How often a waiting process re-polls the cache for a peer's result.
const POLL_DEFAULT: Duration = Duration::from_millis(10);

/// Children this coordinator spawned, joined by [`join_workers`].
static WORKERS: Mutex<Vec<Child>> = Mutex::new(Vec::new());

/// True when this process is a spawned federation worker (it must not
/// write artifacts or spawn further workers).
pub fn worker_role() -> bool {
    std::env::var(ROLE_ENV).is_ok_and(|v| v == "worker")
}

/// The claim staleness deadline: `EVA_CLAIM_STALE_SECS` or 600 s.
pub fn claim_stale_deadline() -> Duration {
    let secs = std::env::var("EVA_CLAIM_STALE_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(CLAIM_STALE_SECS_DEFAULT);
    Duration::from_secs(secs)
}

/// Configuration of a federated run: total process count plus the claim
/// timing knobs.
#[derive(Debug, Clone)]
pub struct Federation {
    procs: usize,
    stale: Duration,
    poll: Duration,
    worker_args: Option<Vec<String>>,
}

impl Federation {
    /// A federation of `procs` total processes (coordinator included);
    /// claim staleness from the environment, default polling.
    pub fn new(procs: usize) -> Self {
        Federation {
            procs: procs.max(1),
            stale: claim_stale_deadline(),
            poll: POLL_DEFAULT,
            worker_args: None,
        }
    }

    /// Overrides the arguments workers are spawned with (default: this
    /// process's own argv, which is right for single-grid binaries;
    /// multi-probe binaries pass a flag that jumps workers straight to
    /// the federated grid).
    pub fn worker_args(mut self, args: Vec<String>) -> Self {
        self.worker_args = Some(args);
        self
    }

    /// Overrides the claim staleness deadline (tests use short ones).
    pub fn stale(mut self, stale: Duration) -> Self {
        self.stale = stale;
        self
    }

    /// Total processes in the federation.
    pub fn procs(&self) -> usize {
        self.procs
    }

    /// The claim staleness deadline in force.
    pub fn stale_deadline(&self) -> Duration {
        self.stale
    }

    /// The cache re-poll interval while waiting on a peer.
    pub fn poll_interval(&self) -> Duration {
        self.poll
    }

    /// Both timing knobs bundled for [`crate::CellPool::run_federated`].
    pub fn claim_timing(&self) -> crate::pool::ClaimTiming {
        crate::pool::ClaimTiming {
            stale: self.stale,
            poll: self.poll,
        }
    }

    /// This process's claim-prefix stride for
    /// [`crate::CellPool::run_federated`]: its `EVA_FED_RANK` over the
    /// federation's process count.
    pub fn claim_stride(&self) -> crate::pool::ClaimStride {
        crate::pool::ClaimStride {
            rank: fed_rank(),
            procs: self.procs,
        }
    }

    /// Spawns the `procs - 1` worker processes, once. Workers re-execute
    /// this binary (same argv unless [`Federation::worker_args`]
    /// overrode it) with `EVA_FED_ROLE=worker`; their stdout is
    /// discarded — the coordinator prints the merged result. Inside a
    /// worker this is a no-op, so shared run paths can call it
    /// unconditionally. Spawn failures warn and degrade: the coordinator
    /// alone still completes the grid.
    pub fn ensure_workers(&self) {
        if self.procs <= 1 || worker_role() {
            return;
        }
        let mut workers = WORKERS.lock().unwrap();
        if !workers.is_empty() {
            return;
        }
        let exe = match std::env::current_exe() {
            Ok(exe) => exe,
            Err(e) => {
                eprintln!("warning: cannot resolve own binary for federation workers: {e}");
                return;
            }
        };
        let args: Vec<String> = self
            .worker_args
            .clone()
            .unwrap_or_else(|| std::env::args().skip(1).collect());
        for n in 1..self.procs {
            match Command::new(&exe)
                .args(&args)
                .env(ROLE_ENV, "worker")
                .env(RANK_ENV, n.to_string())
                .stdout(Stdio::null())
                .spawn()
            {
                Ok(child) => workers.push(child),
                Err(e) => eprintln!("warning: federation worker {n} failed to spawn: {e}"),
            }
        }
    }

    /// Number of live spawned workers (diagnostics).
    pub fn spawned_workers() -> usize {
        WORKERS.lock().unwrap().len()
    }
}

/// Waits for every spawned federation worker to exit. The coordinator
/// calls this after its merge: results never depend on workers (phase 2
/// steals anything a dead peer left), but exiting before children would
/// orphan them mid-cell. A no-op when nothing was spawned.
pub fn join_workers() {
    let mut workers = WORKERS.lock().unwrap();
    for mut child in workers.drain(..) {
        match child.wait() {
            Ok(status) if !status.success() => {
                eprintln!("warning: federation worker exited with {status}");
            }
            Ok(_) => {}
            Err(e) => eprintln!("warning: federation worker not joinable: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn role_defaults_to_coordinator() {
        // The test runner never sets the role variable.
        assert!(!worker_role());
    }

    #[test]
    fn single_proc_federation_spawns_nothing() {
        let fed = Federation::new(1);
        fed.ensure_workers();
        assert_eq!(Federation::spawned_workers(), 0);
        join_workers();
    }

    #[test]
    fn procs_clamp_to_at_least_one() {
        assert_eq!(Federation::new(0).procs(), 1);
        assert_eq!(Federation::new(3).procs(), 3);
    }

    #[test]
    fn stale_deadline_zero_means_immediate_steal() {
        // Operators drain a wedged federation with
        // `EVA_CLAIM_STALE_SECS=0`: every peer claim is immediately
        // stale, so any process may steal and re-run the cell.
        std::env::set_var("EVA_CLAIM_STALE_SECS", "0");
        let deadline = claim_stale_deadline();
        let fed = Federation::new(2);
        std::env::remove_var("EVA_CLAIM_STALE_SECS");
        assert_eq!(deadline, Duration::ZERO);
        assert_eq!(fed.stale_deadline(), Duration::ZERO);
        assert_eq!(fed.claim_timing().stale, Duration::ZERO);
        // Unset (or garbage) falls back to the 600 s default.
        assert_eq!(
            claim_stale_deadline(),
            Duration::from_secs(CLAIM_STALE_SECS_DEFAULT)
        );
    }
}
