//! Persistent, content-keyed report cache shared across experiments.
//!
//! Every `exp_*` binary and `eva sweep` runs grids of cells, and many
//! cells recur across experiments (fig4's No-Packing baseline is
//! table13's No-Packing baseline on the same trace). A [`ReportCache`]
//! memoizes finished cell reports on disk — under `results/cache/` by
//! convention — keyed by the cell's **content fingerprint**: trace
//! content hash × scheduler configuration × seed × fidelity ×
//! interference × migration scale × round period × backend, all under a
//! code [`SCHEMA_VERSION`]. A second run of any grid (or another
//! experiment sharing cells) is served from disk, byte-identical to the
//! simulated run.
//!
//! Entries are self-describing JSON files named by the FNV-1a hash of
//! `schema|key`; the full key string is stored inside the entry and
//! verified on lookup, so a (vanishingly unlikely) hash collision reads
//! as a miss, never as a wrong report. Writes go through a temp file +
//! rename, so concurrent writers at worst race to publish identical
//! bytes.
//!
//! **Provenance**: every entry carries a `producer` field stamped at
//! store time — the binary (experiment) that first computed the cell.
//! Lookups ignore it (the content key alone decides validity), but
//! `eva cache stats` breaks entries down by producer, so a shared or
//! merged cache dir stays auditable: you can see which experiment paid
//! for which cells.
//!
//! **Federation**: the cache dir doubles as the coordination substrate
//! for multi-process sweeps (see [`crate::federate`]). A worker that
//! wants to compute a cell first takes a *claim* — an atomically
//! created `<fnv>.claim` file next to the entry carrying its pid, host,
//! and a timestamp ([`ReportCache::try_claim`]). Claims are advisory
//! (work is idempotent and publishes identical bytes) and stealable:
//! a claim whose process is dead, or whose age exceeds the staleness
//! deadline, is removed and re-taken, so a killed worker never wedges a
//! federated run.
//!
//! **Invalidation**: bump [`SCHEMA_VERSION`] whenever simulation
//! semantics or the serialized report shape change — old entries then
//! miss (their file names hash differently) and are never read again.
//! Mutating a trace changes its content hash and therefore its keys.
//! The `producer` stamp is *not* part of the key: it never affects
//! hits, and entries written before it existed still read fine.
//! Retired-schema entries linger harmlessly until `eva cache prune`
//! removes them.

use std::path::{Path, PathBuf};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use serde::{Deserialize, Number, Serialize, Value};

/// Version tag mixed into every cache key. Bump on any change to
/// simulation semantics, report fields, or key composition.
///
/// v2: shard metadata gained boundary intervals + straddler counts and
/// the table 4/5 artifact rows gained `from_cache` stamps — cached rows
/// from v1 would deserialize without those fields, so they are retired.
///
/// v3: cells gained the adversarial fault axis. Cell fingerprints now
/// carry a `|fault:` component and `CellKey` a `faults` label, so v2
/// entries (which never injected faults but whose keys lack the
/// component) would alias the new fault-free keys while their stored
/// `CellKey` no longer deserializes — retire them wholesale.
pub const SCHEMA_VERSION: &str = "eva-v3";

/// Default staleness deadline for orphaned `.tmp` files swept on open
/// (env override `EVA_TMP_STALE_SECS`).
const TMP_STALE_SECS_DEFAULT: u64 = 3_600;

fn tmp_stale_deadline() -> Duration {
    let secs = std::env::var("EVA_TMP_STALE_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(TMP_STALE_SECS_DEFAULT);
    Duration::from_secs(secs)
}

/// Milliseconds since the Unix epoch (claim timestamps).
fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// This machine's name, for claim ownership across a synced cache dir.
fn local_host() -> String {
    std::fs::read_to_string("/proc/sys/kernel/hostname")
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|_| "?".to_string())
}

/// True when pid liveness can be checked at all (Linux procfs).
fn procfs_available() -> bool {
    Path::new("/proc/self").exists()
}

/// True when `pid` is a live process on this machine.
fn pid_alive(pid: u32) -> bool {
    Path::new(&format!("/proc/{pid}")).exists()
}

/// The binary stem this process runs as — the provenance stamp stored
/// with every cache entry (env override `EVA_CACHE_PRODUCER`).
fn default_producer() -> String {
    if let Ok(name) = std::env::var("EVA_CACHE_PRODUCER") {
        return name;
    }
    std::env::current_exe()
        .ok()
        .as_deref()
        .and_then(Path::file_stem)
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Age of a file by mtime; `None` when the file (or clock) is gone.
fn file_age(path: &Path) -> Option<Duration> {
    std::fs::metadata(path)
        .and_then(|m| m.modified())
        .ok()
        .and_then(|t| SystemTime::now().duration_since(t).ok())
}

/// True for the temp-file names [`ReportCache::store`] and claim
/// creation use (`<stem>.tmp.<pid>`).
fn is_temp_name(name: &str) -> bool {
    name.contains(".tmp.")
}

/// The pid embedded in a `<stem>.tmp.<pid>` temp name, if any.
fn temp_pid(name: &str) -> Option<u32> {
    name.rsplit('.').next().and_then(|p| p.parse().ok())
}

/// A JSON value as `u64`, if it is a number (claim-body fields).
fn value_u64(v: &Value) -> Option<u64> {
    match v {
        Value::Number(n) => n.as_u64(),
        _ => None,
    }
}

/// A directory-backed report store keyed by content fingerprints.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportCache {
    dir: PathBuf,
    schema: String,
    producer: String,
}

impl ReportCache {
    /// A cache rooted at `dir` (created lazily on first store) under the
    /// current [`SCHEMA_VERSION`]. Opening sweeps orphaned `.tmp` files
    /// left by killed runs: temps whose writer pid is dead, or older
    /// than the staleness deadline (`EVA_TMP_STALE_SECS`, default 1 h),
    /// are removed.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        let cache = Self::with_schema(dir, SCHEMA_VERSION);
        cache.sweep_stale_temps(tmp_stale_deadline());
        cache
    }

    /// A cache with an explicit schema tag (tests use this to prove that
    /// bumping the version invalidates every entry). Does **not** sweep
    /// temps — the `eva cache` lifecycle commands open through here so
    /// `verify` can still report orphans instead of silently losing
    /// them.
    pub fn with_schema(dir: impl Into<PathBuf>, schema: impl Into<String>) -> Self {
        ReportCache {
            dir: dir.into(),
            schema: schema.into(),
            producer: default_producer(),
        }
    }

    /// Overrides the provenance stamp stored with new entries (defaults
    /// to this binary's name).
    pub fn with_producer(mut self, producer: impl Into<String>) -> Self {
        self.producer = producer.into();
        self
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The schema tag entries are keyed under.
    pub fn schema(&self) -> &str {
        &self.schema
    }

    /// Looks up the value stored under `key`, if any. Corrupt, colliding,
    /// or schema-mismatched entries read as a miss.
    pub fn lookup<R: Deserialize>(&self, key: &str) -> Option<R> {
        let text = std::fs::read_to_string(self.path_for(key)).ok()?;
        let value = serde_json::from_str_value(&text).ok()?;
        if value.get_field("schema")?.as_str()? != self.schema
            || value.get_field("key")?.as_str()? != key
        {
            return None;
        }
        R::deserialize(value.get_field("value")?).ok()
    }

    /// True when an entry is stored under `key` (a metadata probe — no
    /// read or validation; the federated wait loop polls this).
    pub fn contains(&self, key: &str) -> bool {
        self.path_for(key).exists()
    }

    /// Stores `value` under `key`, stamped with this cache's provenance
    /// (which binary produced the cell). Failures are reported to stderr
    /// and otherwise ignored: a broken cache must never fail an
    /// experiment.
    pub fn store<R: Serialize>(&self, key: &str, value: &R) {
        let entry = Value::Object(vec![
            ("schema".to_string(), Value::String(self.schema.clone())),
            ("key".to_string(), Value::String(key.to_string())),
            ("producer".to_string(), Value::String(self.producer.clone())),
            ("value".to_string(), value.serialize()),
        ]);
        let json = match serde_json::to_string_pretty(&entry) {
            Ok(json) => json,
            Err(e) => {
                eprintln!("warning: cache entry for `{key}` does not serialize: {e}");
                return;
            }
        };
        if let Err(e) = std::fs::create_dir_all(&self.dir) {
            eprintln!("warning: cannot create cache dir {}: {e}", self.dir.display());
            return;
        }
        let path = self.path_for(key);
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        let result = std::fs::write(&tmp, json).and_then(|()| std::fs::rename(&tmp, &path));
        if let Err(e) = result {
            let _ = std::fs::remove_file(&tmp);
            eprintln!("warning: cache write {} failed: {e}", path.display());
        }
    }

    /// Number of entries currently on disk (diagnostics and tests).
    pub fn len(&self) -> usize {
        std::fs::read_dir(&self.dir)
            .map(|it| {
                it.filter_map(|e| e.ok())
                    .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn path_for(&self, key: &str) -> PathBuf {
        let tagged = format!("{}|{}", self.schema, key);
        self.dir
            .join(format!("{:016x}.json", eva_types::fnv1a64(tagged.as_bytes())))
    }

    /// The claim-file path guarding the entry stored under `key`.
    pub fn claim_path(&self, key: &str) -> PathBuf {
        self.path_for(key).with_extension("claim")
    }

    /// Attempts to claim `key` for this process.
    ///
    /// A claim is an atomically created `<fnv>.claim` file carrying this
    /// process's pid, host, and a timestamp. An existing claim blocks
    /// ([`ClaimAttempt::Held`]) unless it is *stealable* — its holder is
    /// a dead pid on this host, or its age exceeds `stale` — in which
    /// case it is removed and re-taken. Creation uses a temp file plus
    /// an atomic `hard_link`, so of two racing claimants exactly one
    /// acquires. Claims are advisory: cell work is idempotent and racing
    /// publishers at worst store identical bytes, so on filesystems
    /// without hard links the claim degrades to acquired (with a
    /// warning) rather than wedging the run.
    pub fn try_claim(&self, key: &str, stale: Duration) -> ClaimAttempt {
        let path = self.claim_path(key);
        if path.exists() {
            match self.read_claim_at(&path) {
                Some(info) if !info.stealable(stale) => return ClaimAttempt::Held(info),
                Some(_) => {
                    let _ = std::fs::remove_file(&path);
                }
                None => {
                    // Unreadable/corrupt claim: nobody can release it.
                    // Steal once it outlives the deadline by mtime.
                    match file_age(&path) {
                        Some(age) if age > stale => {
                            let _ = std::fs::remove_file(&path);
                        }
                        Some(age) => {
                            return ClaimAttempt::Held(ClaimInfo {
                                pid: 0,
                                host: "?".to_string(),
                                ts_ms: now_ms().saturating_sub(age.as_millis() as u64),
                                key: key.to_string(),
                            });
                        }
                        // File vanished between exists() and read: the
                        // holder just released — fall through and race
                        // for a fresh claim.
                        None => {}
                    }
                }
            }
        }
        if let Err(e) = std::fs::create_dir_all(&self.dir) {
            eprintln!("warning: cannot create cache dir {}: {e}", self.dir.display());
            return ClaimAttempt::Acquired(ClaimGuard { path: None });
        }
        let body = Value::Object(vec![
            ("pid".to_string(), Value::Number(Number::U(u64::from(std::process::id())))),
            ("host".to_string(), Value::String(local_host())),
            ("ts_ms".to_string(), Value::Number(Number::U(now_ms()))),
            ("key".to_string(), Value::String(key.to_string())),
        ]);
        let json = serde_json::to_string(&body).expect("claim bodies serialize");
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        if let Err(e) = std::fs::write(&tmp, json) {
            eprintln!("warning: cannot write claim temp {}: {e}", tmp.display());
            return ClaimAttempt::Acquired(ClaimGuard { path: None });
        }
        let linked = std::fs::hard_link(&tmp, &path);
        let _ = std::fs::remove_file(&tmp);
        match linked {
            Ok(()) => ClaimAttempt::Acquired(ClaimGuard { path: Some(path) }),
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                match self.read_claim_at(&path) {
                    Some(info) => ClaimAttempt::Held(info),
                    None => ClaimAttempt::Held(ClaimInfo {
                        pid: 0,
                        host: "?".to_string(),
                        ts_ms: now_ms(),
                        key: key.to_string(),
                    }),
                }
            }
            Err(e) => {
                eprintln!(
                    "warning: claim link {} failed ({e}); proceeding unclaimed",
                    path.display()
                );
                ClaimAttempt::Acquired(ClaimGuard { path: None })
            }
        }
    }

    /// Reads the claim currently guarding `key`, if any.
    pub fn read_claim(&self, key: &str) -> Option<ClaimInfo> {
        self.read_claim_at(&self.claim_path(key))
    }

    fn read_claim_at(&self, path: &Path) -> Option<ClaimInfo> {
        let text = std::fs::read_to_string(path).ok()?;
        let value = serde_json::from_str_value(&text).ok()?;
        Some(ClaimInfo {
            pid: value_u64(value.get_field("pid")?)? as u32,
            host: value.get_field("host")?.as_str()?.to_string(),
            ts_ms: value_u64(value.get_field("ts_ms")?)?,
            key: value.get_field("key")?.as_str()?.to_string(),
        })
    }

    /// Removes orphaned `.tmp` files (from entry writes *and* claim
    /// creation) whose writer pid is dead on this host or whose age
    /// exceeds `deadline`. Returns the removed paths. Called on every
    /// [`ReportCache::new`], so a killed run's litter disappears the
    /// next time any experiment opens the cache.
    pub fn sweep_stale_temps(&self, deadline: Duration) -> Vec<PathBuf> {
        let Ok(it) = std::fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut removed = Vec::new();
        for entry in it.filter_map(|e| e.ok()) {
            let path = entry.path();
            let Some(name) = path.file_name().map(|n| n.to_string_lossy().into_owned()) else {
                continue;
            };
            if !is_temp_name(&name) {
                continue;
            }
            let dead_writer = procfs_available()
                && temp_pid(&name).is_some_and(|pid| pid != std::process::id() && !pid_alive(pid));
            let expired = file_age(&path).is_some_and(|age| age > deadline);
            if (dead_writer || expired) && std::fs::remove_file(&path).is_ok() {
                removed.push(path);
            }
        }
        removed
    }
}

/// Who holds a claim: the publishing process's identity and when it
/// claimed.
#[derive(Debug, Clone, PartialEq)]
pub struct ClaimInfo {
    /// Claiming process id.
    pub pid: u32,
    /// Claiming host name (claims travel with synced cache dirs).
    pub host: String,
    /// Claim creation time, milliseconds since the Unix epoch.
    pub ts_ms: u64,
    /// The cell key the claim guards.
    pub key: String,
}

impl ClaimInfo {
    /// Claim age by its own timestamp.
    pub fn age(&self) -> Duration {
        Duration::from_millis(now_ms().saturating_sub(self.ts_ms))
    }

    /// True when the claim may be removed and re-taken: its holder is a
    /// dead pid on this host, or it has outlived the staleness deadline
    /// (the only signal available for claims from other hosts).
    pub fn stealable(&self, stale: Duration) -> bool {
        if procfs_available() && self.host == local_host() && !pid_alive(self.pid) {
            return true;
        }
        self.age() > stale
    }
}

/// Outcome of [`ReportCache::try_claim`].
#[derive(Debug)]
pub enum ClaimAttempt {
    /// This process holds the claim; drop (or
    /// [`ClaimGuard::release`]) it after publishing.
    Acquired(ClaimGuard),
    /// Another live claimant holds it — skip for now and revisit.
    Held(ClaimInfo),
}

/// An acquired claim; removing the claim file on drop, so a panicking
/// worker (whose stack unwinds) frees the cell immediately rather than
/// waiting out the staleness deadline. A SIGKILL leaves the file behind
/// — that is the stealable-claim path.
#[derive(Debug)]
pub struct ClaimGuard {
    path: Option<PathBuf>,
}

impl ClaimGuard {
    /// Removes the claim file (idempotent; drop does the same).
    pub fn release(mut self) {
        self.remove();
    }

    fn remove(&mut self) {
        if let Some(path) = self.path.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for ClaimGuard {
    fn drop(&mut self) {
        self.remove();
    }
}

// ---------------------------------------------------------------------
// Lifecycle operations — the data layer behind `eva cache`.
// ---------------------------------------------------------------------

/// One parsed on-disk entry (internal to the lifecycle walks).
struct RawEntry {
    bytes: String,
    schema: Option<String>,
    key: Option<String>,
    producer: String,
    has_value: bool,
}

/// Summary counters for `eva cache stats`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CacheStats {
    /// Entry files present.
    pub entries: usize,
    /// Entries under the cache's current schema.
    pub current_schema: usize,
    /// Total bytes across entry files.
    pub bytes: u64,
    /// `(schema, entry count)` sorted by schema.
    pub schemas: Vec<(String, usize)>,
    /// `(producer, entry count)` sorted by producer (`"-"` for entries
    /// predating provenance).
    pub producers: Vec<(String, usize)>,
    /// Orphaned temp files present.
    pub temps: usize,
    /// Claim files present.
    pub claims: usize,
}

/// One problem `eva cache verify` found.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyIssue {
    /// File name inside the cache dir.
    pub file: String,
    /// What is wrong with it.
    pub problem: String,
}

/// Result of `eva cache verify`: entries re-hashed against their stored
/// keys, plus the orphaned `.tmp` and leftover `.claim` files a healthy
/// idle cache must not contain.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VerifyReport {
    /// Entry files examined.
    pub entries: usize,
    /// Entries that parsed and re-hashed to their own file name.
    pub valid: usize,
    /// Valid entries stored under a schema other than the current one
    /// (unreadable by this build, but not corrupt — prune removes them).
    pub retired: usize,
    /// Corrupt or mis-filed entries.
    pub issues: Vec<VerifyIssue>,
    /// Orphaned temp files (named `<stem>.tmp.<pid>`).
    pub temps: Vec<String>,
    /// Claim files, annotated with holder and staleness.
    pub claims: Vec<String>,
}

impl VerifyReport {
    /// True when the cache is healthy and idle: every entry valid, no
    /// temps, no claims.
    pub fn clean(&self) -> bool {
        self.issues.is_empty() && self.temps.is_empty() && self.claims.is_empty()
    }
}

/// Counters for `eva cache prune`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PruneReport {
    /// Entries removed because their schema is retired.
    pub removed_retired: usize,
    /// Entries removed because they exceeded the age limit.
    pub removed_old: usize,
    /// Corrupt entries removed (they could never be read again).
    pub removed_corrupt: usize,
    /// Stale temp files removed.
    pub removed_temps: usize,
    /// Stale claim files removed (live claims are left alone — a fleet
    /// may be running).
    pub removed_claims: usize,
    /// Entries kept.
    pub kept: usize,
}

/// Counters for `eva cache import`/`merge`/`export`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MergeReport {
    /// Entries copied over.
    pub imported: usize,
    /// Entries already present byte-identically.
    pub skipped_identical: usize,
    /// Entries present on both sides with equal keys and values but
    /// different bytes (e.g. different producer stamps) — the
    /// destination's copy is kept.
    pub skipped_equivalent: usize,
    /// Entries present on both sides with **different values** under the
    /// same key — kept local, loudly counted: this means two builds
    /// disagreed about the same content-addressed cell.
    pub conflicting: usize,
    /// Source files that failed validation and were not copied.
    pub invalid: usize,
}

impl ReportCache {
    fn read_raw_entry(&self, path: &Path) -> Option<RawEntry> {
        let bytes = std::fs::read_to_string(path).ok()?;
        let parsed = serde_json::from_str_value(&bytes).ok();
        let field = |name: &str| -> Option<String> {
            parsed
                .as_ref()?
                .get_field(name)?
                .as_str()
                .map(str::to_string)
        };
        Some(RawEntry {
            schema: field("schema"),
            key: field("key"),
            producer: field("producer").unwrap_or_else(|| "-".to_string()),
            has_value: parsed
                .as_ref()
                .is_some_and(|v| v.get_field("value").is_some()),
            bytes,
        })
    }

    /// The file name an entry's own `(schema, key)` pair hashes to —
    /// what the entry *should* be called if it is filed correctly.
    fn expected_name(schema: &str, key: &str) -> String {
        let tagged = format!("{schema}|{key}");
        format!("{:016x}.json", eva_types::fnv1a64(tagged.as_bytes()))
    }

    fn dir_files(&self) -> Vec<PathBuf> {
        let Ok(it) = std::fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut files: Vec<PathBuf> = it.filter_map(|e| e.ok()).map(|e| e.path()).collect();
        files.sort();
        files
    }

    /// Walks the cache dir and summarizes what is in it.
    pub fn stats(&self) -> CacheStats {
        let mut stats = CacheStats::default();
        let mut schemas: std::collections::BTreeMap<String, usize> = Default::default();
        let mut producers: std::collections::BTreeMap<String, usize> = Default::default();
        for path in self.dir_files() {
            let name = path.file_name().map(|n| n.to_string_lossy().into_owned());
            let Some(name) = name else { continue };
            if is_temp_name(&name) {
                stats.temps += 1;
            } else if name.ends_with(".claim") {
                stats.claims += 1;
            } else if name.ends_with(".json") {
                stats.entries += 1;
                stats.bytes += std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                let entry = self.read_raw_entry(&path);
                let schema = entry
                    .as_ref()
                    .and_then(|e| e.schema.clone())
                    .unwrap_or_else(|| "(corrupt)".to_string());
                if schema == self.schema {
                    stats.current_schema += 1;
                }
                *schemas.entry(schema).or_default() += 1;
                let producer = entry
                    .map(|e| e.producer)
                    .unwrap_or_else(|| "-".to_string());
                *producers.entry(producer).or_default() += 1;
            }
        }
        stats.schemas = schemas.into_iter().collect();
        stats.producers = producers.into_iter().collect();
        stats
    }

    /// Re-validates every entry against its stored key: the entry must
    /// parse, carry `schema`/`key`/`value` fields, and live under the
    /// file name its own `schema|key` hashes to. Also reports the
    /// orphaned `.tmp` and leftover `.claim` files an idle cache must
    /// not contain. `stale` annotates which claims are already
    /// stealable.
    pub fn verify(&self, stale: Duration) -> VerifyReport {
        let mut report = VerifyReport::default();
        for path in self.dir_files() {
            let Some(name) = path.file_name().map(|n| n.to_string_lossy().into_owned()) else {
                continue;
            };
            if is_temp_name(&name) {
                let dead = procfs_available()
                    && temp_pid(&name)
                        .is_some_and(|pid| pid != std::process::id() && !pid_alive(pid));
                report
                    .temps
                    .push(format!("{name}{}", if dead { " (writer dead)" } else { "" }));
                continue;
            }
            if name.ends_with(".claim") {
                match self.read_claim_at(&path) {
                    Some(info) => report.claims.push(format!(
                        "{name} (pid {} on {}, {:.0}s old{})",
                        info.pid,
                        info.host,
                        info.age().as_secs_f64(),
                        if info.stealable(stale) { ", stealable" } else { "" }
                    )),
                    None => report.claims.push(format!("{name} (unreadable)")),
                }
                continue;
            }
            if !name.ends_with(".json") {
                continue;
            }
            report.entries += 1;
            let Some(entry) = self.read_raw_entry(&path) else {
                report.issues.push(VerifyIssue {
                    file: name,
                    problem: "unreadable".to_string(),
                });
                continue;
            };
            let (Some(schema), Some(key), true) = (&entry.schema, &entry.key, entry.has_value)
            else {
                report.issues.push(VerifyIssue {
                    file: name,
                    problem: "not a cache entry (missing schema/key/value)".to_string(),
                });
                continue;
            };
            let expected = Self::expected_name(schema, key);
            if expected != name {
                report.issues.push(VerifyIssue {
                    file: name,
                    problem: format!("filed under the wrong hash (key hashes to {expected})"),
                });
                continue;
            }
            report.valid += 1;
            if schema != &self.schema {
                report.retired += 1;
            }
        }
        report
    }

    /// Removes retired-schema entries (when `retired`), entries older
    /// than `max_age` (when given), corrupt entries, stale temps, and
    /// stealable claims. Live claims and current entries stay.
    pub fn prune(&self, max_age: Option<Duration>, retired: bool, stale: Duration) -> PruneReport {
        let mut report = PruneReport {
            removed_temps: self.sweep_stale_temps(tmp_stale_deadline()).len(),
            ..PruneReport::default()
        };
        for path in self.dir_files() {
            let Some(name) = path.file_name().map(|n| n.to_string_lossy().into_owned()) else {
                continue;
            };
            if name.ends_with(".claim") {
                let stealable = match self.read_claim_at(&path) {
                    Some(info) => info.stealable(stale),
                    None => file_age(&path).is_some_and(|age| age > stale),
                };
                if stealable && std::fs::remove_file(&path).is_ok() {
                    report.removed_claims += 1;
                }
                continue;
            }
            if !name.ends_with(".json") || is_temp_name(&name) {
                continue;
            }
            let entry = self.read_raw_entry(&path);
            let valid = entry.as_ref().is_some_and(|e| {
                matches!((&e.schema, &e.key, e.has_value), (Some(_), Some(_), true))
            });
            if !valid {
                if std::fs::remove_file(&path).is_ok() {
                    report.removed_corrupt += 1;
                }
                continue;
            }
            let entry = entry.expect("checked above");
            let schema = entry.schema.as_deref().unwrap_or_default();
            if retired && schema != self.schema {
                if std::fs::remove_file(&path).is_ok() {
                    report.removed_retired += 1;
                }
                continue;
            }
            let expired =
                max_age.is_some_and(|limit| file_age(&path).is_some_and(|age| age > limit));
            if expired {
                if std::fs::remove_file(&path).is_ok() {
                    report.removed_old += 1;
                }
                continue;
            }
            report.kept += 1;
        }
        report
    }

    /// Imports every valid entry of the foreign cache dir `src` into
    /// this cache, byte-verbatim (content-addressed names make this a
    /// plain union). Entries already present are kept; same-key entries
    /// whose **values** disagree are counted as conflicts and left
    /// local.
    pub fn merge_from(&self, src: &Path) -> MergeReport {
        let foreign = ReportCache::with_schema(src, self.schema.clone());
        let mut report = MergeReport::default();
        for path in foreign.dir_files() {
            let Some(name) = path.file_name().map(|n| n.to_string_lossy().into_owned()) else {
                continue;
            };
            if !name.ends_with(".json") || is_temp_name(&name) {
                continue;
            }
            let Some(entry) = foreign.read_raw_entry(&path) else {
                report.invalid += 1;
                continue;
            };
            let (Some(schema), Some(key), true) = (&entry.schema, &entry.key, entry.has_value)
            else {
                report.invalid += 1;
                continue;
            };
            if Self::expected_name(schema, key) != name {
                report.invalid += 1;
                continue;
            }
            let dest = self.dir.join(&name);
            if dest.exists() {
                let local = std::fs::read_to_string(&dest).unwrap_or_default();
                if local == entry.bytes {
                    report.skipped_identical += 1;
                } else {
                    let same_value = serde_json::from_str_value(&local)
                        .ok()
                        .and_then(|l| {
                            serde_json::from_str_value(&entry.bytes)
                                .ok()
                                .map(|f| l.get_field("value") == f.get_field("value"))
                        })
                        .unwrap_or(false);
                    if same_value {
                        report.skipped_equivalent += 1;
                    } else {
                        report.conflicting += 1;
                    }
                }
                continue;
            }
            if let Err(e) = std::fs::create_dir_all(&self.dir) {
                eprintln!("warning: cannot create cache dir {}: {e}", self.dir.display());
                report.invalid += 1;
                continue;
            }
            let tmp = dest.with_extension(format!("tmp.{}", std::process::id()));
            let copied =
                std::fs::write(&tmp, &entry.bytes).and_then(|()| std::fs::rename(&tmp, &dest));
            match copied {
                Ok(()) => report.imported += 1,
                Err(e) => {
                    let _ = std::fs::remove_file(&tmp);
                    eprintln!("warning: import of {name} failed: {e}");
                    report.invalid += 1;
                }
            }
        }
        report
    }

    /// Exports every valid entry of this cache into `dst` (the reverse
    /// direction of [`ReportCache::merge_from`], same validation and
    /// conflict rules).
    pub fn export_to(&self, dst: &Path) -> MergeReport {
        ReportCache::with_schema(dst, self.schema.clone()).merge_from(&self.dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::SimReport;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "eva-cache-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn report(cost: f64) -> SimReport {
        SimReport {
            scheduler: "test".into(),
            jobs_completed: 3,
            total_cost_dollars: cost,
            instances_launched: 2,
            migrations_per_task: 0.25,
            avg_jct_hours: 1.5,
            avg_idle_hours: 0.1,
            avg_norm_tput: 0.9,
            tasks_per_instance: 1.1,
            gpu_alloc: 0.5,
            cpu_alloc: 0.4,
            ram_alloc: 0.3,
            uptime_cdf: Vec::new(),
            full_reconfig_rate: 0.0,
            makespan_hours: 2.5,
            billed_hours: 4.0,
        }
    }

    #[test]
    fn store_then_lookup_round_trips() {
        let cache = ReportCache::new(tmp_dir("round-trip"));
        assert!(cache.is_empty());
        assert!(cache.lookup::<SimReport>("k1").is_none());
        let r = report(12.5);
        cache.store("k1", &r);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.lookup::<SimReport>("k1"), Some(r));
        assert!(cache.lookup::<SimReport>("k2").is_none());
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn schema_bump_invalidates_entries() {
        let dir = tmp_dir("schema");
        let v1 = ReportCache::with_schema(&dir, "v1");
        v1.store("k", &report(1.0));
        assert!(v1.lookup::<SimReport>("k").is_some());
        let v2 = ReportCache::with_schema(&dir, "v2");
        assert!(
            v2.lookup::<SimReport>("k").is_none(),
            "new schema must not read old entries"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_read_as_miss() {
        let cache = ReportCache::new(tmp_dir("corrupt"));
        cache.store("k", &report(1.0));
        let path = cache.path_for("k");
        std::fs::write(&path, "{ not json").unwrap();
        assert!(cache.lookup::<SimReport>("k").is_none());
        // A tampered key string (hash collision stand-in) is also a miss.
        cache.store("k", &report(1.0));
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replace("\"k\"", "\"other\"")).unwrap();
        assert!(cache.lookup::<SimReport>("k").is_none());
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn stored_bytes_are_deterministic() {
        let a_dir = tmp_dir("det-a");
        let b_dir = tmp_dir("det-b");
        let a = ReportCache::new(&a_dir);
        let b = ReportCache::new(&b_dir);
        a.store("k", &report(0.1));
        b.store("k", &report(0.1));
        let read = |c: &ReportCache| std::fs::read_to_string(c.path_for("k")).unwrap();
        assert_eq!(read(&a), read(&b));
        let _ = std::fs::remove_dir_all(&a_dir);
        let _ = std::fs::remove_dir_all(&b_dir);
    }

    /// A pid above the kernel's pid_max, so `/proc/<pid>` never exists.
    const DEAD_PID: u32 = 4_294_967_295;

    const STALE: Duration = Duration::from_secs(600);

    #[test]
    fn entries_carry_provenance_and_lookup_ignores_it() {
        let dir = tmp_dir("provenance");
        let cache = ReportCache::new(&dir).with_producer("exp_test");
        cache.store("k", &report(1.0));
        let bytes = std::fs::read_to_string(cache.path_for("k")).unwrap();
        assert!(bytes.contains("\"producer\": \"exp_test\""));
        // A differently-stamped (or pre-provenance) entry still hits.
        std::fs::write(cache.path_for("k"), bytes.replace("exp_test", "elsewhere")).unwrap();
        assert!(cache.lookup::<SimReport>("k").is_some());
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.producers, vec![("elsewhere".to_string(), 1)]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn claim_excludes_second_claimant_until_released() {
        let dir = tmp_dir("claim-basic");
        let cache = ReportCache::new(&dir);
        let guard = match cache.try_claim("cell", STALE) {
            ClaimAttempt::Acquired(g) => g,
            ClaimAttempt::Held(info) => panic!("fresh claim held by {info:?}"),
        };
        let info = cache.read_claim("cell").expect("claim file readable");
        assert_eq!(info.pid, std::process::id());
        assert_eq!(info.key, "cell");
        assert!(!info.stealable(STALE), "own live claim must not be stealable");
        match cache.try_claim("cell", STALE) {
            ClaimAttempt::Held(held) => assert_eq!(held.pid, std::process::id()),
            ClaimAttempt::Acquired(_) => panic!("second claimant must be excluded"),
        }
        guard.release();
        assert!(cache.read_claim("cell").is_none(), "release removes the file");
        match cache.try_claim("cell", STALE) {
            ClaimAttempt::Acquired(_) => {}
            ClaimAttempt::Held(info) => panic!("released claim still held by {info:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dropping_the_guard_releases_the_claim() {
        let dir = tmp_dir("claim-drop");
        let cache = ReportCache::new(&dir);
        {
            let _guard = match cache.try_claim("cell", STALE) {
                ClaimAttempt::Acquired(g) => g,
                ClaimAttempt::Held(_) => panic!("fresh claim held"),
            };
            assert!(cache.read_claim("cell").is_some());
        }
        assert!(cache.read_claim("cell").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dead_holder_claim_is_stolen() {
        let dir = tmp_dir("claim-steal");
        let cache = ReportCache::new(&dir);
        // Plant a claim whose holder pid cannot exist on this host.
        std::fs::create_dir_all(&dir).unwrap();
        let planted = format!(
            "{{\"pid\":{DEAD_PID},\"host\":\"{}\",\"ts_ms\":{},\"key\":\"cell\"}}",
            local_host(),
            now_ms()
        );
        std::fs::write(cache.claim_path("cell"), planted).unwrap();
        let info = cache.read_claim("cell").unwrap();
        assert!(info.stealable(STALE), "dead-pid claim must be stealable");
        match cache.try_claim("cell", STALE) {
            ClaimAttempt::Acquired(g) => {
                let retaken = cache.read_claim("cell").unwrap();
                assert_eq!(retaken.pid, std::process::id());
                g.release();
            }
            ClaimAttempt::Held(info) => panic!("stealable claim not stolen: {info:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_sweeps_dead_writer_temps() {
        let dir = tmp_dir("tmp-sweep");
        std::fs::create_dir_all(&dir).unwrap();
        let orphan = dir.join(format!("deadbeefdeadbeef.tmp.{DEAD_PID}"));
        let own = dir.join(format!("deadbeefdeadbeef.tmp.{}", std::process::id()));
        std::fs::write(&orphan, "{}").unwrap();
        std::fs::write(&own, "{}").unwrap();
        let _ = ReportCache::new(&dir);
        assert!(!orphan.exists(), "dead writer's temp must be swept on open");
        assert!(own.exists(), "a live writer's temp must survive");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn verify_validates_rehash_and_reports_litter() {
        let dir = tmp_dir("verify");
        let cache = ReportCache::new(&dir);
        cache.store("good", &report(1.0));
        assert!(cache.verify(STALE).clean());

        // Mis-filed entry: valid JSON whose key hashes elsewhere.
        let good_bytes = std::fs::read_to_string(cache.path_for("good")).unwrap();
        std::fs::write(dir.join("0000000000000000.json"), &good_bytes).unwrap();
        // Corrupt entry.
        std::fs::write(dir.join("1111111111111111.json"), "{ nope").unwrap();
        // Litter.
        std::fs::write(dir.join(format!("2222222222222222.tmp.{DEAD_PID}")), "{}").unwrap();
        let _held = match cache.try_claim("good", STALE) {
            ClaimAttempt::Acquired(g) => g,
            ClaimAttempt::Held(_) => panic!("fresh claim held"),
        };

        let report = cache.verify(STALE);
        assert_eq!(report.entries, 3);
        assert_eq!(report.valid, 1);
        assert_eq!(report.issues.len(), 2);
        assert!(report
            .issues
            .iter()
            .any(|i| i.file == "0000000000000000.json" && i.problem.contains("wrong hash")));
        assert_eq!(report.temps.len(), 1);
        assert_eq!(report.claims.len(), 1);
        assert!(!report.clean());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn prune_removes_retired_corrupt_and_stale() {
        let dir = tmp_dir("prune");
        let old = ReportCache::with_schema(&dir, "eva-v2");
        old.store("legacy", &report(1.0));
        let cache = ReportCache::new(&dir);
        cache.store("current", &report(2.0));
        std::fs::write(dir.join("1111111111111111.json"), "{ nope").unwrap();
        std::fs::write(dir.join(format!("2222222222222222.tmp.{DEAD_PID}")), "{}").unwrap();
        // A dead holder's claim is stale; prune removes it.
        std::fs::write(
            cache.claim_path("current"),
            format!(
                "{{\"pid\":{DEAD_PID},\"host\":\"{}\",\"ts_ms\":{},\"key\":\"current\"}}",
                local_host(),
                now_ms()
            ),
        )
        .unwrap();

        let pruned = cache.prune(None, true, STALE);
        assert_eq!(pruned.removed_retired, 1);
        assert_eq!(pruned.removed_corrupt, 1);
        assert_eq!(pruned.removed_temps, 1);
        assert_eq!(pruned.removed_claims, 1);
        assert_eq!(pruned.kept, 1);
        assert!(cache.lookup::<SimReport>("current").is_some());
        assert!(cache.verify(STALE).clean());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_unions_and_flags_conflicts() {
        let local_dir = tmp_dir("merge-local");
        let foreign_dir = tmp_dir("merge-foreign");
        let local = ReportCache::new(&local_dir);
        let foreign = ReportCache::new(&foreign_dir);
        local.store("shared", &report(1.0));
        local.store("mine", &report(2.0));
        foreign.store("shared", &report(1.0));
        foreign.store("theirs", &report(3.0));
        foreign.store("clash", &report(4.0));
        local.store("clash", &report(5.0));
        std::fs::write(foreign_dir.join("9999999999999999.json"), "{ nope").unwrap();

        let merged = local.merge_from(foreign.dir());
        assert_eq!(merged.imported, 1);
        assert_eq!(merged.skipped_identical, 1);
        assert_eq!(merged.conflicting, 1);
        assert_eq!(merged.invalid, 1);
        assert_eq!(local.lookup::<SimReport>("theirs"), Some(report(3.0)));
        assert_eq!(
            local.lookup::<SimReport>("clash"),
            Some(report(5.0)),
            "conflicts keep the local value"
        );

        // Exporting back is symmetric: only `mine` is new over there.
        let exported = local.export_to(foreign.dir());
        assert_eq!(exported.imported, 1);
        assert_eq!(exported.conflicting, 1);
        assert_eq!(foreign.lookup::<SimReport>("mine"), Some(report(2.0)));
        let _ = std::fs::remove_dir_all(&local_dir);
        let _ = std::fs::remove_dir_all(&foreign_dir);
    }

    #[test]
    fn equivalent_entries_with_different_producers_skip_quietly() {
        let local_dir = tmp_dir("merge-equiv-local");
        let foreign_dir = tmp_dir("merge-equiv-foreign");
        let local = ReportCache::new(&local_dir).with_producer("exp_a");
        let foreign = ReportCache::new(&foreign_dir).with_producer("exp_b");
        local.store("k", &report(1.0));
        foreign.store("k", &report(1.0));
        let merged = local.merge_from(foreign.dir());
        assert_eq!(merged.skipped_equivalent, 1);
        assert_eq!(merged.conflicting, 0);
        let _ = std::fs::remove_dir_all(&local_dir);
        let _ = std::fs::remove_dir_all(&foreign_dir);
    }
}
