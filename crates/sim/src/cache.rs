//! Persistent, content-keyed report cache shared across experiments.
//!
//! Every `exp_*` binary and `eva sweep` runs grids of cells, and many
//! cells recur across experiments (fig4's No-Packing baseline is
//! table13's No-Packing baseline on the same trace). A [`ReportCache`]
//! memoizes finished cell reports on disk — under `results/cache/` by
//! convention — keyed by the cell's **content fingerprint**: trace
//! content hash × scheduler configuration × seed × fidelity ×
//! interference × migration scale × round period × backend, all under a
//! code [`SCHEMA_VERSION`]. A second run of any grid (or another
//! experiment sharing cells) is served from disk, byte-identical to the
//! simulated run.
//!
//! Entries are self-describing JSON files named by the FNV-1a hash of
//! `schema|key`; the full key string is stored inside the entry and
//! verified on lookup, so a (vanishingly unlikely) hash collision reads
//! as a miss, never as a wrong report. Writes go through a temp file +
//! rename, so concurrent writers at worst race to publish identical
//! bytes.
//!
//! **Invalidation**: bump [`SCHEMA_VERSION`] whenever simulation
//! semantics or the serialized report shape change — old entries then
//! miss (their file names hash differently) and are never read again.
//! Mutating a trace changes its content hash and therefore its keys.

use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize, Value};

/// Version tag mixed into every cache key. Bump on any change to
/// simulation semantics, report fields, or key composition.
///
/// v2: shard metadata gained boundary intervals + straddler counts and
/// the table 4/5 artifact rows gained `from_cache` stamps — cached rows
/// from v1 would deserialize without those fields, so they are retired.
///
/// v3: cells gained the adversarial fault axis. Cell fingerprints now
/// carry a `|fault:` component and `CellKey` a `faults` label, so v2
/// entries (which never injected faults but whose keys lack the
/// component) would alias the new fault-free keys while their stored
/// `CellKey` no longer deserializes — retire them wholesale.
pub const SCHEMA_VERSION: &str = "eva-v3";

/// A directory-backed report store keyed by content fingerprints.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportCache {
    dir: PathBuf,
    schema: String,
}

impl ReportCache {
    /// A cache rooted at `dir` (created lazily on first store) under the
    /// current [`SCHEMA_VERSION`].
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ReportCache {
            dir: dir.into(),
            schema: SCHEMA_VERSION.to_string(),
        }
    }

    /// A cache with an explicit schema tag (tests use this to prove that
    /// bumping the version invalidates every entry).
    pub fn with_schema(dir: impl Into<PathBuf>, schema: impl Into<String>) -> Self {
        ReportCache {
            dir: dir.into(),
            schema: schema.into(),
        }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The schema tag entries are keyed under.
    pub fn schema(&self) -> &str {
        &self.schema
    }

    /// Looks up the value stored under `key`, if any. Corrupt, colliding,
    /// or schema-mismatched entries read as a miss.
    pub fn lookup<R: Deserialize>(&self, key: &str) -> Option<R> {
        let text = std::fs::read_to_string(self.path_for(key)).ok()?;
        let value = serde_json::from_str_value(&text).ok()?;
        if value.get_field("schema")?.as_str()? != self.schema
            || value.get_field("key")?.as_str()? != key
        {
            return None;
        }
        R::deserialize(value.get_field("value")?).ok()
    }

    /// Stores `value` under `key`. Failures are reported to stderr and
    /// otherwise ignored: a broken cache must never fail an experiment.
    pub fn store<R: Serialize>(&self, key: &str, value: &R) {
        let entry = Value::Object(vec![
            ("schema".to_string(), Value::String(self.schema.clone())),
            ("key".to_string(), Value::String(key.to_string())),
            ("value".to_string(), value.serialize()),
        ]);
        let json = match serde_json::to_string_pretty(&entry) {
            Ok(json) => json,
            Err(e) => {
                eprintln!("warning: cache entry for `{key}` does not serialize: {e}");
                return;
            }
        };
        if let Err(e) = std::fs::create_dir_all(&self.dir) {
            eprintln!("warning: cannot create cache dir {}: {e}", self.dir.display());
            return;
        }
        let path = self.path_for(key);
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        let result = std::fs::write(&tmp, json).and_then(|()| std::fs::rename(&tmp, &path));
        if let Err(e) = result {
            let _ = std::fs::remove_file(&tmp);
            eprintln!("warning: cache write {} failed: {e}", path.display());
        }
    }

    /// Number of entries currently on disk (diagnostics and tests).
    pub fn len(&self) -> usize {
        std::fs::read_dir(&self.dir)
            .map(|it| {
                it.filter_map(|e| e.ok())
                    .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn path_for(&self, key: &str) -> PathBuf {
        let tagged = format!("{}|{}", self.schema, key);
        self.dir
            .join(format!("{:016x}.json", eva_types::fnv1a64(tagged.as_bytes())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::SimReport;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "eva-cache-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn report(cost: f64) -> SimReport {
        SimReport {
            scheduler: "test".into(),
            jobs_completed: 3,
            total_cost_dollars: cost,
            instances_launched: 2,
            migrations_per_task: 0.25,
            avg_jct_hours: 1.5,
            avg_idle_hours: 0.1,
            avg_norm_tput: 0.9,
            tasks_per_instance: 1.1,
            gpu_alloc: 0.5,
            cpu_alloc: 0.4,
            ram_alloc: 0.3,
            uptime_cdf: Vec::new(),
            full_reconfig_rate: 0.0,
            makespan_hours: 2.5,
            billed_hours: 4.0,
        }
    }

    #[test]
    fn store_then_lookup_round_trips() {
        let cache = ReportCache::new(tmp_dir("round-trip"));
        assert!(cache.is_empty());
        assert!(cache.lookup::<SimReport>("k1").is_none());
        let r = report(12.5);
        cache.store("k1", &r);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.lookup::<SimReport>("k1"), Some(r));
        assert!(cache.lookup::<SimReport>("k2").is_none());
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn schema_bump_invalidates_entries() {
        let dir = tmp_dir("schema");
        let v1 = ReportCache::with_schema(&dir, "v1");
        v1.store("k", &report(1.0));
        assert!(v1.lookup::<SimReport>("k").is_some());
        let v2 = ReportCache::with_schema(&dir, "v2");
        assert!(
            v2.lookup::<SimReport>("k").is_none(),
            "new schema must not read old entries"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_read_as_miss() {
        let cache = ReportCache::new(tmp_dir("corrupt"));
        cache.store("k", &report(1.0));
        let path = cache.path_for("k");
        std::fs::write(&path, "{ not json").unwrap();
        assert!(cache.lookup::<SimReport>("k").is_none());
        // A tampered key string (hash collision stand-in) is also a miss.
        cache.store("k", &report(1.0));
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replace("\"k\"", "\"other\"")).unwrap();
        assert!(cache.lookup::<SimReport>("k").is_none());
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn stored_bytes_are_deterministic() {
        let a_dir = tmp_dir("det-a");
        let b_dir = tmp_dir("det-b");
        let a = ReportCache::new(&a_dir);
        let b = ReportCache::new(&b_dir);
        a.store("k", &report(0.1));
        b.store("k", &report(0.1));
        let read = |c: &ReportCache| std::fs::read_to_string(c.path_for("k")).unwrap();
        assert_eq!(read(&a), read(&b));
        let _ = std::fs::remove_dir_all(&a_dir);
        let _ = std::fs::remove_dir_all(&b_dir);
    }
}
