//! Layer 3: declarative experiment grids and the parallel sweep runner.
//!
//! Every result in the paper is a grid of `(scheduler × trace × seed ×
//! fidelity × interference × backend)` cells. [`SweepGrid`] declares such
//! a grid once; [`SweepRunner`] fans the cells out across scoped worker
//! threads (via the generic [`crate::pool::CellPool`]) and merges the
//! per-cell [`SimReport`]s back **in stable cell order**, so the
//! aggregated result — including its JSON serialization — is
//! byte-identical for any thread count. Determinism holds because each
//! cell's randomness comes solely from its own declared seed.
//!
//! Three schedule optimizations run before the fan-out, none of which
//! can change the merged bytes:
//!
//! * **deduplication** — cells whose content fingerprint is identical
//!   (e.g. No-Packing repeated across an interference axis it cannot
//!   observe) run once, and the shared report fans out to every
//!   duplicate;
//! * **persistent caching** — with [`SweepRunner::with_cache`], finished
//!   reports are stored under their content fingerprint in a
//!   [`ReportCache`] shared by every experiment binary, so reruns (and
//!   other experiments declaring the same cells) skip simulation;
//! * **cost-aware ordering** — unique cells are claimed longest-first
//!   (estimated from trace size, fidelity, and backend weight), so the
//!   pool never tail-blocks on a big cell claimed last.
//!
//! Large traces additionally shard along the arrival axis
//! ([`SweepGrid::shards`]): each window runs as an independent cell —
//! bounding per-cell memory by the window size — and
//! [`SweepResult::spliced`] recombines the window reports into
//! whole-trace reports via [`crate::report::splice`].

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use eva_cloud::FidelityMode;
use eva_types::SimDuration;
use eva_workloads::{ShardMeta, ShardPolicy, TraceHandle};

use crate::backend::BackendKind;
use crate::cache::ReportCache;
use crate::faults::FaultSpec;
use crate::federate::{worker_role, Federation};
use crate::metrics::SimReport;
use crate::pool::{CellPool, PoolStats, RunPlan};
use crate::report::{splice, PartitionAudit, SplicedReport};
use crate::runner::{InterferenceSpec, SchedulerKind, SimConfig};

/// One value of the trace axis: a shared trace (or one shard window of
/// it) under the label reports are filed under.
#[derive(Debug, Clone)]
struct TraceEntry {
    label: String,
    handle: TraceHandle,
    shard: Option<ShardMeta>,
    /// Relative simulation cost of the trace (`jobs + tasks`), computed
    /// once when the axis entry is built — shard windows reuse the weight
    /// cached on their [`ShardMeta`] — so longest-first planning never
    /// rescans a job vector per cell.
    weight: u64,
}

impl TraceEntry {
    fn new(label: String, handle: TraceHandle, shard: Option<ShardMeta>) -> Self {
        let weight = match &shard {
            Some(meta) => meta.weight,
            None => handle
                .jobs()
                .iter()
                .map(|j| 1 + j.num_tasks() as u64)
                .sum(),
        };
        TraceEntry {
            label,
            handle,
            shard,
            weight,
        }
    }
}

/// A declarative grid of simulation cells.
///
/// Axes default to single paper-standard values; every `Vec`-valued axis
/// multiplies the cell count. Cells expand in a fixed nested order
/// (trace ▸ shard ▸ backend ▸ interference ▸ migration scale ▸ fidelity ▸
/// seed ▸ scheduler), with schedulers innermost so each block of
/// `schedulers.len()` cells forms one comparison row whose first entry is
/// the baseline.
///
/// Traces are held by [`TraceHandle`] — adding the same trace to several
/// grids, or expanding it into thousands of cells, never clones the job
/// vector.
#[derive(Debug, Clone)]
pub struct SweepGrid {
    traces: Vec<TraceEntry>,
    schedulers: Vec<(String, SchedulerKind)>,
    seeds: Vec<u64>,
    fidelities: Vec<FidelityMode>,
    interferences: Vec<InterferenceSpec>,
    migration_scales: Vec<f64>,
    backends: Vec<BackendKind>,
    faults: Vec<FaultSpec>,
    round_period: SimDuration,
}

impl SweepGrid {
    /// A grid over one trace with paper-default axes and no schedulers
    /// yet (add them with [`SweepGrid::scheduler`] or
    /// [`SweepGrid::paper_schedulers`]).
    pub fn new(trace_label: impl Into<String>, trace: impl Into<TraceHandle>) -> Self {
        SweepGrid {
            traces: vec![TraceEntry::new(trace_label.into(), trace.into(), None)],
            schedulers: Vec::new(),
            seeds: vec![42],
            fidelities: vec![FidelityMode::Stochastic],
            interferences: vec![InterferenceSpec::Measured],
            migration_scales: vec![1.0],
            backends: vec![BackendKind::Sim],
            faults: vec![FaultSpec::none()],
            round_period: SimDuration::from_mins(5),
        }
    }

    /// Adds another trace axis value.
    pub fn trace(mut self, label: impl Into<String>, trace: impl Into<TraceHandle>) -> Self {
        self.traces.push(TraceEntry::new(label.into(), trace.into(), None));
        self
    }

    /// Shards every (not yet sharded) trace axis value into arrival-time
    /// windows; each window runs as an independent cell whose peak memory
    /// is bounded by the window size. Windows keep the base trace's
    /// label and gain a [`ShardMeta`] in their cell keys;
    /// [`SweepResult::spliced`] recombines their reports. A policy that
    /// resolves to a single window leaves the trace unsharded.
    pub fn shards(mut self, policy: ShardPolicy) -> Self {
        self.traces = self
            .traces
            .drain(..)
            .flat_map(|entry| {
                if entry.shard.is_some() {
                    return vec![entry];
                }
                let windows = entry.handle.shard(policy);
                if windows.len() <= 1 {
                    return vec![entry];
                }
                windows
                    .into_iter()
                    .map(|w| TraceEntry::new(entry.label.clone(), w.handle, Some(w.meta)))
                    .collect()
            })
            .collect();
        self
    }

    /// Adds one named scheduler (names distinguish Eva variants that
    /// share the `Eva` report label).
    pub fn scheduler(mut self, name: impl Into<String>, kind: SchedulerKind) -> Self {
        self.schedulers.push((name.into(), kind));
        self
    }

    /// Adds schedulers by their canonical CLI names.
    pub fn schedulers_by_name(mut self, names: &[&str]) -> Result<Self, String> {
        for name in names {
            let kind = SchedulerKind::from_name(name)?;
            self.schedulers.push((name.to_string(), kind));
        }
        Ok(self)
    }

    /// Adds the five §6.1 schedulers in the paper's reporting order.
    pub fn paper_schedulers(mut self) -> Self {
        for kind in SchedulerKind::paper_set() {
            self.schedulers.push((kind.label().to_string(), kind));
        }
        self
    }

    /// Replaces the seed axis.
    pub fn seeds(mut self, seeds: impl Into<Vec<u64>>) -> Self {
        self.seeds = seeds.into();
        self
    }

    /// Replaces the fidelity axis.
    pub fn fidelities(mut self, fidelities: impl Into<Vec<FidelityMode>>) -> Self {
        self.fidelities = fidelities.into();
        self
    }

    /// Replaces the interference axis.
    pub fn interferences(mut self, specs: impl Into<Vec<InterferenceSpec>>) -> Self {
        self.interferences = specs.into();
        self
    }

    /// Replaces the migration-delay-scale axis.
    pub fn migration_scales(mut self, scales: impl Into<Vec<f64>>) -> Self {
        self.migration_scales = scales.into();
        self
    }

    /// Replaces the execution-backend axis (default: sim only).
    pub fn backends(mut self, backends: impl Into<Vec<BackendKind>>) -> Self {
        self.backends = backends.into();
        self
    }

    /// Replaces the fault axis (default: fault-free only). Each value
    /// compiles into its own deterministic [`crate::FaultPlan`] per cell,
    /// turning any existing grid into a robustness experiment.
    pub fn faults(mut self, faults: impl Into<Vec<FaultSpec>>) -> Self {
        self.faults = faults.into();
        self
    }

    /// Sets the scheduling round period for every cell.
    pub fn round_period(mut self, period: SimDuration) -> Self {
        self.round_period = period;
        self
    }

    /// Number of schedulers per comparison block.
    pub fn schedulers_per_block(&self) -> usize {
        self.schedulers.len()
    }

    /// Number of trace-axis entries. After [`SweepGrid::shards`] this is
    /// the number of windows actually produced (empty windows are
    /// dropped), which can be fewer than the requested shard count.
    pub fn trace_axis_len(&self) -> usize {
        self.traces.len()
    }

    /// The shard metadata of every sharded trace-axis entry, in axis
    /// order — what a caller needs to report what the planner actually
    /// did (window count, jobs per window, boundary straddlers). Empty
    /// when no trace is sharded (e.g. the policy resolved to a single
    /// window).
    pub fn shard_metas(&self) -> Vec<&ShardMeta> {
        self.traces.iter().filter_map(|e| e.shard.as_ref()).collect()
    }

    /// Total number of cells the grid expands to (shard windows count as
    /// distinct trace axis values).
    pub fn cell_count(&self) -> usize {
        self.traces.len()
            * self.backends.len()
            * self.faults.len()
            * self.interferences.len()
            * self.migration_scales.len()
            * self.fidelities.len()
            * self.seeds.len()
            * self.schedulers.len()
    }

    /// Cells that will actually execute after deduplication.
    pub fn unique_cell_count(&self) -> usize {
        let cells = self.cells();
        RunPlan::build(
            cells.len(),
            &|i| self.fingerprint(&cells[i]),
            &|i| self.cost_estimate(&cells[i]),
        )
        .unique_count()
    }

    /// Expands the grid into its cells in stable order.
    pub fn cells(&self) -> Vec<SweepCell> {
        let mut cells = Vec::with_capacity(self.cell_count());
        for (trace_idx, entry) in self.traces.iter().enumerate() {
            for &backend in &self.backends {
                for &faults in &self.faults {
                    for &interference in &self.interferences {
                        for &scale in &self.migration_scales {
                            for &fidelity in &self.fidelities {
                                for &seed in &self.seeds {
                                    for (name, kind) in &self.schedulers {
                                        cells.push(SweepCell {
                                            index: cells.len(),
                                            trace_index: trace_idx,
                                            key: CellKey {
                                                trace: entry.label.clone(),
                                                shard: entry.shard.clone(),
                                                scheduler: name.clone(),
                                                seed,
                                                fidelity: fidelity_label(fidelity).to_string(),
                                                interference: interference.label(),
                                                migration_delay_scale: scale,
                                                backend: backend.label().to_string(),
                                                faults: faults.label(),
                                            },
                                            scheduler: kind.clone(),
                                            seed,
                                            fidelity,
                                            interference,
                                            migration_delay_scale: scale,
                                            backend,
                                            faults,
                                            round_period: self.round_period,
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        cells
    }

    /// Builds the [`SimConfig`] for one cell. The trace is shared by
    /// handle — this is a reference-count bump, not a job-vector clone,
    /// even for deduplicated cells.
    pub fn cell_config(&self, cell: &SweepCell) -> SimConfig {
        SimConfig {
            trace: self.traces[cell.trace_index].handle.clone(),
            scheduler: cell.scheduler.clone(),
            seed: cell.seed,
            round_period: cell.round_period,
            fidelity: cell.fidelity,
            interference: cell.interference,
            migration_delay_scale: cell.migration_delay_scale,
            faults: cell.faults,
            reference_full_scan: false,
            retire_completed: false,
        }
    }

    /// Content identity of the *work* a cell performs: the trace's
    /// content hash plus every semantic knob. Two cells with equal
    /// fingerprints produce byte-identical reports — within a grid the
    /// runner executes one and fans the report out, and across
    /// experiments the fingerprint is the persistent cache key (the
    /// [`ReportCache`] adds the code schema version).
    ///
    /// Interference is normalized away under No-Packing: it never
    /// co-locates tasks, so the ground-truth interference model is
    /// unobservable — fig4-style grids then run one No-Packing cell per
    /// `(trace, seed, fidelity, scale)` instead of one per interference
    /// level.
    pub(crate) fn fingerprint(&self, cell: &SweepCell) -> String {
        let interference = match cell.scheduler {
            SchedulerKind::NoPacking => "-".to_string(),
            _ => cell.interference.label(),
        };
        format!(
            "trace:{}|sched:{:?}|seed:{}|fid:{}|int:{}|scale:{}|period:{}ms|backend:{}|fault:{}",
            self.traces[cell.trace_index].handle.fingerprint_hex(),
            cell.scheduler,
            cell.seed,
            fidelity_label(cell.fidelity),
            interference,
            cell.migration_delay_scale,
            self.round_period.as_millis(),
            cell.backend.label(),
            cell.faults.label(),
        )
    }

    /// Rough relative runtime of a cell, for longest-first scheduling:
    /// the trace's cached `jobs + tasks` weight scaled by fidelity
    /// (stochastic samples delays) and backend weight (live = simulate +
    /// replay on real threads). The weight is computed once per trace
    /// axis entry — shard windows carry it on their [`ShardMeta`] — so
    /// planning a million-job grid never rescans a job vector.
    pub(crate) fn cost_estimate(&self, cell: &SweepCell) -> u64 {
        let weight = self.traces[cell.trace_index].weight.max(1);
        let fidelity = match cell.fidelity {
            FidelityMode::Stochastic => 3,
            FidelityMode::Nominal => 2,
        };
        let backend = match cell.backend {
            BackendKind::Sim => 1,
            BackendKind::Live => 3,
        };
        weight * fidelity * backend
    }
}

/// Stable textual form of a fidelity mode.
pub fn fidelity_label(mode: FidelityMode) -> &'static str {
    match mode {
        FidelityMode::Nominal => "nominal",
        FidelityMode::Stochastic => "stochastic",
    }
}

/// One expanded grid cell, ready to run.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Position in the grid's stable expansion order.
    pub index: usize,
    /// Index into the grid's trace axis.
    pub trace_index: usize,
    /// The serializable identity of the cell.
    pub key: CellKey,
    /// The scheduler under test.
    pub scheduler: SchedulerKind,
    /// RNG seed for the cell.
    pub seed: u64,
    /// Delay-model fidelity.
    pub fidelity: FidelityMode,
    /// Ground-truth interference.
    pub interference: InterferenceSpec,
    /// Migration-delay multiplier.
    pub migration_delay_scale: f64,
    /// Execution backend the cell runs on.
    pub backend: BackendKind,
    /// Fault-axis value the cell injects.
    pub faults: FaultSpec,
    /// Scheduling round period.
    pub round_period: SimDuration,
}

/// Serializable identity of a cell inside sweep results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellKey {
    /// Trace-axis label (shard windows share their base trace's label).
    pub trace: String,
    /// Which arrival-time window of the trace this is (`None` when the
    /// trace runs whole).
    pub shard: Option<ShardMeta>,
    /// Scheduler name as declared on the grid.
    pub scheduler: String,
    /// RNG seed.
    pub seed: u64,
    /// Fidelity label (`nominal`/`stochastic`).
    pub fidelity: String,
    /// Interference label (`measured`/`uniform(t)`).
    pub interference: String,
    /// Migration-delay multiplier.
    pub migration_delay_scale: f64,
    /// Execution backend label (`sim`/`live`).
    pub backend: String,
    /// Fault-axis label (`none`, `preempt-storm:1`, …).
    pub faults: String,
}

impl CellKey {
    /// `"i/n"` for shard cells, `"-"` for whole-trace cells.
    pub fn shard_label(&self) -> String {
        self.shard
            .as_ref()
            .map(|s| s.label())
            .unwrap_or_else(|| "-".to_string())
    }

    /// This key with the shard component erased — the identity of the
    /// whole-trace cell a shard cell contributes to.
    pub fn logical(&self) -> CellKey {
        CellKey {
            shard: None,
            ..self.clone()
        }
    }
}

/// One finished cell: its identity plus its report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellOutcome {
    /// Which cell this is.
    pub key: CellKey,
    /// The cell's simulation report.
    pub report: SimReport,
}

/// All cell outcomes of a sweep, in stable grid order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepResult {
    /// Outcomes in the grid's expansion order.
    pub cells: Vec<CellOutcome>,
    /// Schedulers per comparison block (the innermost axis length).
    pub schedulers_per_block: usize,
}

impl SweepResult {
    /// The reports in cell order.
    pub fn reports(&self) -> impl Iterator<Item = &SimReport> {
        self.cells.iter().map(|c| &c.report)
    }

    /// Comparison blocks: consecutive runs over the same axes that differ
    /// only in scheduler (the first entry is the declared baseline).
    pub fn blocks(&self) -> impl Iterator<Item = &[CellOutcome]> {
        self.cells.chunks(self.schedulers_per_block.max(1))
    }

    /// First outcome for a scheduler name, if any.
    pub fn first_for(&self, scheduler: &str) -> Option<&CellOutcome> {
        self.cells.iter().find(|c| c.key.scheduler == scheduler)
    }

    /// Recombines shard cells into whole-trace outcomes via
    /// [`crate::report::splice`], preserving first-appearance cell order.
    /// Whole-trace cells pass through exactly; shard groups produce one
    /// spliced outcome whose approximate metrics are flagged. The result
    /// is byte-identical for any thread count, like the sweep itself.
    pub fn spliced(&self) -> SplicedResult {
        let mut groups: Vec<(CellKey, Vec<(ShardMeta, SimReport)>)> = Vec::new();
        let mut index: BTreeMap<String, usize> = BTreeMap::new();
        for cell in &self.cells {
            let logical = cell.key.logical();
            let group_key = serde_json::to_string(&logical).expect("cell keys serialize");
            let meta = cell.key.shard.clone().unwrap_or(ShardMeta {
                index: 0,
                count: 1,
                offset: SimDuration::ZERO,
                end: None,
                jobs: 0,
                tasks: 0,
                straddlers: 0,
                weight: 0,
            });
            match index.get(&group_key) {
                Some(&g) => groups[g].1.push((meta, cell.report.clone())),
                None => {
                    index.insert(group_key, groups.len());
                    groups.push((logical, vec![(meta, cell.report.clone())]));
                }
            }
        }
        SplicedResult {
            cells: groups
                .into_iter()
                .map(|(key, parts)| {
                    let SplicedReport {
                        report,
                        shards,
                        inexact_metrics,
                        audit,
                    } = splice(&parts);
                    SplicedOutcome {
                        key,
                        report,
                        shards,
                        inexact_metrics,
                        audit,
                    }
                })
                .collect(),
            schedulers_per_block: self.schedulers_per_block,
        }
    }

    /// Deterministic pretty JSON of the whole sweep (byte-identical across
    /// thread counts because cell order is stable).
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("SweepResult serializes")
    }
}

/// One whole-trace outcome recombined from shard cells.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SplicedOutcome {
    /// The logical (shard-erased) cell identity.
    pub key: CellKey,
    /// The whole-trace report.
    pub report: SimReport,
    /// Shard reports spliced into it (1 = direct single-cell result).
    pub shards: usize,
    /// Metrics whose spliced value is approximate (empty when exact).
    pub inexact_metrics: Vec<String>,
    /// The partition audit: whether the windows spliced here were
    /// verified free of boundary straddlers (see
    /// [`crate::report::PartitionAudit`]).
    pub audit: PartitionAudit,
}

/// The whole-trace view of a (possibly sharded) sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SplicedResult {
    /// Whole-trace outcomes in first-appearance cell order.
    pub cells: Vec<SplicedOutcome>,
    /// Schedulers per comparison block.
    pub schedulers_per_block: usize,
}

impl SplicedResult {
    /// Comparison blocks, as on [`SweepResult::blocks`].
    pub fn blocks(&self) -> impl Iterator<Item = &[SplicedOutcome]> {
        self.cells.chunks(self.schedulers_per_block.max(1))
    }

    /// First whole-trace outcome for a scheduler name, if any.
    pub fn first_for(&self, scheduler: &str) -> Option<&SplicedOutcome> {
        self.cells.iter().find(|c| c.key.scheduler == scheduler)
    }

    /// The worst partition audit across outcomes — the one line a caller
    /// should print. Every scheduler/seed splices the same windows, so
    /// audits repeat; taking the dirtiest avoids double-counting
    /// straddlers. `None` when the result has no cells.
    pub fn audit(&self) -> Option<PartitionAudit> {
        self.cells
            .iter()
            .map(|c| c.audit)
            .max_by_key(|a| (a.straddlers, a.windows))
    }

    /// Deterministic pretty JSON.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("SplicedResult serializes")
    }
}

/// The machine-readable artifact of a (possibly sharded) sweep: the raw
/// per-cell rows plus the whole-trace spliced view, which carries the
/// [`PartitionAudit`] per outcome. Saving both keeps window-level data
/// available while making sure no artifact presents shard fragments as
/// whole-trace results. `eva sweep --json` and the `exp_*` binaries
/// share this shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepArtifact {
    /// Raw cell outcomes (one per shard window × axes when sharded).
    pub sweep: SweepResult,
    /// The whole-trace view: shard groups spliced and audited.
    pub spliced: SplicedResult,
}

impl SweepArtifact {
    /// Builds the artifact, deriving the spliced view from the sweep.
    pub fn new(sweep: SweepResult) -> Self {
        let spliced = sweep.spliced();
        SweepArtifact { sweep, spliced }
    }

    /// Deterministic pretty JSON (byte-identical across thread counts).
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("SweepArtifact serializes")
    }
}

/// A named experiment: a grid plus the label reports are filed under.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Name used in headers and artifact files.
    pub name: String,
    /// The grid to run.
    pub grid: SweepGrid,
}

impl Experiment {
    /// Wraps a grid under a name.
    pub fn new(name: impl Into<String>, grid: SweepGrid) -> Self {
        Experiment {
            name: name.into(),
            grid,
        }
    }

    /// Runs the grid on `threads` workers (0 = all available cores).
    pub fn run(&self, threads: usize) -> SweepResult {
        SweepRunner::new(threads).run(&self.grid)
    }
}

/// Multi-threaded executor for [`SweepGrid`]s.
///
/// Workers claim deduplicated cells — longest first — from a shared
/// atomic cursor, run each on its cell's backend (serving it from the
/// optional persistent [`ReportCache`] when warm), and write the outcome
/// into the cell's own slot, so the merged result is independent of
/// scheduling order, thread count, and cache state.
#[derive(Debug, Clone)]
pub struct SweepRunner {
    threads: usize,
    cache: Option<ReportCache>,
    federation: Option<Federation>,
}

impl SweepRunner {
    /// A runner over `threads` workers; 0 selects the machine's available
    /// parallelism.
    pub fn new(threads: usize) -> Self {
        SweepRunner {
            threads: CellPool::new(threads).threads(),
            cache: None,
            federation: None,
        }
    }

    /// Attaches a persistent report cache: representatives found in the
    /// cache skip simulation, and fresh reports are stored for the next
    /// run (or the next experiment sharing the cell).
    pub fn with_cache(mut self, cache: ReportCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Federates the sweep across processes (see [`crate::federate`]):
    /// the run claims representatives via the attached cache dir and
    /// settles cells peers claimed, merging byte-identically to a
    /// single-process run. Requires a cache ([`SweepRunner::with_cache`])
    /// — without one the runner warns and executes locally. Spawning of
    /// the `procs - 1` worker processes happens on the first federated
    /// run ([`Federation::ensure_workers`]).
    pub fn with_federation(mut self, federation: Federation) -> Self {
        self.federation = Some(federation);
        self
    }

    /// The attached cache, if any.
    pub fn cache(&self) -> Option<&ReportCache> {
        self.cache.as_ref()
    }

    /// The worker count this runner was resolved to.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every cell of `grid` and merges outcomes in stable cell order.
    pub fn run(&self, grid: &SweepGrid) -> SweepResult {
        self.run_with_stats(grid).0
    }

    /// Runs the grid and also reports what executed vs what the
    /// deduplicator and cache absorbed.
    ///
    /// Identical cells run once (their report fans out to every
    /// duplicate), cached cells don't run at all, and unique cells are
    /// claimed longest-first; none of these optimizations can change the
    /// merged bytes, because duplicate cells would have produced
    /// byte-identical reports anyway and every report lands in its cell's
    /// own slot.
    pub fn run_with_stats(&self, grid: &SweepGrid) -> (SweepResult, PoolStats) {
        let cells = grid.cells();
        let pool = CellPool::new(self.threads);
        let fingerprint = |i: usize| grid.fingerprint(&cells[i]);
        let cost = |i: usize| grid.cost_estimate(&cells[i]);
        let run = |i: usize| {
            let cell = &cells[i];
            let cfg = grid.cell_config(cell);
            cell.backend.backend().run(&cfg)
        };
        let federation = self
            .federation
            .as_ref()
            .filter(|f| f.procs() > 1 || worker_role());
        let (reports, stats) = match (federation, self.cache.as_ref()) {
            (Some(fed), Some(cache)) => {
                fed.ensure_workers();
                let (reports, _, stats) = pool.run_federated(
                    cells.len(),
                    &fingerprint,
                    &cost,
                    cache,
                    fed.claim_timing(),
                    fed.claim_stride(),
                    &run,
                );
                (reports, stats)
            }
            (Some(_), None) => {
                eprintln!("warning: federation needs a cache dir; running in-process");
                pool.run(cells.len(), &fingerprint, &cost, None, &run)
            }
            (None, cache) => pool.run(cells.len(), &fingerprint, &cost, cache, &run),
        };
        let result = SweepResult {
            cells: cells
                .iter()
                .zip(reports)
                .map(|(cell, report)| CellOutcome {
                    key: cell.key.clone(),
                    report,
                })
                .collect(),
            schedulers_per_block: grid.schedulers_per_block(),
        };
        (result, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_workloads::{SyntheticTraceConfig, Trace};

    fn tiny_trace(jobs: usize) -> Trace {
        SyntheticTraceConfig {
            num_jobs: jobs,
            mean_interarrival: SimDuration::from_mins(12),
            duration: eva_workloads::UniformHours::new(0.2, 0.5),
            single_task_only: true,
        }
        .generate(7)
    }

    fn tiny_grid() -> SweepGrid {
        SweepGrid::new("tiny", tiny_trace(5))
            .schedulers_by_name(&["no-packing", "stratus"])
            .unwrap()
            .seeds(vec![1, 2])
            .fidelities(vec![FidelityMode::Nominal])
    }

    #[test]
    fn cells_expand_in_stable_scheduler_innermost_order() {
        let cells = tiny_grid().cells();
        assert_eq!(cells.len(), 4);
        let keys: Vec<(u64, &str)> = cells
            .iter()
            .map(|c| (c.key.seed, c.key.scheduler.as_str()))
            .collect();
        assert_eq!(
            keys,
            vec![
                (1, "no-packing"),
                (1, "stratus"),
                (2, "no-packing"),
                (2, "stratus"),
            ]
        );
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
            assert!(c.key.shard.is_none());
            assert_eq!(c.key.shard_label(), "-");
        }
    }

    #[test]
    fn parallel_run_matches_serial_run_exactly() {
        let grid = tiny_grid();
        let serial = SweepRunner::new(1).run(&grid);
        let parallel = SweepRunner::new(4).run(&grid);
        assert_eq!(serial, parallel);
        assert_eq!(serial.to_json_pretty(), parallel.to_json_pretty());
    }

    #[test]
    fn more_threads_than_cells_is_fine() {
        let grid = SweepGrid::new("one", tiny_trace(3))
            .scheduler("No-Packing", SchedulerKind::NoPacking)
            .fidelities(vec![FidelityMode::Nominal]);
        let result = SweepRunner::new(64).run(&grid);
        assert_eq!(result.cells.len(), 1);
        assert_eq!(result.cells[0].report.jobs_completed, 3);
    }

    #[test]
    fn blocks_group_by_scheduler_axis() {
        let result = SweepRunner::new(2).run(&tiny_grid());
        let blocks: Vec<_> = result.blocks().collect();
        assert_eq!(blocks.len(), 2, "one block per seed");
        for block in blocks {
            assert_eq!(block.len(), 2);
            assert_eq!(block[0].key.scheduler, "no-packing");
        }
        assert!(result.first_for("stratus").is_some());
        assert!(result.first_for("owl").is_none());
    }

    #[test]
    fn experiment_wraps_grid_and_runs() {
        let exp = Experiment::new("tiny-exp", tiny_grid());
        assert_eq!(exp.name, "tiny-exp");
        let result = exp.run(2);
        assert_eq!(result.cells.len(), exp.grid.cell_count());
    }

    #[test]
    fn runner_zero_resolves_to_available_parallelism() {
        assert!(SweepRunner::new(0).threads() >= 1);
        assert_eq!(SweepRunner::new(3).threads(), 3);
    }

    #[test]
    fn no_packing_cells_dedup_across_interference_axis() {
        // fig4's shape: an interference axis No-Packing cannot observe.
        let grid = SweepGrid::new("fig4", tiny_trace(4))
            .schedulers_by_name(&["no-packing", "owl"])
            .unwrap()
            .interferences(vec![
                InterferenceSpec::Uniform(1.0),
                InterferenceSpec::Uniform(0.9),
                InterferenceSpec::Uniform(0.8),
            ])
            .fidelities(vec![FidelityMode::Nominal]);
        assert_eq!(grid.cell_count(), 6);
        // One No-Packing run + three Owl runs.
        assert_eq!(grid.unique_cell_count(), 4);
        // Dedup must not change results: every No-Packing report equals
        // the representative's, and each cell keeps its own key.
        let result = SweepRunner::new(2).run(&grid);
        assert_eq!(result.cells.len(), 6);
        let np: Vec<_> = result
            .cells
            .iter()
            .filter(|c| c.key.scheduler == "no-packing")
            .collect();
        assert_eq!(np.len(), 3);
        assert!(np.iter().all(|c| c.report == np[0].report));
        assert_eq!(np[1].key.interference, "uniform(0.9)");
    }

    #[test]
    fn dedup_fans_out_reports_identical_to_direct_per_cell_runs() {
        // The guard for the dedup premise: every fanned-out report must
        // equal what running the cell's own config directly produces —
        // in particular No-Packing under each interference level it was
        // deduplicated across. If No-Packing ever becomes
        // interference-sensitive, this fails.
        let grid = SweepGrid::new("guard", tiny_trace(4))
            .schedulers_by_name(&["no-packing", "eva"])
            .unwrap()
            .interferences(vec![
                InterferenceSpec::Measured,
                InterferenceSpec::Uniform(0.85),
            ])
            .fidelities(vec![FidelityMode::Nominal]);
        assert!(grid.unique_cell_count() < grid.cell_count());
        let result = SweepRunner::new(2).run(&grid);
        for (cell, outcome) in grid.cells().iter().zip(&result.cells) {
            let direct = crate::runner::run_simulation(&grid.cell_config(cell));
            assert_eq!(
                outcome.report, direct,
                "deduped report diverges from a direct run of {:?}",
                cell.key
            );
        }
    }

    #[test]
    fn literal_duplicate_cells_dedup_too() {
        let grid = SweepGrid::new("dup", tiny_trace(3))
            .scheduler("stratus-a", SchedulerKind::Stratus)
            .scheduler("stratus-b", SchedulerKind::Stratus)
            .fidelities(vec![FidelityMode::Nominal]);
        assert_eq!(grid.cell_count(), 2);
        assert_eq!(grid.unique_cell_count(), 1);
        let result = SweepRunner::new(2).run(&grid);
        assert_eq!(result.cells[0].report, result.cells[1].report);
        assert_eq!(result.cells[0].key.scheduler, "stratus-a");
        assert_eq!(result.cells[1].key.scheduler, "stratus-b");
    }

    #[test]
    fn identical_trace_content_dedups_across_axis_entries() {
        // The fingerprint is content-based, so two trace axis values with
        // equal jobs — however constructed — share representatives.
        let grid = SweepGrid::new("a", tiny_trace(3))
            .trace("b", tiny_trace(3))
            .scheduler("No-Packing", SchedulerKind::NoPacking)
            .fidelities(vec![FidelityMode::Nominal]);
        assert_eq!(grid.cell_count(), 2);
        assert_eq!(grid.unique_cell_count(), 1);
    }

    #[test]
    fn execution_order_is_longest_first_and_deterministic() {
        let big = tiny_trace(9);
        let grid = SweepGrid::new("small", tiny_trace(2))
            .trace("big", big)
            .scheduler("No-Packing", SchedulerKind::NoPacking)
            .fidelities(vec![FidelityMode::Nominal, FidelityMode::Stochastic]);
        let cells = grid.cells();
        let build = || {
            RunPlan::build(
                cells.len(),
                &|i| grid.fingerprint(&cells[i]),
                &|i| grid.cost_estimate(&cells[i]),
            )
        };
        let plan = build();
        assert_eq!(plan.unique_count(), 4);
        // Big-trace stochastic first, ties broken by cell index.
        let costs: Vec<u64> = plan
            .order
            .iter()
            .map(|&i| grid.cost_estimate(&cells[i]))
            .collect();
        assert!(costs.windows(2).all(|w| w[0] >= w[1]), "{costs:?}");
        assert_eq!(plan.order, build().order);
    }

    #[test]
    fn backend_axis_doubles_cells_and_labels_keys() {
        let grid = tiny_grid().backends(vec![BackendKind::Sim, BackendKind::Live]);
        assert_eq!(grid.cell_count(), 8);
        let cells = grid.cells();
        assert!(cells[..4].iter().all(|c| c.key.backend == "sim"));
        assert!(cells[4..].iter().all(|c| c.key.backend == "live"));
        // Sim and live cells never share a fingerprint.
        assert_eq!(grid.unique_cell_count(), 8);
    }

    #[test]
    fn shards_expand_the_trace_axis_and_label_cells() {
        // Cluster arrivals so equal-width windows are all non-empty.
        let trace = tiny_trace(8);
        let grid = SweepGrid::new("whole", trace.clone())
            .shards(ShardPolicy::MaxJobs(3))
            .scheduler("No-Packing", SchedulerKind::NoPacking)
            .fidelities(vec![FidelityMode::Nominal]);
        assert_eq!(grid.cell_count(), 3, "8 jobs in windows of ≤3");
        let cells = grid.cells();
        let labels: Vec<String> = cells.iter().map(|c| c.key.shard_label()).collect();
        assert_eq!(labels, vec!["1/3", "2/3", "3/3"]);
        assert!(cells.iter().all(|c| c.key.trace == "whole"));
        // Shard cells carry only their window's jobs.
        let sizes: Vec<usize> = cells
            .iter()
            .map(|c| grid.cell_config(c).trace.len())
            .collect();
        assert_eq!(sizes, vec![3, 3, 2]);
    }

    #[test]
    fn spliced_regroups_shard_cells_into_whole_trace_outcomes() {
        let trace = tiny_trace(8);
        let sharded = SweepGrid::new("t", trace.clone())
            .shards(ShardPolicy::MaxJobs(3))
            .schedulers_by_name(&["no-packing", "stratus"])
            .unwrap()
            .fidelities(vec![FidelityMode::Nominal]);
        let result = SweepRunner::new(2).run(&sharded);
        assert_eq!(result.cells.len(), 6);
        let spliced = result.spliced();
        assert_eq!(spliced.cells.len(), 2, "one logical cell per scheduler");
        for outcome in &spliced.cells {
            assert!(outcome.key.shard.is_none());
            assert_eq!(outcome.shards, 3);
            assert!(!outcome.inexact_metrics.is_empty());
            assert_eq!(outcome.report.jobs_completed, 8);
        }
        assert_eq!(spliced.blocks().count(), 1);
        // An unsharded sweep splices to itself, exactly.
        let whole = SweepRunner::new(2).run(
            &SweepGrid::new("t", trace)
                .schedulers_by_name(&["no-packing", "stratus"])
                .unwrap()
                .fidelities(vec![FidelityMode::Nominal]),
        );
        let passthrough = whole.spliced();
        assert_eq!(passthrough.cells.len(), 2);
        for (o, c) in passthrough.cells.iter().zip(&whole.cells) {
            assert_eq!(o.report, c.report);
            assert_eq!(o.shards, 1);
            assert!(o.inexact_metrics.is_empty());
        }
    }

    #[test]
    fn cell_keys_round_trip_with_and_without_shard() {
        let sharded = SweepGrid::new("t", tiny_trace(8))
            .shards(ShardPolicy::MaxJobs(3))
            .scheduler("No-Packing", SchedulerKind::NoPacking);
        for cell in sharded.cells() {
            let json = serde_json::to_string(&cell.key).unwrap();
            let back: CellKey = serde_json::from_str(&json).unwrap();
            assert_eq!(cell.key, back);
            assert!(back.shard.is_some());
            assert!(back.logical().shard.is_none());
        }
        let plain = tiny_grid().cells();
        let json = serde_json::to_string(&plain[0].key).unwrap();
        let back: CellKey = serde_json::from_str(&json).unwrap();
        assert_eq!(plain[0].key, back);
        assert!(back.shard.is_none());
    }

    #[test]
    fn federated_coordinator_alone_matches_plain_run() {
        // procs = 1 federates nothing; the claim protocol itself is
        // covered by pool tests and tests/federated_sweep.rs drives real
        // multi-process runs through the CLI binary.
        let dir = std::env::temp_dir().join(format!("eva-sweep-fed-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let grid = tiny_grid();
        let plain = SweepRunner::new(2).run(&grid);
        let fed = SweepRunner::new(2)
            .with_cache(ReportCache::new(&dir))
            .with_federation(Federation::new(1))
            .run(&grid);
        assert_eq!(plain.to_json_pretty(), fed.to_json_pretty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cached_rerun_is_byte_identical_and_simulates_nothing() {
        let dir = std::env::temp_dir().join(format!("eva-sweep-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let grid = tiny_grid();
        let runner = SweepRunner::new(2).with_cache(ReportCache::new(&dir));
        let (first, s1) = runner.run_with_stats(&grid);
        assert_eq!(s1.executed, s1.unique);
        assert_eq!(s1.cache_hits, 0);
        let (second, s2) = runner.run_with_stats(&grid);
        assert!(s2.all_cached(), "{}", s2.summary());
        assert_eq!(first.to_json_pretty(), second.to_json_pretty());
        // An uncached run agrees byte-for-byte with the cached one.
        let cold = SweepRunner::new(2).run(&grid);
        assert_eq!(cold.to_json_pretty(), second.to_json_pretty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
