//! Layer 3: declarative experiment grids and the parallel sweep runner.
//!
//! Every result in the paper is a grid of `(scheduler × trace × seed ×
//! fidelity × interference × backend)` cells. [`SweepGrid`] declares such
//! a grid once; [`SweepRunner`] fans the cells out across scoped worker
//! threads and merges the per-cell [`SimReport`]s back **in stable cell
//! order**, so the aggregated result — including its JSON serialization —
//! is byte-identical for any thread count. Determinism holds because each
//! cell's randomness comes solely from its own declared seed.
//!
//! Two schedule optimizations run before the fan-out, neither of which
//! can change the merged bytes:
//!
//! * **deduplication** — cells whose effective configuration is identical
//!   (e.g. No-Packing repeated across an interference axis it cannot
//!   observe) run once, and the shared report fans out to every
//!   duplicate;
//! * **cost-aware ordering** — unique cells are claimed longest-first
//!   (estimated from trace size, fidelity, and backend weight), so the
//!   pool never tail-blocks on a big cell claimed last.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use eva_cloud::FidelityMode;
use eva_types::SimDuration;
use eva_workloads::Trace;

use crate::backend::BackendKind;
use crate::metrics::SimReport;
use crate::runner::{InterferenceSpec, SchedulerKind, SimConfig};

/// A declarative grid of simulation cells.
///
/// Axes default to single paper-standard values; every `Vec`-valued axis
/// multiplies the cell count. Cells expand in a fixed nested order
/// (trace ▸ backend ▸ interference ▸ migration scale ▸ fidelity ▸ seed ▸
/// scheduler), with schedulers innermost so each block of
/// `schedulers.len()` cells forms one comparison row whose first entry is
/// the baseline.
#[derive(Debug, Clone)]
pub struct SweepGrid {
    traces: Vec<(String, Trace)>,
    schedulers: Vec<(String, SchedulerKind)>,
    seeds: Vec<u64>,
    fidelities: Vec<FidelityMode>,
    interferences: Vec<InterferenceSpec>,
    migration_scales: Vec<f64>,
    backends: Vec<BackendKind>,
    round_period: SimDuration,
}

impl SweepGrid {
    /// A grid over one trace with paper-default axes and no schedulers
    /// yet (add them with [`SweepGrid::scheduler`] or
    /// [`SweepGrid::paper_schedulers`]).
    pub fn new(trace_label: impl Into<String>, trace: Trace) -> Self {
        SweepGrid {
            traces: vec![(trace_label.into(), trace)],
            schedulers: Vec::new(),
            seeds: vec![42],
            fidelities: vec![FidelityMode::Stochastic],
            interferences: vec![InterferenceSpec::Measured],
            migration_scales: vec![1.0],
            backends: vec![BackendKind::Sim],
            round_period: SimDuration::from_mins(5),
        }
    }

    /// Adds another trace axis value.
    pub fn trace(mut self, label: impl Into<String>, trace: Trace) -> Self {
        self.traces.push((label.into(), trace));
        self
    }

    /// Adds one named scheduler (names distinguish Eva variants that
    /// share the `Eva` report label).
    pub fn scheduler(mut self, name: impl Into<String>, kind: SchedulerKind) -> Self {
        self.schedulers.push((name.into(), kind));
        self
    }

    /// Adds schedulers by their canonical CLI names.
    pub fn schedulers_by_name(mut self, names: &[&str]) -> Result<Self, String> {
        for name in names {
            let kind = SchedulerKind::from_name(name)?;
            self.schedulers.push((name.to_string(), kind));
        }
        Ok(self)
    }

    /// Adds the five §6.1 schedulers in the paper's reporting order.
    pub fn paper_schedulers(mut self) -> Self {
        for kind in SchedulerKind::paper_set() {
            self.schedulers.push((kind.label().to_string(), kind));
        }
        self
    }

    /// Replaces the seed axis.
    pub fn seeds(mut self, seeds: impl Into<Vec<u64>>) -> Self {
        self.seeds = seeds.into();
        self
    }

    /// Replaces the fidelity axis.
    pub fn fidelities(mut self, fidelities: impl Into<Vec<FidelityMode>>) -> Self {
        self.fidelities = fidelities.into();
        self
    }

    /// Replaces the interference axis.
    pub fn interferences(mut self, specs: impl Into<Vec<InterferenceSpec>>) -> Self {
        self.interferences = specs.into();
        self
    }

    /// Replaces the migration-delay-scale axis.
    pub fn migration_scales(mut self, scales: impl Into<Vec<f64>>) -> Self {
        self.migration_scales = scales.into();
        self
    }

    /// Replaces the execution-backend axis (default: sim only).
    pub fn backends(mut self, backends: impl Into<Vec<BackendKind>>) -> Self {
        self.backends = backends.into();
        self
    }

    /// Sets the scheduling round period for every cell.
    pub fn round_period(mut self, period: SimDuration) -> Self {
        self.round_period = period;
        self
    }

    /// Number of schedulers per comparison block.
    pub fn schedulers_per_block(&self) -> usize {
        self.schedulers.len()
    }

    /// Total number of cells the grid expands to.
    pub fn cell_count(&self) -> usize {
        self.traces.len()
            * self.backends.len()
            * self.interferences.len()
            * self.migration_scales.len()
            * self.fidelities.len()
            * self.seeds.len()
            * self.schedulers.len()
    }

    /// Cells that will actually execute after deduplication.
    pub fn unique_cell_count(&self) -> usize {
        let cells = self.cells();
        RunPlan::build(self, &cells).unique_count()
    }

    /// Expands the grid into its cells in stable order.
    pub fn cells(&self) -> Vec<SweepCell> {
        let mut cells = Vec::with_capacity(self.cell_count());
        for (trace_idx, (trace_label, _)) in self.traces.iter().enumerate() {
            for &backend in &self.backends {
                for &interference in &self.interferences {
                    for &scale in &self.migration_scales {
                        for &fidelity in &self.fidelities {
                            for &seed in &self.seeds {
                                for (name, kind) in &self.schedulers {
                                    cells.push(SweepCell {
                                        index: cells.len(),
                                        trace_index: trace_idx,
                                        key: CellKey {
                                            trace: trace_label.clone(),
                                            scheduler: name.clone(),
                                            seed,
                                            fidelity: fidelity_label(fidelity).to_string(),
                                            interference: interference.label(),
                                            migration_delay_scale: scale,
                                            backend: backend.label().to_string(),
                                        },
                                        scheduler: kind.clone(),
                                        seed,
                                        fidelity,
                                        interference,
                                        migration_delay_scale: scale,
                                        backend,
                                        round_period: self.round_period,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        cells
    }

    /// Builds the [`SimConfig`] for one cell.
    pub fn sim_config(&self, cell: &SweepCell) -> SimConfig {
        SimConfig {
            trace: self.traces[cell.trace_index].1.clone(),
            scheduler: cell.scheduler.clone(),
            seed: cell.seed,
            round_period: cell.round_period,
            fidelity: cell.fidelity,
            interference: cell.interference,
            migration_delay_scale: cell.migration_delay_scale,
        }
    }

    /// Identity of the *work* a cell performs. Two cells with equal
    /// fingerprints produce byte-identical reports, so the runner
    /// executes one and fans the report out.
    ///
    /// Interference is normalized away under No-Packing: it never
    /// co-locates tasks, so the ground-truth interference model is
    /// unobservable — fig4-style grids then run one No-Packing cell per
    /// `(trace, seed, fidelity, scale)` instead of one per interference
    /// level.
    pub(crate) fn fingerprint(&self, cell: &SweepCell) -> String {
        let interference = match cell.scheduler {
            SchedulerKind::NoPacking => "-".to_string(),
            _ => cell.interference.label(),
        };
        format!(
            "{}|{:?}|{}|{}|{}|{}|{:?}|{}",
            cell.trace_index,
            cell.scheduler,
            cell.seed,
            fidelity_label(cell.fidelity),
            interference,
            cell.migration_delay_scale,
            self.round_period,
            cell.backend.label(),
        )
    }

    /// Rough relative runtime of a cell, for longest-first scheduling:
    /// trace job count scaled by fidelity (stochastic samples delays) and
    /// backend weight (live = simulate + replay on real threads).
    pub(crate) fn cost_estimate(&self, cell: &SweepCell) -> u64 {
        let jobs = self.traces[cell.trace_index].1.len().max(1) as u64;
        let fidelity = match cell.fidelity {
            FidelityMode::Stochastic => 3,
            FidelityMode::Nominal => 2,
        };
        let backend = match cell.backend {
            BackendKind::Sim => 1,
            BackendKind::Live => 3,
        };
        jobs * fidelity * backend
    }
}

/// Stable textual form of a fidelity mode.
pub fn fidelity_label(mode: FidelityMode) -> &'static str {
    match mode {
        FidelityMode::Nominal => "nominal",
        FidelityMode::Stochastic => "stochastic",
    }
}

/// One expanded grid cell, ready to run.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Position in the grid's stable expansion order.
    pub index: usize,
    /// Index into the grid's trace axis.
    pub trace_index: usize,
    /// The serializable identity of the cell.
    pub key: CellKey,
    /// The scheduler under test.
    pub scheduler: SchedulerKind,
    /// RNG seed for the cell.
    pub seed: u64,
    /// Delay-model fidelity.
    pub fidelity: FidelityMode,
    /// Ground-truth interference.
    pub interference: InterferenceSpec,
    /// Migration-delay multiplier.
    pub migration_delay_scale: f64,
    /// Execution backend the cell runs on.
    pub backend: BackendKind,
    /// Scheduling round period.
    pub round_period: SimDuration,
}

/// Serializable identity of a cell inside sweep results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellKey {
    /// Trace-axis label.
    pub trace: String,
    /// Scheduler name as declared on the grid.
    pub scheduler: String,
    /// RNG seed.
    pub seed: u64,
    /// Fidelity label (`nominal`/`stochastic`).
    pub fidelity: String,
    /// Interference label (`measured`/`uniform(t)`).
    pub interference: String,
    /// Migration-delay multiplier.
    pub migration_delay_scale: f64,
    /// Execution backend label (`sim`/`live`).
    pub backend: String,
}

/// One finished cell: its identity plus its report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellOutcome {
    /// Which cell this is.
    pub key: CellKey,
    /// The cell's simulation report.
    pub report: SimReport,
}

/// All cell outcomes of a sweep, in stable grid order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepResult {
    /// Outcomes in the grid's expansion order.
    pub cells: Vec<CellOutcome>,
    /// Schedulers per comparison block (the innermost axis length).
    pub schedulers_per_block: usize,
}

impl SweepResult {
    /// The reports in cell order.
    pub fn reports(&self) -> impl Iterator<Item = &SimReport> {
        self.cells.iter().map(|c| &c.report)
    }

    /// Comparison blocks: consecutive runs over the same axes that differ
    /// only in scheduler (the first entry is the declared baseline).
    pub fn blocks(&self) -> impl Iterator<Item = &[CellOutcome]> {
        self.cells.chunks(self.schedulers_per_block.max(1))
    }

    /// First outcome for a scheduler name, if any.
    pub fn first_for(&self, scheduler: &str) -> Option<&CellOutcome> {
        self.cells.iter().find(|c| c.key.scheduler == scheduler)
    }

    /// Deterministic pretty JSON of the whole sweep (byte-identical across
    /// thread counts because cell order is stable).
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("SweepResult serializes")
    }
}

/// A named experiment: a grid plus the label reports are filed under.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Name used in headers and artifact files.
    pub name: String,
    /// The grid to run.
    pub grid: SweepGrid,
}

impl Experiment {
    /// Wraps a grid under a name.
    pub fn new(name: impl Into<String>, grid: SweepGrid) -> Self {
        Experiment {
            name: name.into(),
            grid,
        }
    }

    /// Runs the grid on `threads` workers (0 = all available cores).
    pub fn run(&self, threads: usize) -> SweepResult {
        SweepRunner::new(threads).run(&self.grid)
    }
}

/// The pre-computed execution schedule of a grid: which cells actually
/// run (deduplicated representatives, longest first) and which
/// representative each cell's report comes from.
#[derive(Debug, Clone)]
pub(crate) struct RunPlan {
    /// For every cell index, the index of its representative.
    pub rep_of: Vec<usize>,
    /// Representative cell indices in execution order (longest first,
    /// index-tiebroken — fully deterministic).
    pub order: Vec<usize>,
}

impl RunPlan {
    pub(crate) fn build(grid: &SweepGrid, cells: &[SweepCell]) -> RunPlan {
        let mut first: BTreeMap<String, usize> = BTreeMap::new();
        let mut rep_of = Vec::with_capacity(cells.len());
        for (i, cell) in cells.iter().enumerate() {
            rep_of.push(*first.entry(grid.fingerprint(cell)).or_insert(i));
        }
        let mut order: Vec<usize> = first.into_values().collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(grid.cost_estimate(&cells[i])), i));
        RunPlan { rep_of, order }
    }

    /// Cells that actually execute after deduplication.
    pub(crate) fn unique_count(&self) -> usize {
        self.order.len()
    }
}

/// Multi-threaded executor for [`SweepGrid`]s.
///
/// Workers claim deduplicated cells — longest first — from a shared
/// atomic cursor, run each on its cell's backend, and write the outcome
/// into the cell's own slot, so the merged result is independent of
/// scheduling order and thread count.
#[derive(Debug, Clone, Copy)]
pub struct SweepRunner {
    threads: usize,
}

impl SweepRunner {
    /// A runner over `threads` workers; 0 selects the machine's available
    /// parallelism.
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        SweepRunner { threads }
    }

    /// The worker count this runner was resolved to.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every cell of `grid` and merges outcomes in stable cell order.
    ///
    /// Identical cells run once (their report fans out to every
    /// duplicate) and unique cells are claimed longest-first; neither
    /// optimization can change the merged bytes, because duplicate cells
    /// would have produced byte-identical reports anyway and every report
    /// lands in its cell's own slot.
    pub fn run(&self, grid: &SweepGrid) -> SweepResult {
        let cells = grid.cells();
        let plan = RunPlan::build(grid, &cells);
        let slots: Vec<Mutex<Option<SimReport>>> =
            cells.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = self.threads.min(plan.order.len()).max(1);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&i) = plan.order.get(k) else {
                        break;
                    };
                    let cell = &cells[i];
                    let cfg = grid.sim_config(cell);
                    let report = cell.backend.backend().run(&cfg);
                    *slots[i].lock().unwrap() = Some(report);
                });
            }
        });
        let reports: Vec<Option<SimReport>> = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("no worker panicked holding a slot lock")
            })
            .collect();
        SweepResult {
            cells: cells
                .iter()
                .enumerate()
                .map(|(i, cell)| CellOutcome {
                    key: cell.key.clone(),
                    report: reports[plan.rep_of[i]]
                        .as_ref()
                        .expect("every representative cell was claimed and completed")
                        .clone(),
                })
                .collect(),
            schedulers_per_block: grid.schedulers_per_block(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_workloads::SyntheticTraceConfig;

    fn tiny_trace(jobs: usize) -> Trace {
        SyntheticTraceConfig {
            num_jobs: jobs,
            mean_interarrival: SimDuration::from_mins(12),
            duration: eva_workloads::UniformHours::new(0.2, 0.5),
            single_task_only: true,
        }
        .generate(7)
    }

    fn tiny_grid() -> SweepGrid {
        SweepGrid::new("tiny", tiny_trace(5))
            .schedulers_by_name(&["no-packing", "stratus"])
            .unwrap()
            .seeds(vec![1, 2])
            .fidelities(vec![FidelityMode::Nominal])
    }

    #[test]
    fn cells_expand_in_stable_scheduler_innermost_order() {
        let cells = tiny_grid().cells();
        assert_eq!(cells.len(), 4);
        let keys: Vec<(u64, &str)> = cells
            .iter()
            .map(|c| (c.key.seed, c.key.scheduler.as_str()))
            .collect();
        assert_eq!(
            keys,
            vec![
                (1, "no-packing"),
                (1, "stratus"),
                (2, "no-packing"),
                (2, "stratus"),
            ]
        );
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
        }
    }

    #[test]
    fn parallel_run_matches_serial_run_exactly() {
        let grid = tiny_grid();
        let serial = SweepRunner::new(1).run(&grid);
        let parallel = SweepRunner::new(4).run(&grid);
        assert_eq!(serial, parallel);
        assert_eq!(serial.to_json_pretty(), parallel.to_json_pretty());
    }

    #[test]
    fn more_threads_than_cells_is_fine() {
        let grid = SweepGrid::new("one", tiny_trace(3))
            .scheduler("No-Packing", SchedulerKind::NoPacking)
            .fidelities(vec![FidelityMode::Nominal]);
        let result = SweepRunner::new(64).run(&grid);
        assert_eq!(result.cells.len(), 1);
        assert_eq!(result.cells[0].report.jobs_completed, 3);
    }

    #[test]
    fn blocks_group_by_scheduler_axis() {
        let result = SweepRunner::new(2).run(&tiny_grid());
        let blocks: Vec<_> = result.blocks().collect();
        assert_eq!(blocks.len(), 2, "one block per seed");
        for block in blocks {
            assert_eq!(block.len(), 2);
            assert_eq!(block[0].key.scheduler, "no-packing");
        }
        assert!(result.first_for("stratus").is_some());
        assert!(result.first_for("owl").is_none());
    }

    #[test]
    fn experiment_wraps_grid_and_runs() {
        let exp = Experiment::new("tiny-exp", tiny_grid());
        assert_eq!(exp.name, "tiny-exp");
        let result = exp.run(2);
        assert_eq!(result.cells.len(), exp.grid.cell_count());
    }

    #[test]
    fn runner_zero_resolves_to_available_parallelism() {
        assert!(SweepRunner::new(0).threads() >= 1);
        assert_eq!(SweepRunner::new(3).threads(), 3);
    }

    #[test]
    fn no_packing_cells_dedup_across_interference_axis() {
        // fig4's shape: an interference axis No-Packing cannot observe.
        let grid = SweepGrid::new("fig4", tiny_trace(4))
            .schedulers_by_name(&["no-packing", "owl"])
            .unwrap()
            .interferences(vec![
                InterferenceSpec::Uniform(1.0),
                InterferenceSpec::Uniform(0.9),
                InterferenceSpec::Uniform(0.8),
            ])
            .fidelities(vec![FidelityMode::Nominal]);
        assert_eq!(grid.cell_count(), 6);
        // One No-Packing run + three Owl runs.
        assert_eq!(grid.unique_cell_count(), 4);
        // Dedup must not change results: every No-Packing report equals
        // the representative's, and each cell keeps its own key.
        let result = SweepRunner::new(2).run(&grid);
        assert_eq!(result.cells.len(), 6);
        let np: Vec<_> = result
            .cells
            .iter()
            .filter(|c| c.key.scheduler == "no-packing")
            .collect();
        assert_eq!(np.len(), 3);
        assert!(np.iter().all(|c| c.report == np[0].report));
        assert_eq!(np[1].key.interference, "uniform(0.9)");
    }

    #[test]
    fn dedup_fans_out_reports_identical_to_direct_per_cell_runs() {
        // The guard for the dedup premise: every fanned-out report must
        // equal what running the cell's own config directly produces —
        // in particular No-Packing under each interference level it was
        // deduplicated across. If No-Packing ever becomes
        // interference-sensitive, this fails.
        let grid = SweepGrid::new("guard", tiny_trace(4))
            .schedulers_by_name(&["no-packing", "eva"])
            .unwrap()
            .interferences(vec![
                InterferenceSpec::Measured,
                InterferenceSpec::Uniform(0.85),
            ])
            .fidelities(vec![FidelityMode::Nominal]);
        assert!(grid.unique_cell_count() < grid.cell_count());
        let result = SweepRunner::new(2).run(&grid);
        for (cell, outcome) in grid.cells().iter().zip(&result.cells) {
            let direct = crate::runner::run_simulation(&grid.sim_config(cell));
            assert_eq!(
                outcome.report, direct,
                "deduped report diverges from a direct run of {:?}",
                cell.key
            );
        }
    }

    #[test]
    fn literal_duplicate_cells_dedup_too() {
        let grid = SweepGrid::new("dup", tiny_trace(3))
            .scheduler("stratus-a", SchedulerKind::Stratus)
            .scheduler("stratus-b", SchedulerKind::Stratus)
            .fidelities(vec![FidelityMode::Nominal]);
        assert_eq!(grid.cell_count(), 2);
        assert_eq!(grid.unique_cell_count(), 1);
        let result = SweepRunner::new(2).run(&grid);
        assert_eq!(result.cells[0].report, result.cells[1].report);
        assert_eq!(result.cells[0].key.scheduler, "stratus-a");
        assert_eq!(result.cells[1].key.scheduler, "stratus-b");
    }

    #[test]
    fn execution_order_is_longest_first_and_deterministic() {
        let big = tiny_trace(9);
        let grid = SweepGrid::new("small", tiny_trace(2))
            .trace("big", big)
            .scheduler("No-Packing", SchedulerKind::NoPacking)
            .fidelities(vec![FidelityMode::Nominal, FidelityMode::Stochastic]);
        let cells = grid.cells();
        let plan = RunPlan::build(&grid, &cells);
        assert_eq!(plan.unique_count(), 4);
        // Big-trace stochastic first, ties broken by cell index.
        let costs: Vec<u64> = plan
            .order
            .iter()
            .map(|&i| grid.cost_estimate(&cells[i]))
            .collect();
        assert!(costs.windows(2).all(|w| w[0] >= w[1]), "{costs:?}");
        assert_eq!(plan.order, RunPlan::build(&grid, &cells).order);
    }

    #[test]
    fn backend_axis_doubles_cells_and_labels_keys() {
        let grid = tiny_grid().backends(vec![BackendKind::Sim, BackendKind::Live]);
        assert_eq!(grid.cell_count(), 8);
        let cells = grid.cells();
        assert!(cells[..4].iter().all(|c| c.key.backend == "sim"));
        assert!(cells[4..].iter().all(|c| c.key.backend == "live"));
        // Sim and live cells never share a fingerprint.
        assert_eq!(grid.unique_cell_count(), 8);
    }
}
