//! Simulation state: task lifecycle and job progress.

use eva_types::{InstanceId, JobSpec, SimDuration, SimTime, TaskId};

/// Lifecycle of one task inside the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// Not yet placed anywhere.
    Pending,
    /// Placed; waiting for instance readiness / checkpoint / launch delay.
    /// Carries the generation stamp of the transfer in flight.
    InTransit {
        /// Monotonic stamp that invalidates superseded transfer events.
        generation: u64,
        /// When the task becomes runnable.
        ready_at: SimTime,
    },
    /// Executing on its instance.
    Running,
    /// Its job completed.
    Done,
}

/// One task's dynamic bookkeeping.
#[derive(Debug, Clone)]
pub struct TaskRuntime {
    /// The task.
    pub id: TaskId,
    /// Target instance (set even while in transit).
    pub assigned_to: Option<InstanceId>,
    /// Lifecycle state.
    pub state: TaskState,
    /// Migrations performed so far (initial placement not counted).
    pub migrations: u32,
}

impl TaskRuntime {
    /// A fresh pending task.
    pub fn new(id: TaskId) -> Self {
        TaskRuntime {
            id,
            assigned_to: None,
            state: TaskState::Pending,
            migrations: 0,
        }
    }

    /// True when the task currently computes (and therefore interferes).
    pub fn is_running(&self) -> bool {
        self.state == TaskState::Running
    }
}

/// One job's dynamic bookkeeping.
///
/// Work is measured in hours-at-full-throughput. Between simulator events
/// throughput is constant, so progress integrates exactly.
#[derive(Debug, Clone)]
pub struct JobProgress {
    /// The job's static spec.
    pub spec: JobSpec,
    /// Remaining work in full-throughput hours.
    pub remaining_hours: f64,
    /// Accumulated wall-clock hours in which the job was executing.
    pub executing_hours: f64,
    /// Accumulated wall-clock hours present but not executing (delays).
    pub idle_hours: f64,
    /// Integral of throughput over executing time (for normalized tput).
    pub tput_integral: f64,
    /// Completion time, once done.
    pub completed_at: Option<SimTime>,
    /// Stamp invalidating stale completion events.
    pub completion_generation: u64,
}

impl JobProgress {
    /// Builds progress state from a spec.
    pub fn new(spec: JobSpec) -> Self {
        let remaining = spec.duration_at_full_tput.as_hours_f64();
        JobProgress {
            spec,
            remaining_hours: remaining,
            executing_hours: 0.0,
            idle_hours: 0.0,
            tput_integral: 0.0,
            completed_at: None,
            completion_generation: 0,
        }
    }

    /// True once the job has no work left.
    pub fn is_done(&self) -> bool {
        self.completed_at.is_some()
    }

    /// Advances the job by `dt_hours` at effective throughput `tput`
    /// (0 when not executing).
    pub fn advance(&mut self, dt_hours: f64, tput: f64) {
        if self.is_done() || dt_hours <= 0.0 {
            return;
        }
        if tput > 0.0 {
            self.remaining_hours = (self.remaining_hours - dt_hours * tput).max(0.0);
            self.executing_hours += dt_hours;
            self.tput_integral += dt_hours * tput;
        } else {
            self.idle_hours += dt_hours;
        }
    }

    /// Hours until completion at throughput `tput`, if it is positive.
    pub fn eta_hours(&self, tput: f64) -> Option<f64> {
        if self.is_done() || tput <= 0.0 {
            None
        } else {
            Some(self.remaining_hours / tput)
        }
    }

    /// Average normalized throughput while executing (1.0 for a job that
    /// never experienced interference).
    pub fn mean_tput(&self) -> f64 {
        if self.executing_hours <= 0.0 {
            1.0
        } else {
            self.tput_integral / self.executing_hours
        }
    }

    /// Job completion time metric (hours), once done.
    pub fn jct_hours(&self) -> Option<f64> {
        self.completed_at
            .map(|t| t.duration_since(self.spec.arrival).as_hours_f64())
    }

    /// Estimated remaining wall-clock time at full throughput — the perfect
    /// duration estimate granted to Stratus (§6.1).
    pub fn remaining_hint(&self) -> SimDuration {
        SimDuration::from_hours_f64(self.remaining_hours)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_types::{DemandSpec, JobId, ResourceVector, TaskSpec, WorkloadKind};

    fn spec(hours: f64) -> JobSpec {
        let id = JobId(1);
        JobSpec {
            id,
            arrival: SimTime::from_secs(3600),
            tasks: vec![TaskSpec {
                id: TaskId::new(id, 0),
                workload: WorkloadKind(0),
                demand: DemandSpec::uniform(ResourceVector::new(1, 4, 1024)),
                checkpoint_delay: SimDuration::from_secs(2),
                launch_delay: SimDuration::from_secs(10),
            }],
            duration_at_full_tput: SimDuration::from_hours_f64(hours),
            gang_coupled: false,
        }
    }

    #[test]
    fn progress_integrates_throughput() {
        let mut p = JobProgress::new(spec(2.0));
        p.advance(1.0, 1.0);
        assert!((p.remaining_hours - 1.0).abs() < 1e-12);
        p.advance(1.0, 0.5);
        assert!((p.remaining_hours - 0.5).abs() < 1e-12);
        assert!((p.mean_tput() - 0.75).abs() < 1e-12);
        assert_eq!(p.eta_hours(0.5), Some(1.0));
    }

    #[test]
    fn zero_throughput_accumulates_idle() {
        let mut p = JobProgress::new(spec(1.0));
        p.advance(0.25, 0.0);
        assert!((p.idle_hours - 0.25).abs() < 1e-12);
        assert!((p.remaining_hours - 1.0).abs() < 1e-12);
        assert!(p.eta_hours(0.0).is_none());
    }

    #[test]
    fn jct_measured_from_arrival() {
        let mut p = JobProgress::new(spec(1.0));
        p.advance(1.0, 1.0);
        assert!((p.remaining_hours - 0.0).abs() < 1e-12);
        p.completed_at = Some(SimTime::from_secs(3600) + SimDuration::from_hours_f64(1.5));
        assert!((p.jct_hours().unwrap() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn done_jobs_do_not_advance() {
        let mut p = JobProgress::new(spec(1.0));
        p.completed_at = Some(SimTime::ZERO);
        p.advance(5.0, 1.0);
        assert!((p.remaining_hours - 1.0).abs() < 1e-12);
    }

    #[test]
    fn remaining_hint_tracks_progress() {
        let mut p = JobProgress::new(spec(2.0));
        p.advance(0.5, 1.0);
        assert_eq!(p.remaining_hint(), SimDuration::from_hours_f64(1.5));
    }

    #[test]
    fn task_runtime_lifecycle() {
        let mut t = TaskRuntime::new(TaskId::new(JobId(1), 0));
        assert!(!t.is_running());
        t.state = TaskState::InTransit {
            generation: 1,
            ready_at: SimTime::from_secs(30),
        };
        assert!(!t.is_running());
        t.state = TaskState::Running;
        assert!(t.is_running());
    }
}
