//! Long-lived service mode: drive a streaming [`ClusterSim`] from a
//! [`JobSource`] and emit rolling metrics as JSON lines.
//!
//! `eva serve` is the CLI face of this module; `exp_perf`'s serve probe
//! and the streaming tests call [`serve`] directly. The loop is pure
//! simulation — the metrics interval is *simulated* time, so a fixed
//! seed and source produce byte-identical output lines on every run.

use std::io::Write;

use eva_types::{SimDuration, SimTime};
use eva_workloads::{BoundedSource, JobSource};

use crate::metrics::{MetricsSnapshot, SimReport};
use crate::runner::SimConfig;
use crate::world::ClusterSim;

/// Service-loop options, on top of the usual [`SimConfig`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Emit a rolling [`MetricsSnapshot`] line every this much
    /// *simulated* time.
    pub metrics_every: SimDuration,
    /// Stop ingesting jobs arriving past this horizon (in-flight jobs
    /// still drain). `None` runs until the source is exhausted.
    pub duration: Option<SimDuration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            metrics_every: SimDuration::from_hours(1),
            duration: None,
        }
    }
}

/// What a finished service loop hands back.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// The usual end-of-run report over every ingested job.
    pub report: SimReport,
    /// The state at the final event (also emitted as the last line).
    pub final_snapshot: MetricsSnapshot,
    /// Rolling metrics lines written (excluding the final snapshot).
    pub metrics_lines: usize,
    /// Jobs ingested from the source.
    pub jobs_ingested: u64,
    /// High-water mark of concurrently live arena job rows.
    pub peak_job_rows: usize,
}

/// Runs a streaming world fed by `source` to completion, writing one
/// [`MetricsSnapshot`] JSON line to `out` per elapsed metrics interval
/// and a final snapshot line after the last event.
///
/// Retirement ([`SimConfig::retire_completed`]) is the caller's choice;
/// `eva serve` turns it on so memory tracks the in-flight window.
pub fn serve<W: Write>(
    cfg: &SimConfig,
    source: Box<dyn JobSource>,
    opts: &ServeConfig,
    out: &mut W,
) -> std::io::Result<ServeOutcome> {
    let source: Box<dyn JobSource> = match opts.duration {
        Some(d) => Box::new(BoundedSource::new(source, SimTime::ZERO + d)),
        None => source,
    };
    let mut sim = ClusterSim::from_source(cfg, source);
    let every = opts.metrics_every.max(SimDuration::from_secs(1));
    let mut next_emit = SimTime::ZERO + every;
    let mut metrics_lines = 0usize;
    let mut peak_job_rows = sim.job_arena_rows();
    while sim.step() {
        peak_job_rows = peak_job_rows.max(sim.job_arena_rows());
        // Events jump the clock; one snapshot covers a whole batch of
        // crossed interval boundaries (the state between them never
        // materialized), stamped at the time it describes.
        if sim.now() >= next_emit {
            let snap = sim.metrics_snapshot();
            writeln!(out, "{}", serde_json::to_string(&snap).expect("snapshot serializes"))?;
            metrics_lines += 1;
            while next_emit <= sim.now() {
                next_emit += every;
            }
        }
    }
    let final_snapshot = sim.metrics_snapshot();
    writeln!(
        out,
        "{}",
        serde_json::to_string(&final_snapshot).expect("snapshot serializes")
    )?;
    let jobs_ingested = sim.jobs_ingested();
    let report = sim.run();
    Ok(ServeOutcome {
        report,
        final_snapshot,
        metrics_lines,
        jobs_ingested,
        peak_job_rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::SchedulerKind;
    use eva_workloads::{SyntheticSource, Trace, TraceHandle};

    fn serve_cfg() -> SimConfig {
        let mut cfg = SimConfig::new(
            TraceHandle::new(Trace::new(Vec::new())),
            SchedulerKind::Stratus,
        );
        cfg.retire_completed = true;
        cfg
    }

    #[test]
    fn serve_emits_rolling_lines_and_is_deterministic() {
        let run = || {
            let source = Box::new(SyntheticSource::open_loop(4.0, 40, 11));
            let mut buf = Vec::new();
            let outcome = serve(
                &serve_cfg(),
                source,
                &ServeConfig {
                    metrics_every: SimDuration::from_hours(1),
                    duration: None,
                },
                &mut buf,
            )
            .unwrap();
            (outcome, buf)
        };
        let (a, bytes_a) = run();
        let (b, bytes_b) = run();
        assert_eq!(bytes_a, bytes_b, "rolling metrics must be deterministic");
        assert_eq!(a.report, b.report);
        assert!(a.metrics_lines >= 1, "at least one rolling line");
        assert_eq!(a.jobs_ingested, 40);
        assert_eq!(a.final_snapshot.arrivals_total, 40);
        assert_eq!(a.final_snapshot.completions_total, 40);
        assert_eq!(a.report.jobs_completed, 40);
        // Every line parses back into a snapshot, times ascending.
        let text = String::from_utf8(bytes_a).unwrap();
        let snaps: Vec<MetricsSnapshot> = text
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(snaps.len(), a.metrics_lines + 1);
        for w in snaps.windows(2) {
            assert!(w[1].t_hours >= w[0].t_hours);
            assert!(w[1].arrivals_total >= w[0].arrivals_total);
        }
    }

    #[test]
    fn serve_duration_bounds_ingestion() {
        let source = Box::new(SyntheticSource::open_loop(2.0, 10_000, 7));
        let mut buf = Vec::new();
        let outcome = serve(
            &serve_cfg(),
            source,
            &ServeConfig {
                metrics_every: SimDuration::from_hours(2),
                duration: Some(SimDuration::from_hours(10)),
            },
            &mut buf,
        )
        .unwrap();
        assert!(
            outcome.jobs_ingested < 100,
            "horizon cut ingestion ({} jobs)",
            outcome.jobs_ingested
        );
        assert!(outcome.jobs_ingested > 0);
        assert_eq!(
            outcome.report.jobs_completed as u64, outcome.jobs_ingested,
            "in-flight jobs drain after the horizon"
        );
    }
}
