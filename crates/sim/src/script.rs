//! Execution scripts: the engine-ordered control-plane action stream a
//! world-model run emits.
//!
//! A [`ClusterSim`](crate::ClusterSim) run, with recording enabled, logs
//! every control-plane action it takes — task start/resume, checkpoint
//! for migration, scheduling round, job completion — together with the
//! job-progress fraction at that instant. The [`crate::backend`] layer
//! replays such a script through the real `eva-exec` master/worker
//! runtime: fractions map to exact iteration positions, so every live
//! checkpoint lands on a deterministic boundary.

use eva_types::{InstanceId, JobId, SimTime, TaskId};

/// One recorded control-plane action.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecAction {
    /// Simulated instant the action was taken.
    pub at: SimTime,
    /// What happened.
    pub kind: ExecActionKind,
}

/// The control-plane action kinds a world run emits.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecActionKind {
    /// A task began (or resumed) running on an instance; `progress` is
    /// the fraction of its job's work already done at that instant.
    Start {
        /// The task.
        task: TaskId,
        /// Where it runs.
        instance: InstanceId,
        /// Job-progress fraction in `[0, 1]`.
        progress: f64,
    },
    /// A running task was checkpointed off its instance (the first half
    /// of a migration); `progress` is the fraction at the checkpoint.
    Stop {
        /// The task.
        task: TaskId,
        /// Job-progress fraction in `[0, 1]`.
        progress: f64,
    },
    /// A running task was killed by an injected fault (spot preemption or
    /// worker crash). The paper-style preemption warning lets the task
    /// rescue-checkpoint at the kill instant — `progress` is the fraction
    /// at that boundary — but the live runtime confiscates the blob after
    /// collecting the exit, so the next resume re-executes from scratch.
    Kill {
        /// The task.
        task: TaskId,
        /// Job-progress fraction in `[0, 1]` at the kill instant.
        progress: f64,
    },
    /// A scheduling round executed (live runs poll throughput here).
    Round,
    /// Every task of the job finished its work.
    JobDone {
        /// The job.
        job: JobId,
    },
}

/// The full action stream of one recorded run, in engine dispatch order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecScript {
    /// Actions in the order the engine dispatched them.
    pub actions: Vec<ExecAction>,
}

impl ExecScript {
    /// Number of recorded actions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// The jobs that completed during the run.
    pub fn completed_jobs(&self) -> impl Iterator<Item = JobId> + '_ {
        self.actions.iter().filter_map(|a| match a.kind {
            ExecActionKind::JobDone { job } => Some(job),
            _ => None,
        })
    }
}
